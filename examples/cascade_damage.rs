//! Cascade damage study: how many Frenkel pairs survive a primary
//! knock-on atom of a given energy?
//!
//! ```text
//! cargo run --release --example cascade_damage
//! ```
//!
//! Sweeps PKA energies, runs the MD cascade for each, and reports peak
//! and surviving defect counts plus the temperature spike — the
//! ingredients of the paper's "defect generation caused by cascade
//! collision" phase (§2.1), cross-checked with an independent
//! Wigner–Seitz occupancy analysis.

use mmds::md::cascade::{launch_pka, PKA_DIRECTION};
use mmds::md::defects::{count, wigner_seitz};
use mmds::md::domain::Loopback;
use mmds::md::{MdConfig, MdSimulation};

fn main() {
    println!(
        "{:>10} {:>9} {:>10} {:>10} {:>10} {:>12}",
        "PKA (eV)", "steps", "peak vac", "surv vac", "surv int", "T_final (K)"
    );
    for &pka_ev in &[100.0, 200.0, 400.0, 800.0] {
        let cfg = MdConfig {
            temperature: 300.0,
            thermostat_tau: Some(0.03),
            table_knots: 1500,
            seed: 11,
            ..Default::default()
        };
        let mut sim = MdSimulation::single_box(cfg, 10);
        sim.init_velocities();
        let g = sim.lnl.grid.ghost;
        let centre = sim.lnl.grid.site_id(g + 5, g + 5, g + 5, 0);
        launch_pka(&mut sim.lnl, centre, pka_ev, PKA_DIRECTION, sim.mass);

        let mut peak = 0usize;
        let mut t_final = 0.0;
        let steps = 50;
        for _ in 0..steps {
            let s = sim.step(&mut Loopback);
            peak = peak.max(sim.lnl.n_vacancies());
            t_final = s.temperature;
        }
        let c = count(&sim.lnl);
        let ws = wigner_seitz(&sim.lnl, &sim.interior);
        // The occupancy census may count fewer defects than the
        // bookkeeping: a run-away hovering just outside the capture
        // radius of its own vacancy is a Frenkel pair to the lattice
        // neighbor list but a (strained) perfect crystal to
        // Wigner-Seitz. It can never count more.
        assert!(ws.vacancies <= c.vacancies && ws.interstitials <= c.interstitials);
        println!(
            "{:>10} {:>9} {:>10} {:>10} {:>10} {:>12.0}   (WS: {}/{})",
            pka_ev,
            steps,
            peak,
            c.vacancies,
            c.interstitials,
            t_final,
            ws.vacancies,
            ws.interstitials
        );
    }
    println!(
        "\npeak counts rise with PKA energy; most pairs recombine during the\n\
         thermal spike — the survivors are what the KMC phase inherits."
    );
}
