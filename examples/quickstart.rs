//! Quickstart: one coupled MD-KMC damage simulation, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs a 600 K iron box: a 300 eV primary knock-on atom drives a
//! collision cascade (MD), the surviving vacancies hand off to
//! atomistic KMC, and the defect population evolves toward clusters.

use mmds::DamageSimulation;

fn main() {
    let report = DamageSimulation::builder()
        .cells(10) // 2·10³ = 2000 atoms
        .temperature(600.0)
        .pka_energy_ev(300.0)
        .md_steps(40)
        .seeded_vacancy_concentration(4.0e-3) // debris of earlier cascades
        .kmc_threshold(1.0e-6)
        .max_kmc_cycles(100)
        .table_knots(1500)
        .seed(7)
        .build()
        .run();

    println!("== MD cascade + handoff ==");
    println!("vacancies entering KMC:  {}", report.md_vacancies);
    println!("surviving interstitials: {}", report.md_interstitials);

    println!("\n== KMC evolution phase ==");
    println!("events executed:   {}", report.kmc_events);
    println!("KMC time reached:  {:.3e} s", report.kmc_time);
    println!(
        "physical timescale: {:.2} days (the paper's rescaling formula)",
        report.t_real_seconds / 86_400.0
    );

    println!("\n== defect structure ==");
    println!(
        "clusters after MD:  {} (largest {})",
        report.after_md_clusters.n_clusters, report.after_md_clusters.largest
    );
    println!(
        "clusters after KMC: {} (largest {})",
        report.after_kmc_clusters.n_clusters, report.after_kmc_clusters.largest
    );
    println!(
        "dispersion ratio (1 = random gas): {:.3} -> {:.3}",
        report.after_md_dispersion.ratio, report.after_kmc_dispersion.ratio
    );
}
