//! Vacancy-mediated Cu precipitation in α-Fe.
//!
//! ```text
//! cargo run --release --example cu_precipitation
//! ```
//!
//! The paper's time-rescaling formula (§3) comes from Castin et al.'s
//! hybrid AKMC study of exactly this process: dilute Cu in BCC iron
//! demixes (positive heat of mixing), and vacancies are the transport
//! mechanism that lets the Cu atoms find each other. This example runs
//! the alloy-aware KMC engine on an Fe–1.5%Cu solid solution with a few
//! vacancies and watches the Cu cluster-size distribution coarsen.

use mmds::analysis::clusters::cluster_sizes;
use mmds::kmc::comm::LoopbackK;
use mmds::kmc::lattice::required_ghost;
use mmds::kmc::{ExchangeStrategy, KmcConfig, KmcSimulation, OnDemandMode, SiteState};
use mmds::lattice::{BccGeometry, LocalGrid};

fn main() {
    let cfg = KmcConfig {
        table_knots: 1500,
        events_per_cycle: 1.0,
        temperature: 850.0, // hot ageing: faster coarsening in wall time
        seed: 4242,
        ..Default::default()
    };
    let cells = 12;
    let geom = BccGeometry::new(cfg.a0, cells, cells, cells);
    let ghost = required_ghost(cfg.a0, cfg.rate_cutoff);
    let grid = LocalGrid::whole(geom, ghost);
    let mut sim = KmcSimulation::new(cfg, grid);

    let n_sites = sim.lat.n_owned();
    let n_cu = (0.015 * n_sites as f64).round() as usize;
    let placed_cu = sim.lat.seed_solutes_global(n_cu, 77);
    sim.lat.seed_vacancies_global(10, 78);
    sim.initialize(&mut LoopbackK);
    println!(
        "Fe-{:.1}%Cu, {} sites, {} Cu atoms, {} vacancies at {} K",
        100.0 * placed_cu as f64 / n_sites as f64,
        n_sites,
        placed_cu,
        sim.lat.n_vacancies(),
        sim.cfg.temperature
    );

    let box_len = geom.box_lengths();
    let r_link = 1.2 * geom.nn2();
    let cu_points = |sim: &KmcSimulation| -> Vec<[f64; 3]> {
        sim.lat
            .grid
            .interior_ids()
            .filter(|&s| sim.lat.state[s] == SiteState::Cu)
            .map(|s| sim.lat.position(s))
            .collect()
    };

    println!(
        "\n{:>8} {:>9} {:>12} {:>10} {:>14}",
        "cycles", "events", "Cu clusters", "largest", "Cu clustered"
    );
    let strategy = ExchangeStrategy::OnDemand(OnDemandMode::TwoSided);
    let mut events = 0;
    for block in 0..=6 {
        if block > 0 {
            events += sim.run_cycles(strategy, &mut LoopbackK, 250);
        }
        let pts = cu_points(&sim);
        let cl = cluster_sizes(&pts, box_len, r_link);
        println!(
            "{:>8} {:>9} {:>12} {:>10} {:>14}",
            block * 250,
            events,
            cl.n_clusters,
            cl.largest,
            format!("{:.1}%", 100.0 * cl.clustered_fraction)
        );
    }

    // Conservation: Cu and vacancy counts are invariants of the dynamics.
    let cu_final = cu_points(&sim).len();
    assert_eq!(cu_final, placed_cu, "Cu atoms are conserved");
    println!(
        "\nCu conserved ({cu_final} atoms); vacancies conserved ({})",
        sim.lat.n_vacancies()
    );
    println!(
        "Cu transport is vacancy-mediated: every Cu move is a V-Cu exchange, so\n\
         coarsening stalls if the vacancies are removed."
    );
}
