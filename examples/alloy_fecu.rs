//! Fe–Cu alloy tables and the local-store placement policy.
//!
//! ```text
//! cargo run --release --example alloy_fecu
//! ```
//!
//! The paper (§2.1.2) explains that alloys need one interpolation table
//! per species pair, that the full compacted set no longer fits the
//! 64 KB CPE local store, and that the policy is to keep the most
//! abundant element's table resident. This example builds the Fe–Cu
//! set, runs the placement planner at several compositions, and proves
//! the capacity constraints on a simulated CPE.

use mmds::eam::alloy::{AlloyEam, LdmPlacement};
use mmds::eam::analytic::Species;
use mmds::sunway::{CpeCluster, SwModel};

fn main() {
    let budget = 64 * 1024 - 24 * 1024; // local store minus block buffers

    println!("Fe–Cu alloy: 3 pair + 3 density + 2 embedding compacted tables");
    let alloy = AlloyEam::fe_cu(0.01, 5000);
    println!(
        "total table bytes: {} ({}x the 64 KB local store)",
        alloy.total_bytes(),
        alloy.total_bytes() / (64 * 1024)
    );

    for cu in [0.01, 0.25, 0.90] {
        let alloy = AlloyEam::fe_cu(cu, 5000);
        let plan = LdmPlacement::plan(&alloy, budget);
        println!("\nCu fraction {cu}:");
        println!("  resident ({} B):", plan.resident_bytes);
        for id in &plan.resident {
            println!("    {id:?}  (weight {:.4})", alloy.access_weight(*id));
        }
        println!("  in main memory: {} tables", plan.in_main_memory.len());
    }

    // Prove the capacity constraint on a simulated CPE: the resident
    // set loads; adding one more table overflows.
    println!("\ncapacity proof on a simulated CPE local store:");
    let alloy = AlloyEam::fe_cu(0.01, 5000);
    let plan = LdmPlacement::plan(&alloy, budget);
    let cluster = CpeCluster::new(SwModel::sw26010());
    let report = cluster.run(vec![()], |ctx, ()| {
        // Reserve the block buffers a real kernel needs.
        let _buffers = ctx.alloc_f64(24 * 1024 / 8).expect("block buffers fit");
        let mut resident = Vec::new();
        for id in &plan.resident {
            let t = alloy.table(*id);
            resident.push(
                ctx.load_resident_table(&t.values)
                    .expect("planned table must fit"),
            );
        }
        // The first non-resident table must NOT fit on top.
        let overflow = alloy.table(plan.in_main_memory[0]);
        assert!(
            ctx.local_store().alloc_f64(overflow.values.len()).is_err(),
            "placement plan must be tight"
        );
        println!(
            "    CPE{}: {} resident tables loaded, next table rejected (LDM {} B used)",
            ctx.id,
            resident.len(),
            ctx.local_store().used()
        );
    });
    println!(
        "  bulk DMA to stage the resident set: {} B in {:.1} us",
        report.counters.bytes_in,
        report.time * 1e6
    );

    // And the physics is continuous across the composition range.
    let fe = mmds::eam::analytic::AnalyticEam::for_pair(Species::Fe, Species::Fe);
    let cu = mmds::eam::analytic::AnalyticEam::for_pair(Species::Cu, Species::Cu);
    let mix = mmds::eam::analytic::AnalyticEam::for_pair(Species::Fe, Species::Cu);
    println!(
        "\npair well depths: Fe-Fe {:.3} eV, Fe-Cu {:.3} eV, Cu-Cu {:.3} eV",
        -fe.phi(fe.r0),
        -mix.phi(mix.r0),
        -cu.phi(cu.r0)
    );
}
