//! Vacancy clustering under KMC, and the cost of keeping ghosts fresh.
//!
//! ```text
//! cargo run --release --example vacancy_clustering
//! ```
//!
//! Seeds a dispersed vacancy population, evolves it with the atomistic
//! KMC engine, and tracks cluster formation over time — then repeats
//! the run under all three ghost-exchange strategies (traditional full
//! slabs, on-demand two-sided, on-demand one-sided) to show they
//! produce the *same physics* while moving very different numbers of
//! bytes (paper §2.2.1, Figs. 8 & 12).

use mmds::analysis::clusters::cluster_sizes;
use mmds::analysis::dispersion::mean_nn_distance;
use mmds::kmc::comm::LoopbackK;
use mmds::kmc::lattice::required_ghost;
use mmds::kmc::{ExchangeStrategy, KmcConfig, KmcSimulation, OnDemandMode};
use mmds::lattice::{BccGeometry, LocalGrid};

fn build() -> KmcSimulation {
    let cfg = KmcConfig {
        table_knots: 1500,
        events_per_cycle: 0.5,
        seed: 99,
        ..Default::default()
    };
    let ghost = required_ghost(cfg.a0, cfg.rate_cutoff);
    let grid = LocalGrid::whole(BccGeometry::fe_cube(14), ghost);
    let mut sim = KmcSimulation::new(cfg, grid);
    sim.lat.seed_vacancies_global(30, 1234);
    sim.initialize(&mut LoopbackK);
    sim
}

fn main() {
    let geom = BccGeometry::fe_cube(14);
    let box_len = geom.box_lengths();
    let r_link = 1.2 * geom.nn2();

    println!("clustering trajectory (30 vacancies, 600 K):");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>12}",
        "cycle", "events", "clusters", "largest", "dispersion"
    );
    let mut sim = build();
    let strategy = ExchangeStrategy::OnDemand(OnDemandMode::TwoSided);
    let mut events = 0;
    for block in 0..=8 {
        if block > 0 {
            events += sim.run_cycles(strategy, &mut LoopbackK, 5);
        }
        let pts: Vec<[f64; 3]> = sim.lat.vacancies().map(|s| sim.lat.position(s)).collect();
        let cl = cluster_sizes(&pts, box_len, r_link);
        let disp = mean_nn_distance(&pts, box_len);
        println!(
            "{:>8} {:>8} {:>10} {:>10} {:>12.3}",
            block * 5,
            events,
            cl.n_clusters,
            cl.largest,
            disp.ratio
        );
    }

    println!("\nexchange strategies produce identical owned states:");
    let mut reference: Option<Vec<u8>> = None;
    for (name, strategy) in [
        ("traditional", ExchangeStrategy::Traditional),
        (
            "on-demand 2-sided",
            ExchangeStrategy::OnDemand(OnDemandMode::TwoSided),
        ),
        (
            "on-demand 1-sided",
            ExchangeStrategy::OnDemand(OnDemandMode::OneSided),
        ),
    ] {
        let mut s = build();
        let ev = s.run_cycles(strategy, &mut LoopbackK, 60);
        let owned: Vec<u8> = s
            .lat
            .grid
            .interior_ids()
            .map(|i| s.lat.state[i].to_u8())
            .collect();
        match &reference {
            None => reference = Some(owned),
            Some(r) => assert_eq!(r, &owned, "{name} diverged!"),
        }
        println!("  {name:<18} {ev} events, final state identical: yes");
    }
}
