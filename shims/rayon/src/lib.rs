//! Offline stand-in for `rayon`.
//!
//! Implements the small data-parallel surface this workspace uses —
//! `vec.into_par_iter().enumerate().map(f).collect()` and
//! `slice.par_iter().map(f).collect()` / `.for_each(f)` — with real
//! OS-thread parallelism via `std::thread::scope`. Items are split into
//! contiguous chunks, one per available core, and results are
//! reassembled in order, so `collect()` is deterministic.

/// Number of worker threads used for a parallel call. Like real rayon,
/// `RAYON_NUM_THREADS` overrides the detected core count (useful for
/// determinism tests that sweep thread counts on any machine).
fn n_workers(items: usize) -> usize {
    let cores = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    cores.min(items).max(1)
}

/// Runs `f` over `items` with one thread per chunk, preserving order.
fn par_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = n_workers(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // Split into `workers` contiguous chunks of owned items.
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let f = &f;
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        out = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    out.into_iter().flatten().collect()
}

/// A materialized parallel iterator: items plus deferred execution.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs each item with its index (order-preserving).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Maps `f` over the items in parallel, preserving order. Unlike
    /// real rayon this executes eagerly, which keeps `collect` at a
    /// single generic parameter (`collect::<Vec<_>>()` works).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Runs `f` over all items in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Collects the items (no-op pipeline).
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_vec(self.items)
    }
}

/// Collection targets for [`ParIter::collect`].
pub trait FromParallelIterator<T> {
    /// Builds the collection from an ordered vec.
    fn from_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_vec(v: Vec<T>) -> Self {
        v
    }
}

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// By-reference conversion into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn enumerate_matches_serial() {
        let v = vec!["a", "b", "c"];
        let out: Vec<(usize, &str)> = v.into_par_iter().enumerate().collect();
        assert_eq!(out, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn thread_count_override_preserves_results() {
        // 3 (not 1) so a concurrently running thread-count assertion in
        // this binary cannot be starved by the override.
        std::env::set_var("RAYON_NUM_THREADS", "3");
        let v: Vec<u64> = (0..997).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 3 + 1).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, (0..997).map(|x| x * 3 + 1).collect::<Vec<u64>>());
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let n = 64;
        (0..n).collect::<Vec<_>>().into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let distinct = ids.lock().unwrap().len();
        // Single-core machines legitimately see 1.
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        assert!(distinct > 1 || cores == 1, "expected parallel execution");
    }
}
