//! Offline stand-in for `criterion`.
//!
//! Keeps the macro/API surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `Bencher::iter`,
//! `black_box`) but replaces the statistics engine with a simple
//! fixed-sample wall-clock median, printed per benchmark.

use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark driver handed to group functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&name.to_string(), self.sample_size, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&name.to_string(), self.sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { times: Vec::new() };
    for _ in 0..samples.max(1) {
        f(&mut b);
    }
    b.times.sort_by(f64::total_cmp);
    let median = b.times.get(b.times.len() / 2).copied().unwrap_or(0.0);
    println!(
        "  {name}: median {:.3} ms ({} samples)",
        median * 1e3,
        b.times.len()
    );
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    times: Vec<f64>,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        black_box(routine());
        self.times.push(t0.elapsed().as_secs_f64());
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
