//! Offline stand-in for `rand` 0.9.
//!
//! Provides the subset this workspace uses: [`Rng`] (`random`,
//! `random_range`, `random_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — *not* the
//! same stream as real rand's ChaCha12, but deterministic and of good
//! statistical quality), and [`seq::SliceRandom::shuffle`].

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods (rand 0.9 naming).
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the
    /// full range; `bool`: fair coin).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty)*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

macro_rules! range_int {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); span is far
                // below 2^64 in practice so modulo bias is negligible,
                // but do it right anyway.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (s as i128 + hi) as $t
            }
        }
    )*};
}
range_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: a small fast RNG (same engine in this shim).
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
            let n = a.random_range(3usize..17);
            assert!((3..17).contains(&n));
            b.random_range(3usize..17);
            let z = a.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&z));
            b.random_range(-1.0f64..1.0);
        }
    }

    #[test]
    fn range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
