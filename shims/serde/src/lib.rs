//! Offline stand-in for `serde`.
//!
//! The real crates.io `serde` is unavailable in this build environment,
//! so this shim provides the subset the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits, `#[derive(Serialize,
//! Deserialize)]` (via the sibling `serde_derive` shim), and a simple
//! [`Value`] tree that `serde_json` renders to and parses from.
//!
//! The data model is deliberately tiny: serialization produces a
//! [`Value`], deserialization consumes one. Derived impls follow
//! serde's externally-tagged conventions (structs → maps, unit enum
//! variants → strings, data-carrying variants → single-entry maps) so
//! JSON written by this shim matches what real serde_json would emit
//! for the same types.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of any value: a JSON-shaped tree.
///
/// Maps preserve insertion order (fields serialize in declaration
/// order, like real serde).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit `i64`'s positive range
    /// semantics (kept separate so `u64::MAX` round-trips).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected vs. what was found.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Constructs an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

/// A type that can render itself into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the shim data model.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the shim data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Alias mirroring `serde::de::DeserializeOwned`.
pub mod de {
    /// In this shim all deserialization is owned.
    pub use super::Deserialize as DeserializeOwned;
    pub use super::Deserialize;
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    Value::F64(x) if x.fract() == 0.0 => Ok(*x as $t),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
ser_int!(i8 i16 i32 i64 isize);

macro_rules! ser_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    Value::I64(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as $t),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
ser_uint!(u8 u16 u32 u64 usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN), // serde_json emits null for NaN/inf
            _ => Err(DeError::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Mirrors serde's borrowed-str deserialization for `&'static str`
/// fields. The shim has no input to borrow from, so the string is
/// leaked; acceptable for the config-sized structs that use it.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            // The derive shim has no `#[serde(default)]`; a struct field
            // absent from the input map reaches us as `Null`. Treating
            // it as an empty vec keeps newly added list fields readable
            // from documents written before the field existed.
            Value::Null => Ok(Vec::new()),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(xs) if xs.len() == N => {
                let items: Result<Vec<T>, DeError> = xs.iter().map(T::from_value).collect();
                items?
                    .try_into()
                    .map_err(|_| DeError::expected("fixed-size array", v))
            }
            _ => Err(DeError::expected("array", v)),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(xs) => Ok(($($t::from_value(
                        xs.get($n).ok_or_else(|| DeError::expected("tuple element", v))?
                    )?,)+)),
                    _ => Err(DeError::expected("tuple", v)),
                }
            }
        }
    )*};
}
ser_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Support helpers used by the derive macro's generated code.
pub mod derive_support {
    use super::{DeError, Value};

    /// Fetches a struct field, treating a missing key as `Null` (so
    /// `Option` fields tolerate omission, like serde's `default`).
    pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
        match v {
            Value::Map(_) => Ok(v.get(name).unwrap_or(&Value::Null)),
            _ => Err(DeError::expected("object", v)),
        }
    }

    /// Fetches a required struct field.
    pub fn required_field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
        match v {
            Value::Map(_) => v
                .get(name)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            _ => Err(DeError::expected("object", v)),
        }
    }

    /// Decodes an externally-tagged enum: either `"Variant"` or
    /// `{"Variant": payload}`. Returns the variant name and payload.
    pub fn variant(v: &Value) -> Result<(&str, &Value), DeError> {
        match v {
            Value::Str(s) => Ok((s.as_str(), &Value::Null)),
            Value::Map(m) if m.len() == 1 => Ok((m[0].0.as_str(), &m[0].1)),
            _ => Err(DeError::expected("enum variant", v)),
        }
    }

    /// Interprets a tuple-variant payload of known arity as a slice of
    /// values (serde collapses 1-tuples to the bare value).
    pub fn tuple_payload(v: &Value, arity: usize) -> Result<Vec<&Value>, DeError> {
        if arity == 1 {
            return Ok(vec![v]);
        }
        match v {
            Value::Seq(xs) if xs.len() == arity => Ok(xs.iter().collect()),
            _ => Err(DeError::expected("tuple variant payload", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_value(&42i32.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<[f64; 3]> = vec![[1.0, 2.0, 3.0]];
        assert_eq!(Vec::<[f64; 3]>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn option_none_is_null_and_missing_field_tolerated() {
        assert_eq!(Option::<u32>::to_value(&None), Value::Null);
        let m = Value::Map(vec![]);
        let f = derive_support::field(&m, "absent").unwrap();
        assert_eq!(Option::<u32>::from_value(f).unwrap(), None);
    }
}
