//! Offline stand-in for `serde_json`.
//!
//! Renders the shim `serde` [`Value`] tree to JSON text and parses JSON
//! text back. Floats are printed with Rust's shortest-round-trip
//! formatting (the behaviour real serde_json's `float_roundtrip`
//! feature guarantees); non-finite floats serialize as `null`, matching
//! real serde_json.

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut w: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    w.write_all(s.as_bytes()).map_err(|e| Error(e.to_string()))
}

/// Parses a value out of a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest representation that parses
                // back to the same f64.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, x, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            m.push((k, v));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(xs));
        }
        loop {
            xs.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(xs));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        _ => return Err(Error(format!("bad escape `\\{}`", e as char))),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence that starts here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    s.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?,
                    );
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        let integral = !text.contains(['.', 'e', 'E']);
        if integral {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::I64(1), Value::F64(2.5)])),
            ("s".into(), Value::Str("hi \"there\"\n".into())),
            ("n".into(), Value::Null),
            ("b".into(), Value::Bool(true)),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(parse(&s).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_shortest() {
        for x in [0.1, 1.0 / 3.0, 6.0e-8, f64::MAX, -2.5e-300] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<i32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
    }
}
