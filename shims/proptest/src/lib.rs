//! Offline stand-in for `proptest`.
//!
//! Supports the forms this workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]`
//! header, range strategies over integers and floats,
//! `prop::collection::vec`, `any::<T>()`, and the `prop_assert*!`
//! macros. Inputs are sampled from a deterministic per-test RNG
//! (seeded from the test name and case index), so failures are
//! reproducible run to run. There is no shrinking: a failing case
//! panics with the ordinary assert message.

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

// ---------------------------------------------------------------------
// Deterministic RNG (SplitMix64)
// ---------------------------------------------------------------------

/// The sampling RNG handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Builds the deterministic RNG for one test case.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng {
        state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A source of sampled values.
pub trait Strategy {
    /// The sampled type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! int_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

/// Strategy for "any value of T" (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

/// Builds an [`Any`] strategy.
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a full-range sample.
pub trait ArbitrarySample {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty)*) => {$(
        impl ArbitrarySample for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl ArbitrarySample for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitrarySample for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors of `inner` samples.
    pub struct VecStrategy<S> {
        inner: S,
        len: Range<usize>,
    }

    /// Vector of `len` samples drawn from `inner`.
    pub fn vec<S: Strategy>(inner: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { inner, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.inner.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// The property-test macro: runs each body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Glob-import module matching real proptest's prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1.5f64..2.5, n in 3usize..9, b in 0u8..2) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(b < 2);
        }

        #[test]
        fn vec_strategy_sizes(xs in prop::collection::vec(any::<u32>(), 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7, "len {}", xs.len());
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = super::test_rng("t", 3);
        let mut b = super::test_rng("t", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
