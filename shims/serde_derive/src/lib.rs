//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the shim `serde` crate's value-tree data model. Because
//! `syn`/`quote` are unavailable offline, the item is parsed with a
//! small hand-rolled token walker and the impls are emitted as source
//! strings. Supported shapes (everything this workspace derives):
//!
//! * structs with named fields (non-generic),
//! * tuple structs,
//! * enums with unit, tuple, and struct variants (discriminants
//!   allowed and ignored).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<(String, VariantShape)>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            if *n == 1 {
                items[0].clone()
            } else {
                format!("serde::Value::Seq(vec![{}])", items.join(", "))
            }
        }
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        let payload = if *n == 1 {
                            vals[0].clone()
                        } else {
                            format!("serde::Value::Seq(vec![{}])", vals.join(", "))
                        };
                        format!(
                            "{name}::{v}({binds}) => serde::Value::Map(vec![(\"{v}\".to_string(), {payload})]),",
                            binds = binds.join(", ")
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {fields} }} => serde::Value::Map(vec![(\"{v}\".to_string(), serde::Value::Map(vec![{entries}]))]),",
                            fields = fields.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {} {{\n fn to_value(&self) -> serde::Value {{ {} }}\n}}",
        item.name, body
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(serde::derive_support::field(v, \"{f}\")?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(n) => {
            if *n == 1 {
                format!("Ok({name}(serde::Deserialize::from_value(v)?))")
            } else {
                let gets: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(xs[{i}])?"))
                    .collect();
                format!(
                    "let xs = serde::derive_support::tuple_payload(v, {n})?; Ok({name}({}))",
                    gets.join(", ")
                )
            }
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!("\"{v}\" => Ok({name}::{v}),"),
                    VariantShape::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(xs[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => {{ let xs = serde::derive_support::tuple_payload(payload, {n})?; Ok({name}::{v}({})) }}",
                            gets.join(", ")
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(serde::derive_support::field(payload, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        format!("\"{v}\" => Ok({name}::{v} {{ {} }}),", inits.join(", "))
                    }
                })
                .collect();
            format!(
                "let (tag, payload) = serde::derive_support::variant(v)?; let _ = payload; match tag {{ {} _ => Err(serde::DeError(format!(\"unknown variant `{{tag}}` of {name}\"))), }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n}}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Token walking
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (type `{name}`)");
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_items(g.stream()))
            }
            _ => Shape::NamedStruct(Vec::new()), // unit struct
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    let _ = toks.drain(..); // silence unused warnings on older toolchains
    Item { name, shape }
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Counts comma-separated items at the top level of a token stream,
/// ignoring commas nested inside `<...>` (generic args) or groups.
fn count_top_level_items(ts: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut items = 0usize;
    let mut saw_tok = false;
    for t in ts {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if saw_tok {
                    items += 1;
                }
                saw_tok = false;
                continue;
            }
            _ => {}
        }
        saw_tok = true;
    }
    items + usize::from(saw_tok)
}

/// Parses `name: Type, ...` named-field lists, returning field names.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after `{name}`, got {other:?}"),
        }
        skip_type(&toks, &mut i);
        fields.push(name);
    }
    fields
}

/// Parses enum variants, returning `(name, shape)` pairs.
fn parse_variants(ts: TokenStream) -> Vec<(String, VariantShape)> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_items(g.stream());
                i += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_type(&toks, &mut i);
        variants.push((name, shape));
    }
    variants
}

/// Advances past tokens until a top-level `,` (angle-bracket aware),
/// consuming the comma.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}
