//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` / `Condvar` behind parking_lot's
//! no-poisoning API (`lock()` returns the guard directly, `wait` takes
//! `&mut MutexGuard`). Poisoned locks panic, which matches the
//! workspace's expectations (a panicked rank thread aborts the run).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, panicking on poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().expect("poisoned shim Mutex")),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(_) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("poisoned shim Mutex")
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can take it
/// by value and put the re-acquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

/// A condition variable compatible with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condvar.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard taken");
        guard.guard = Some(self.inner.wait(inner).expect("poisoned shim Mutex"));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            c.wait(&mut ready);
        }
        drop(ready);
        h.join().unwrap();
    }
}
