//! # mmds-sunway — SW26010 core-group simulator
//!
//! The paper (§2.1.2) accelerates EAM potential evaluation on the Sunway
//! SW26010's *slave cores* (CPEs): each core group has one master core
//! (MPE) plus an 8×8 CPE mesh, every CPE owning a 64 KB software-managed
//! local store fed by DMA. The optimisations evaluated in Fig. 9 —
//! compacted interpolation tables, ghost-data reuse between blocks, and
//! double buffering — are all *local-store resource* techniques.
//!
//! We have no Sunway toolchain, so this crate provides the closest
//! substitute that exercises the same code paths:
//!
//! * [`LocalStore`] is a capacity-enforced allocator: asking for a 273 KB
//!   traditional interpolation table *fails*, exactly like on the real
//!   hardware, while the 39 KB compacted table fits.
//! * [`CpeCtx::dma_get_f64`] / [`CpeCtx::dma_put_f64`] really copy data
//!   between "main memory" (host slices) and local-store buffers, and
//!   charge virtual time through [`SwModel`].
//! * [`CpeCluster`] executes kernels on 64 logical CPEs in parallel
//!   (via rayon) and reports the cluster kernel time as the *maximum*
//!   per-CPE virtual time — the quantity an MPE would observe.
//! * [`pipeline::pipeline_time`] models the double-buffer overlap of
//!   Fig. 6.
//!
//! Virtual times are deterministic: they are derived from counted work
//! (flops, DMA bytes/transactions), never from wall clocks, so results
//! are reproducible under any host load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod budget;
pub mod counters;
pub mod cpe;
pub mod ldm_cache;
pub mod local_store;
pub mod pipeline;
pub mod register;

pub use arch::SwModel;
pub use budget::{LdmBudgetError, LdmItem, LdmPlan};
pub use counters::CpeCounters;
pub use cpe::{ClusterReport, CpeCluster, CpeCtx};
pub use ldm_cache::SoftCache;
pub use local_store::{LdmOverflow, LocalStore, LsVec};
pub use register::RegisterMesh;
