//! Register communication between CPE local stores.
//!
//! §2.1.2: "Another method is to distribute all the tables to the local
//! stores of neighbor slave cores, and use register communication
//! supported by Sunway many-core architecture to transfer data between
//! the local stores. However, since which data in the tables should be
//! transferred cannot be known before runtime, it is very difficult to
//! describe these irregular communications using register
//! communication." The conclusion (§5) proposes *one-sided* register
//! communication as the missing primitive.
//!
//! This module models both so the trade-off the paper describes can be
//! quantified (see the `ablation_tables` bench binary): the SW26010
//! register mesh moves 256-bit rows between CPEs in the same row/column
//! with ~10-cycle latency, but the *two-sided* discipline means every
//! irregular fetch costs a request/reply round trip plus the partner's
//! polling overhead.

use serde::{Deserialize, Serialize};

/// Cost model for the 8×8 CPE register mesh.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RegisterMesh {
    /// Cycle time (s) — CPEs run at 1.45 GHz.
    pub cycle_time: f64,
    /// Cycles for one 256-bit row transfer between same-row/column CPEs.
    pub hop_cycles: u64,
    /// Extra cycles when the route needs a row→column turn (two hops).
    pub turn_cycles: u64,
    /// Cycles the *partner* CPE spends servicing one two-sided request
    /// (poll, match, reply) — the cost the paper's "difficult to
    /// describe irregular communications" refers to.
    pub service_cycles: u64,
}

impl Default for RegisterMesh {
    fn default() -> Self {
        Self::sw26010()
    }
}

impl RegisterMesh {
    /// SW26010-like constants.
    pub fn sw26010() -> Self {
        Self {
            cycle_time: 1.0 / 1.45e9,
            hop_cycles: 10,
            turn_cycles: 11,
            service_cycles: 25,
        }
    }

    /// 256-bit (32-byte) rows needed for `bytes`.
    pub fn rows(bytes: usize) -> u64 {
        bytes.div_ceil(32) as u64
    }

    /// Whether two CPEs of an 8×8 mesh share a row or column.
    pub fn same_row_or_col(a: usize, b: usize) -> bool {
        a / 8 == b / 8 || a % 8 == b % 8
    }

    /// Time for a *two-sided* register fetch of `bytes` from a neighbour
    /// CPE: request row + reply rows + the partner's service overhead.
    pub fn two_sided_fetch(&self, bytes: usize, needs_turn: bool) -> f64 {
        let route = self.hop_cycles + if needs_turn { self.turn_cycles } else { 0 };
        let cycles =
            route // request
            + self.service_cycles
            + route + (Self::rows(bytes) - 1) // pipelined reply rows
            ;
        cycles as f64 * self.cycle_time
    }

    /// Time for the hypothetical *one-sided* register fetch the paper's
    /// conclusion asks for: no partner service, just route + data rows.
    pub fn one_sided_fetch(&self, bytes: usize, needs_turn: bool) -> f64 {
        let route = self.hop_cycles + if needs_turn { self.turn_cycles } else { 0 };
        let cycles = 2 * route + (Self::rows(bytes) - 1);
        cycles as f64 * self.cycle_time
    }

    /// Time the *partner* CPE loses per serviced request (stolen from
    /// its own compute) under the two-sided discipline.
    pub fn partner_overhead(&self) -> f64 {
        self.service_cycles as f64 * self.cycle_time
    }
}

/// Plans a distributed-table layout: `table_bytes` split evenly across
/// `n_cpes` local stores; returns the slice bytes each CPE holds and
/// the probability that a random access is local.
pub fn distributed_table_plan(table_bytes: usize, n_cpes: usize) -> (usize, f64) {
    let slice = table_bytes.div_ceil(n_cpes);
    (slice, 1.0 / n_cpes as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_math() {
        assert_eq!(RegisterMesh::rows(1), 1);
        assert_eq!(RegisterMesh::rows(32), 1);
        assert_eq!(RegisterMesh::rows(33), 2);
        assert_eq!(RegisterMesh::rows(56), 2);
    }

    #[test]
    fn mesh_topology() {
        assert!(RegisterMesh::same_row_or_col(0, 7)); // same row
        assert!(RegisterMesh::same_row_or_col(0, 56)); // same column
        assert!(!RegisterMesh::same_row_or_col(0, 9)); // diagonal
    }

    #[test]
    fn one_sided_beats_two_sided() {
        let m = RegisterMesh::sw26010();
        for bytes in [8usize, 32, 56] {
            assert!(
                m.one_sided_fetch(bytes, true) < m.two_sided_fetch(bytes, true),
                "one-sided must avoid the service overhead"
            );
        }
    }

    #[test]
    fn register_fetch_faster_than_main_memory_dma() {
        // The raw transfer is much faster than a DMA gather — the
        // paper's point is that the *programming model*, not the speed,
        // makes it impractical for irregular table accesses.
        let m = RegisterMesh::sw26010();
        let dma = crate::SwModel::sw26010().dma_time(56);
        assert!(m.two_sided_fetch(56, true) < dma);
    }

    #[test]
    fn distribution_plan() {
        let (slice, p_local) = distributed_table_plan(280_000, 64);
        assert_eq!(slice, 4375);
        assert!((p_local - 1.0 / 64.0).abs() < 1e-12);
        assert!(
            slice < crate::SwModel::sw26010().ldm_bytes,
            "slices fit trivially in the LDM"
        );
    }
}
