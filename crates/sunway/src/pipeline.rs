//! Double-buffer overlap model (paper Fig. 6).
//!
//! Each CPE processes its slab as a sequence of blocks; per block it
//! DMA-gets the input ("stream" transfers), computes — issuing
//! latency-bound gather DMAs for table rows / halo atoms that are not
//! local-store resident — and DMA-puts the output. Double buffering
//! overlaps the *stream* DMA of block *i+1* with the compute of block
//! *i* ("while carrying out DMA put or get on one buffer, it computes
//! ... on the other buffer"). Gather DMAs sit on the critical path of
//! the compute phase and cannot be overlapped — which is exactly why
//! the paper finds double buffering gains little once compaction has
//! already removed most of the gathers ("there is not enough
//! computation to overlap").

/// Virtual-time cost of one block, split by overlappability.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockCost {
    /// Bulk staging DMA (block input get + output put) — overlappable.
    pub stream: f64,
    /// Latency-bound gather DMA issued from inside the compute loop
    /// (non-resident table rows, halo atom fetches) — NOT overlappable.
    pub gather: f64,
    /// Arithmetic time.
    pub compute: f64,
}

impl BlockCost {
    /// The critical-path (non-overlappable) phase of the block.
    pub fn critical(&self) -> f64 {
        self.gather + self.compute
    }

    /// Total serialized time of the block.
    pub fn total(&self) -> f64 {
        self.stream + self.gather + self.compute
    }
}

/// Total kernel time for a sequence of blocks.
///
/// * Single buffer: `Σ (stream_i + gather_i + compute_i)`.
/// * Double buffer: the first stream is an un-overlapped prologue, then
///   each critical phase runs concurrently with the next block's stream:
///   `stream_0 + Σ max(gather_i + compute_i, stream_{i+1})`.
pub fn pipeline_time(blocks: &[BlockCost], double_buffer: bool) -> f64 {
    if blocks.is_empty() {
        return 0.0;
    }
    if !double_buffer {
        return blocks.iter().map(|b| b.total()).sum();
    }
    let mut t = blocks[0].stream;
    for i in 0..blocks.len() {
        let next_stream = blocks.get(i + 1).map_or(0.0, |b| b.stream);
        t += blocks[i].critical().max(next_stream);
    }
    t
}

/// What double buffering saves for these blocks.
pub fn double_buffer_gain(blocks: &[BlockCost]) -> f64 {
    pipeline_time(blocks, false) - pipeline_time(blocks, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(n: usize, stream: f64, gather: f64, compute: f64) -> Vec<BlockCost> {
        vec![
            BlockCost {
                stream,
                gather,
                compute,
            };
            n
        ]
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(pipeline_time(&[], true), 0.0);
        assert_eq!(pipeline_time(&[], false), 0.0);
    }

    #[test]
    fn single_buffer_sums() {
        let b = blocks(3, 2.0, 1.0, 5.0);
        assert_eq!(pipeline_time(&b, false), 24.0);
    }

    #[test]
    fn double_buffer_hides_stream_only() {
        let b = blocks(10, 1.0, 0.0, 5.0);
        // 1 (prologue) + 10 * max(5, 1) = 51 vs 60 sequential.
        assert_eq!(pipeline_time(&b, true), 51.0);
        assert_eq!(double_buffer_gain(&b), 9.0);
    }

    #[test]
    fn gather_is_never_hidden() {
        // All-gather blocks: double buffering buys nothing.
        let b = blocks(10, 0.0, 4.0, 1.0);
        assert_eq!(pipeline_time(&b, true), pipeline_time(&b, false));
    }

    #[test]
    fn paper_shape_small_gain_when_stream_small() {
        // After compaction + reuse, stream is a few % of the block:
        // the paper sees "no obvious performance improvement".
        let b = blocks(10, 0.1, 2.0, 3.0);
        let seq = pipeline_time(&b, false);
        let db = pipeline_time(&b, true);
        assert!((seq - db) / seq < 0.03, "gain {}", (seq - db) / seq);
    }

    #[test]
    fn double_buffer_never_slower() {
        let b = vec![
            BlockCost {
                stream: 3.0,
                gather: 0.5,
                compute: 1.0,
            },
            BlockCost {
                stream: 0.5,
                gather: 0.0,
                compute: 4.0,
            },
            BlockCost {
                stream: 2.0,
                gather: 1.0,
                compute: 2.0,
            },
        ];
        assert!(pipeline_time(&b, true) <= pipeline_time(&b, false) + 1e-12);
    }

    #[test]
    fn single_block_db_equals_sequential() {
        let b = blocks(1, 2.0, 1.5, 3.0);
        assert_eq!(pipeline_time(&b, true), pipeline_time(&b, false));
    }
}
