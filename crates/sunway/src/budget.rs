//! Symbolic LDM budget plans — the static side of [`crate::LocalStore`].
//!
//! The paper's whole local-store discipline (§2.1.2) exists because a
//! CPE kernel's resident tables, staging buffers, and retained ghost
//! data must *simultaneously* fit in 64 KB. The allocator enforces that
//! at runtime; this module lets a kernel *declare* its worst-case
//! footprint symbolically — as `count × elem_bytes` items derived from
//! plan constants (knots, block sites, buffering flags) — so the
//! `mmds-audit` LDM budget prover can verify every registered kernel
//! plan against [`crate::SwModel::sw26010`]`.ldm_bytes` without running
//! anything.
//!
//! The symbolic and concrete sides are tied together two ways:
//! * [`LdmPlan::simulate_high_water`] performs the plan's allocations
//!   in a real [`crate::LocalStore`] and must reproduce
//!   [`LdmPlan::total_bytes`] exactly (property-tested in `mmds-audit`);
//! * [`crate::ClusterReport::ldm_high_water`] reports what a kernel
//!   actually kept live, which must stay at or below its declared plan.

use crate::local_store::LocalStore;

/// One item of a kernel's worst-case simultaneous-live set, kept in
/// `count × elem_bytes` form so budget tables show the formula, not
/// just the product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdmItem {
    /// What the bytes hold (e.g. `"resident table"`, `"block in"`).
    pub name: String,
    /// Element count (knots, sites×3, …).
    pub count: usize,
    /// Bytes per element.
    pub elem_bytes: usize,
}

impl LdmItem {
    /// Creates an item.
    pub fn new(name: impl Into<String>, count: usize, elem_bytes: usize) -> Self {
        Self {
            name: name.into(),
            count,
            elem_bytes,
        }
    }

    /// Total bytes of this item.
    pub fn bytes(&self) -> usize {
        self.count * self.elem_bytes
    }
}

/// The declared worst-case footprint of one CPE kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdmPlan {
    /// Kernel identifier (e.g. `"md.offload/CompactedTable/force_pair"`).
    pub kernel: String,
    /// Simultaneously-live items.
    pub items: Vec<LdmItem>,
    /// Capacity the plan must fit in (normally
    /// [`crate::SwModel::sw26010`]`.ldm_bytes`).
    pub capacity: usize,
}

/// A plan that exceeds its capacity, with the per-item breakdown the
/// prover reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdmBudgetError {
    /// The offending plan (items included for the breakdown).
    pub plan: LdmPlan,
    /// Its total bytes (> capacity).
    pub total: usize,
}

impl std::fmt::Display for LdmBudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "kernel `{}` needs {} B but the local store holds {} B:",
            self.plan.kernel, self.total, self.plan.capacity
        )?;
        for item in &self.plan.items {
            writeln!(
                f,
                "  {:<24} {:>7} × {:>2} B = {:>7} B",
                item.name,
                item.count,
                item.elem_bytes,
                item.bytes()
            )?;
        }
        write!(
            f,
            "  {:<24} {:>24} B over by {} B",
            "TOTAL",
            self.total,
            self.total - self.plan.capacity
        )
    }
}

impl std::error::Error for LdmBudgetError {}

impl LdmPlan {
    /// Creates an empty plan for `kernel` against `capacity` bytes.
    pub fn new(kernel: impl Into<String>, capacity: usize) -> Self {
        Self {
            kernel: kernel.into(),
            items: Vec::new(),
            capacity,
        }
    }

    /// Adds an item (builder style).
    pub fn with(mut self, name: impl Into<String>, count: usize, elem_bytes: usize) -> Self {
        self.items.push(LdmItem::new(name, count, elem_bytes));
        self
    }

    /// Worst-case simultaneous-live bytes.
    pub fn total_bytes(&self) -> usize {
        self.items.iter().map(LdmItem::bytes).sum()
    }

    /// Proves the plan fits its capacity, or returns the per-item
    /// breakdown of the overflow.
    pub fn check(&self) -> Result<(), LdmBudgetError> {
        let total = self.total_bytes();
        if total <= self.capacity {
            Ok(())
        } else {
            Err(LdmBudgetError {
                plan: self.clone(),
                total,
            })
        }
    }

    /// Fraction of capacity used (can exceed 1 for failing plans).
    pub fn utilisation(&self) -> f64 {
        self.total_bytes() as f64 / self.capacity as f64
    }

    /// Performs this plan's allocations simultaneously in a real
    /// [`LocalStore`] (sized to the plan, so over-capacity plans can
    /// still be simulated) and returns the store's high-water mark.
    /// Must equal [`LdmPlan::total_bytes`] — the prover's symbolic
    /// arithmetic and the enforced allocator agree byte for byte.
    pub fn simulate_high_water(&self) -> usize {
        let ls = LocalStore::new(self.total_bytes().max(self.capacity));
        let held: Vec<_> = self
            .items
            .iter()
            .map(|item| {
                ls.alloc_with::<u8>(item.bytes(), 0)
                    .expect("store sized to the plan total")
            })
            .collect();
        let hw = ls.high_water();
        drop(held);
        hw
    }
}

/// Renders the per-kernel budget table the `mmds-audit` LDM prover
/// emits: one section per plan, one row per item, with totals and
/// utilisation. The output is deterministic (plan/item order is the
/// caller's) and golden-tested in `mmds-audit`.
pub fn render_budget_table(plans: &[LdmPlan]) -> String {
    let mut out = String::new();
    out.push_str("LDM budget (worst-case simultaneous-live bytes per CPE)\n");
    for plan in plans {
        let total = plan.total_bytes();
        let verdict = if total <= plan.capacity { "ok" } else { "OVER" };
        out.push_str(&format!(
            "\n{}  [{} / {} B, {:.1}%, {}]\n",
            plan.kernel,
            total,
            plan.capacity,
            100.0 * plan.utilisation(),
            verdict
        ));
        for item in &plan.items {
            out.push_str(&format!(
                "  {:<24} {:>7} x {:>2} B = {:>7} B\n",
                item.name,
                item.count,
                item.elem_bytes,
                item.bytes()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwModel;

    #[test]
    fn compacted_plan_fits_traditional_does_not() {
        let ldm = SwModel::sw26010().ldm_bytes;
        let ok = LdmPlan::new("compacted", ldm)
            .with("resident table", 5000, 8)
            .with("block in", 448 * 3, 8);
        ok.check().unwrap();
        let over = LdmPlan::new("traditional-resident", ldm).with("resident table", 5000 * 7, 8);
        let err = over.check().unwrap_err();
        assert_eq!(err.total, 280_000);
        let msg = err.to_string();
        assert!(msg.contains("traditional-resident"), "{msg}");
        assert!(msg.contains("280000"), "{msg}");
    }

    #[test]
    fn simulation_matches_symbolic_total() {
        let plan = LdmPlan::new("k", 1024)
            .with("a", 10, 8)
            .with("b", 3, 24)
            .with("c", 1, 56);
        assert_eq!(plan.simulate_high_water(), plan.total_bytes());
    }

    #[test]
    fn budget_table_reports_overflow() {
        let plans = vec![
            LdmPlan::new("fits", 100).with("x", 4, 8),
            LdmPlan::new("blows", 100).with("y", 40, 8),
        ];
        let table = render_budget_table(&plans);
        assert!(table.contains("fits"));
        assert!(table.contains("OVER"));
        assert!(table.contains("320 B"));
    }
}
