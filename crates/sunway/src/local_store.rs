//! The 64 KB CPE local store, modelled as a capacity-enforced allocator.
//!
//! Buffers really hold data (kernels compute from them), and the store
//! tracks how many bytes are live so that over-allocation fails exactly
//! where the real hardware would: the paper's traditional 273 KB
//! interpolation table cannot be made resident, while the 39 KB compacted
//! table can (§2.1.2).

use std::cell::Cell;
use std::rc::Rc;

/// Error returned when an allocation would exceed local-store capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdmOverflow {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes already live in the store.
    pub in_use: usize,
    /// Store capacity in bytes.
    pub capacity: usize,
}

impl std::fmt::Display for LdmOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "local store overflow: requested {} B with {} B of {} B in use",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for LdmOverflow {}

/// One CPE's local store.
///
/// `LocalStore` is single-threaded by construction (each CPE context owns
/// one), hence the `Rc<Cell<..>>` bookkeeping.
pub struct LocalStore {
    capacity: usize,
    used: Rc<Cell<usize>>,
    high_water: Rc<Cell<usize>>,
}

impl LocalStore {
    /// Creates a store with `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            used: Rc::new(Cell::new(0)),
            high_water: Rc::new(Cell::new(0)),
        }
    }

    /// Store capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently live.
    pub fn used(&self) -> usize {
        self.used.get()
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.capacity - self.used.get()
    }

    /// Maximum bytes ever simultaneously live (for reporting LDM
    /// pressure of a kernel configuration).
    pub fn high_water(&self) -> usize {
        self.high_water.get()
    }

    /// Allocates an `n`-element `f64` buffer, zero-initialised.
    pub fn alloc_f64(&self, n: usize) -> Result<LsVec<f64>, LdmOverflow> {
        self.alloc_with(n, 0.0)
    }

    /// Allocates an `n`-element buffer filled with `fill`.
    pub fn alloc_with<T: Copy>(&self, n: usize, fill: T) -> Result<LsVec<T>, LdmOverflow> {
        let bytes = n * std::mem::size_of::<T>();
        let in_use = self.used.get();
        if in_use + bytes > self.capacity {
            return Err(LdmOverflow {
                requested: bytes,
                in_use,
                capacity: self.capacity,
            });
        }
        self.used.set(in_use + bytes);
        if self.used.get() > self.high_water.get() {
            self.high_water.set(self.used.get());
        }
        Ok(LsVec {
            data: vec![fill; n],
            bytes,
            used: Rc::clone(&self.used),
        })
    }

    /// Allocates and fills a buffer by copying `src` (a "resident load";
    /// the DMA charge is the caller's job via `CpeCtx::dma_get_f64`).
    pub fn alloc_copy<T: Copy + Default>(&self, src: &[T]) -> Result<LsVec<T>, LdmOverflow> {
        let mut v = self.alloc_with(src.len(), T::default())?;
        v.data.copy_from_slice(src);
        Ok(v)
    }
}

/// A buffer living in a [`LocalStore`]; freed (and its bytes returned to
/// the store) on drop.
pub struct LsVec<T> {
    data: Vec<T>,
    bytes: usize,
    used: Rc<Cell<usize>>,
}

impl<T> LsVec<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of this buffer in local-store bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl<T> std::fmt::Debug for LsVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LsVec({} elems, {} B)", self.data.len(), self.bytes)
    }
}

impl<T> std::ops::Deref for LsVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::DerefMut for LsVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for LsVec<T> {
    fn drop(&mut self) {
        self.used.set(self.used.get() - self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_within_capacity() {
        let ls = LocalStore::new(1024);
        let a = ls.alloc_f64(64).unwrap(); // 512 B
        assert_eq!(ls.used(), 512);
        let b = ls.alloc_f64(64).unwrap(); // 512 B more: exactly full
        assert_eq!(ls.available(), 0);
        drop(a);
        assert_eq!(ls.used(), 512);
        drop(b);
        assert_eq!(ls.used(), 0);
        assert_eq!(ls.high_water(), 1024);
    }

    #[test]
    fn overflow_is_rejected() {
        let ls = LocalStore::new(crate::SwModel::sw26010().ldm_bytes);
        // The paper's traditional interpolation table: 5000*7 f64 = 280 kB.
        let err = ls.alloc_f64(5000 * 7).unwrap_err();
        assert_eq!(err.requested, 5000 * 7 * 8);
        assert_eq!(err.in_use, 0);
        // The compacted table fits.
        assert!(ls.alloc_f64(5000).is_ok());
    }

    #[test]
    fn freed_space_is_reusable() {
        let ls = LocalStore::new(100);
        let a = ls.alloc_with::<u8>(80, 0).unwrap();
        assert!(ls.alloc_with::<u8>(40, 0).is_err());
        drop(a);
        assert!(ls.alloc_with::<u8>(40, 0).is_ok());
    }

    #[test]
    fn buffers_hold_data() {
        let ls = LocalStore::new(1024);
        let mut v = ls.alloc_with(4, 1.5f64).unwrap();
        v[2] = 9.0;
        assert_eq!(&v[..], &[1.5, 1.5, 9.0, 1.5]);
        let c = ls.alloc_copy(&[1u32, 2, 3]).unwrap();
        assert_eq!(&c[..], &[1, 2, 3]);
    }
}
