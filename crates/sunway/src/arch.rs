//! SW26010 architecture constants and the CPE cost model.

use serde::{Deserialize, Serialize};

/// Cost model for one CPE (slave core).
///
/// Sunway SW26010 facts used (Fu et al. 2016, cited by the paper):
/// 1.45 GHz cores, 64 KB local store per CPE, 64 CPEs per core group,
/// 8 GB DDR3 per core group. The DMA constants are *amortized* values:
/// the real engine pipelines outstanding transactions, so the effective
/// per-transaction startup seen by a streaming kernel is far below the
/// raw round-trip latency. We calibrate them so the traditional-table /
/// compacted-table runtime ratio lands near the paper's measured 2.2×
/// (Fig. 9, "54.7% improvement on average in geometric mean").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SwModel {
    /// Seconds per scalar floating-point operation on a CPE.
    /// (1.45 GHz, little superscalar benefit for dependent interpolation
    /// chains ⇒ ~1 flop/cycle.)
    pub flop_time: f64,
    /// Amortized per-transaction DMA startup (seconds). Calibrated so a
    /// per-neighbour table-row gather costs ~2× the per-neighbour
    /// arithmetic, landing the traditional/compacted runtime ratio near
    /// the paper's measured ≈2.2× (Fig. 9).
    pub dma_startup: f64,
    /// Seconds per byte of DMA traffic (≈ 1/8 GB/s effective per CPE when
    /// all 64 CPEs stream concurrently).
    pub dma_byte_time: f64,
    /// Local store capacity per CPE (bytes).
    pub ldm_bytes: usize,
    /// Number of CPEs in the cluster (8×8 mesh).
    pub n_cpes: usize,
}

impl Default for SwModel {
    fn default() -> Self {
        Self::sw26010()
    }
}

impl SwModel {
    /// The SW26010 core-group model used throughout the reproduction.
    pub fn sw26010() -> Self {
        Self {
            flop_time: 1.0 / 1.45e9,
            dma_startup: 1.5e-7,
            dma_byte_time: 1.0 / 8.0e9,
            ldm_bytes: 64 * 1024,
            n_cpes: 64,
        }
    }

    /// A zero-cost model for functional unit tests.
    pub fn free() -> Self {
        Self {
            flop_time: 0.0,
            dma_startup: 0.0,
            dma_byte_time: 0.0,
            ldm_bytes: 64 * 1024,
            n_cpes: 64,
        }
    }

    /// Time for one DMA transaction of `bytes`.
    pub fn dma_time(&self, bytes: usize) -> f64 {
        self.dma_startup + bytes as f64 * self.dma_byte_time
    }

    /// Time for `n` scalar flops.
    pub fn flops_time(&self, n: u64) -> f64 {
        n as f64 * self.flop_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ldm_is_64k() {
        assert_eq!(SwModel::sw26010().ldm_bytes, 65536);
    }

    #[test]
    fn traditional_table_exceeds_ldm() {
        // Paper §2.1.2: a 5000×7 f64 table is ~273 KB > 64 KB,
        // while the 5000-entry compacted table is ~39 KB < 64 KB.
        let m = SwModel::sw26010();
        assert!(5000 * 7 * 8 > m.ldm_bytes);
        assert!(5000 * 8 < m.ldm_bytes);
    }

    #[test]
    fn dma_time_monotone() {
        let m = SwModel::sw26010();
        assert!(m.dma_time(0) > 0.0); // startup dominates tiny transfers
        assert!(m.dma_time(65536) > m.dma_time(64));
    }

    #[test]
    fn free_model_is_free() {
        let m = SwModel::free();
        assert_eq!(m.dma_time(1 << 20), 0.0);
        assert_eq!(m.flops_time(1 << 30), 0.0);
    }
}
