//! Software-emulated LDM cache.
//!
//! §2.1.2: the 64 KB local store "can be configured as either a
//! user-controlled buffer or a software-emulated cache that achieves
//! automatic data caching. Here we use it as a user-controlled buffer
//! since it generally obtains better performance." This module
//! implements the rejected alternative — a direct-mapped
//! software-emulated cache in front of main memory — so the
//! `ablation_tables` bench can quantify the paper's choice.

use serde::{Deserialize, Serialize};

/// A direct-mapped software cache over main-memory addresses.
#[derive(Debug, Clone)]
pub struct SoftCache {
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Number of lines (power of two).
    pub n_lines: usize,
    /// Cycles of software overhead per access (tag check in software —
    /// the emulation cost that makes this slower than a real cache).
    pub hit_cycles: u64,
    /// Seconds per cycle.
    pub cycle_time: f64,
    /// DMA model for misses.
    pub miss_startup: f64,
    /// DMA bandwidth for miss fills (s/byte).
    pub miss_byte_time: f64,
    tags: Vec<u64>,
    /// Accounting.
    pub hits: u64,
    /// Accounting.
    pub misses: u64,
    /// Accumulated virtual time (s).
    pub time: f64,
}

/// Summary counters of a cache run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheReport {
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Virtual seconds spent.
    pub time: f64,
}

impl SoftCache {
    /// A cache occupying `capacity_bytes` of local store with 256 B
    /// lines, using the SW26010 DMA model for misses.
    pub fn new(capacity_bytes: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two());
        let n_lines = (capacity_bytes / line_bytes).next_power_of_two() / 2;
        let n_lines = n_lines.max(1);
        let model = crate::SwModel::sw26010();
        Self {
            line_bytes,
            n_lines,
            // Software tag check + address arithmetic + branch: the
            // emulation layer costs tens of cycles even on a hit.
            hit_cycles: 14,
            cycle_time: 1.0 / 1.45e9,
            miss_startup: model.dma_startup,
            miss_byte_time: model.dma_byte_time,
            tags: vec![u64::MAX; n_lines],
            hits: 0,
            misses: 0,
            time: 0.0,
        }
    }

    /// Bytes of local store this cache occupies.
    pub fn footprint(&self) -> usize {
        self.n_lines * self.line_bytes
    }

    /// Accesses `addr` (a main-memory byte address); charges hit or
    /// miss cost and returns true on a hit.
    pub fn access(&mut self, addr: usize) -> bool {
        let line = addr / self.line_bytes;
        let slot = line % self.n_lines;
        self.time += self.hit_cycles as f64 * self.cycle_time;
        if self.tags[slot] == line as u64 {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.tags[slot] = line as u64;
            self.time += self.miss_startup + self.line_bytes as f64 * self.miss_byte_time;
            false
        }
    }

    /// Accesses a `len`-byte object starting at `addr` (may straddle
    /// lines).
    pub fn access_range(&mut self, addr: usize, len: usize) {
        let first = addr / self.line_bytes;
        let last = (addr + len.max(1) - 1) / self.line_bytes;
        for line in first..=last {
            self.access(line * self.line_bytes);
        }
    }

    /// Snapshot of the counters.
    pub fn report(&self) -> CacheReport {
        let total = self.hits + self.misses;
        CacheReport {
            hits: self.hits,
            misses: self.misses,
            hit_rate: if total == 0 {
                0.0
            } else {
                self.hits as f64 / total as f64
            },
            time: self.time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = SoftCache::new(32 * 1024, 256);
        assert!(!c.access(1000));
        assert!(c.access(1000));
        assert!(c.access(1023)); // same 256-byte line as 1000
        let r = c.report();
        assert_eq!(r.hits, 2);
        assert_eq!(r.misses, 1);
    }

    #[test]
    fn capacity_conflicts_evict() {
        let mut c = SoftCache::new(4 * 1024, 256); // 8 lines
        let stride = c.n_lines * c.line_bytes;
        assert!(!c.access(0));
        assert!(!c.access(stride)); // maps to the same slot
        assert!(!c.access(0), "evicted by the conflicting line");
    }

    #[test]
    fn footprint_within_requested_capacity() {
        let c = SoftCache::new(40 * 1024, 256);
        assert!(c.footprint() <= 40 * 1024);
        assert!(c.n_lines.is_power_of_two());
    }

    #[test]
    fn hits_are_cheaper_than_misses_but_not_free() {
        let mut c = SoftCache::new(32 * 1024, 256);
        c.access(0);
        let t_miss = c.time;
        c.access(0);
        let t_hit = c.time - t_miss;
        assert!(t_hit > 0.0, "software emulation charges even on hits");
        assert!(t_hit < 0.2 * t_miss);
    }

    #[test]
    fn range_access_straddles_lines() {
        let mut c = SoftCache::new(32 * 1024, 256);
        c.access_range(250, 20); // crosses the 256-byte boundary
        assert_eq!(c.report().misses, 2);
    }
}
