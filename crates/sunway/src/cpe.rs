//! CPE execution contexts and the 64-core cluster executor.

use rayon::prelude::*;

use crate::arch::SwModel;
use crate::counters::CpeCounters;
use crate::local_store::{LdmOverflow, LocalStore, LsVec};
use crate::pipeline::{pipeline_time, BlockCost};

/// Execution context of one CPE (slave core) during a kernel.
///
/// Holds the local store, the deterministic work counters, and the
/// block/pipeline state used to model double buffering.
pub struct CpeCtx {
    /// CPE index within the cluster (0..64).
    pub id: usize,
    model: SwModel,
    ls: LocalStore,
    counters: CpeCounters,
    /// When `Some`, DMA/compute charges accumulate into the current
    /// block instead of straight time, and the pipeline model folds them
    /// at `finish_blocks`.
    block_acc: Option<BlockCost>,
    blocks: Vec<BlockCost>,
    double_buffer: bool,
}

impl CpeCtx {
    fn new(id: usize, model: SwModel) -> Self {
        Self {
            id,
            model,
            ls: LocalStore::new(model.ldm_bytes),
            counters: CpeCounters::default(),
            block_acc: None,
            blocks: Vec::new(),
            double_buffer: false,
        }
    }

    /// The cost model in effect.
    pub fn model(&self) -> &SwModel {
        &self.model
    }

    /// The local store of this CPE.
    pub fn local_store(&self) -> &LocalStore {
        &self.ls
    }

    /// Allocates a local-store `f64` buffer.
    pub fn alloc_f64(&self, n: usize) -> Result<LsVec<f64>, LdmOverflow> {
        self.ls.alloc_f64(n)
    }

    /// Snapshot of this CPE's counters.
    pub fn counters(&self) -> CpeCounters {
        self.counters
    }

    /// Total virtual time so far.
    pub fn time(&self) -> f64 {
        self.counters.dma_time + self.counters.compute_time
    }

    fn charge_dma_time(&mut self, t: f64) {
        match &mut self.block_acc {
            Some(b) => b.stream += t,
            None => self.counters.dma_time += t,
        }
    }

    fn charge_compute_time(&mut self, t: f64) {
        match &mut self.block_acc {
            Some(b) => b.compute += t,
            None => self.counters.compute_time += t,
        }
    }

    /// Charges one DMA get of `bytes` without copying (used when the
    /// kernel reads main memory directly but the real hardware would
    /// stream the bytes through the LDM — e.g. block staging).
    pub fn charge_dma_get(&mut self, bytes: usize) {
        self.counters.dma_gets += 1;
        self.counters.bytes_in += bytes as u64;
        let t = self.model.dma_time(bytes);
        self.charge_dma_time(t);
    }

    /// Charges one latency-bound *gather* DMA — a fetch issued from
    /// inside the compute loop (non-resident table row, halo atom).
    /// Inside a block pipeline these land on the critical path and are
    /// never hidden by double buffering.
    pub fn charge_dma_gather(&mut self, bytes: usize) {
        self.counters.dma_gets += 1;
        self.counters.bytes_in += bytes as u64;
        let t = self.model.dma_time(bytes);
        match &mut self.block_acc {
            Some(b) => b.gather += t,
            None => self.counters.dma_time += t,
        }
    }

    /// Charges one DMA put of `bytes` without copying.
    pub fn charge_dma_put(&mut self, bytes: usize) {
        self.counters.dma_puts += 1;
        self.counters.bytes_out += bytes as u64;
        let t = self.model.dma_time(bytes);
        self.charge_dma_time(t);
    }

    /// Charges `n` scalar flops of compute.
    pub fn charge_flops(&mut self, n: u64) {
        self.counters.flops += n;
        let t = self.model.flops_time(n);
        self.charge_compute_time(t);
    }

    /// Charges one interpolation-table access: one segment locate plus
    /// `segments` segment evaluations. A fused lookup evaluates several
    /// tables sharing a knot grid from ONE locate, so passing
    /// `segments > 1` amortises the locate cost — the accounting twin of
    /// the host's fused `pair_density` path.
    pub fn charge_table_access(&mut self, locate_flops: u64, seg_flops: u64, segments: u64) {
        self.charge_flops(locate_flops + segments * seg_flops);
    }

    /// Charges one lane-batched table access covering `lanes` partner
    /// evaluations: per lane, one segment locate plus `segments` segment
    /// evaluations — the accounting twin of the host's SoA batch
    /// kernels, which replay the scalar expression per lane. The flop
    /// total therefore equals `lanes` scalar
    /// [`CpeCtx::charge_table_access`] calls (batching changes memory
    /// access granularity, not arithmetic, so virtual times are
    /// unchanged); the group is additionally recorded in
    /// [`CpeCounters::table_batches`] so the flop ledger can reconcile
    /// batched against scalar access counts.
    pub fn charge_table_batch(
        &mut self,
        locate_flops: u64,
        seg_flops: u64,
        segments: u64,
        lanes: u64,
    ) {
        self.counters.table_batches += 1;
        self.charge_flops(lanes * (locate_flops + segments * seg_flops));
    }

    /// DMA get: copies `src` (main memory) into `dst` (local store) and
    /// charges one transaction.
    pub fn dma_get_f64(&mut self, src: &[f64], dst: &mut LsVec<f64>) {
        assert!(
            src.len() <= dst.len(),
            "dma_get: src {} > dst {}",
            src.len(),
            dst.len()
        );
        dst[..src.len()].copy_from_slice(src);
        self.charge_dma_get(src.len() * 8);
    }

    /// DMA put: copies `src` (local store) back to `dst` (main memory)
    /// and charges one transaction.
    pub fn dma_put_f64(&mut self, src: &[f64], dst: &mut [f64]) {
        assert!(
            src.len() <= dst.len(),
            "dma_put: src {} > dst {}",
            src.len(),
            dst.len()
        );
        dst[..src.len()].copy_from_slice(src);
        self.charge_dma_put(src.len() * 8);
    }

    /// Loads `table` into a resident local-store buffer (one bulk DMA).
    /// Fails if the table does not fit — which is exactly what happens to
    /// the traditional 273 KB interpolation table.
    pub fn load_resident_table(&mut self, table: &[f64]) -> Result<LsVec<f64>, LdmOverflow> {
        let mut buf = self.ls.alloc_f64(table.len())?;
        self.dma_get_f64(table, &mut buf);
        Ok(buf)
    }

    // ------------------------------------------------------------------
    // Block pipeline (double buffering, Fig. 6)
    // ------------------------------------------------------------------

    /// Enters block-pipelined mode. Until [`CpeCtx::finish_blocks`],
    /// charges accumulate per block delimited by [`CpeCtx::next_block`].
    pub fn begin_blocks(&mut self, double_buffer: bool) {
        assert!(self.block_acc.is_none(), "begin_blocks while in blocks");
        self.double_buffer = double_buffer;
        self.blocks.clear();
        self.block_acc = Some(BlockCost::default());
    }

    /// Closes the current block and opens the next one.
    pub fn next_block(&mut self) {
        let b = self
            .block_acc
            .replace(BlockCost::default())
            .expect("next_block outside begin_blocks");
        self.blocks.push(b);
    }

    /// Closes the final block and charges the whole pipeline's time via
    /// the overlap model.
    pub fn finish_blocks(&mut self) {
        let b = self
            .block_acc
            .take()
            .expect("finish_blocks outside begin_blocks");
        self.blocks.push(b);
        let dma_total: f64 = self.blocks.iter().map(|b| b.stream + b.gather).sum();
        let total = pipeline_time(&self.blocks, self.double_buffer);
        // Attribute: DMA keeps its (possibly hidden) share for reporting;
        // the remainder of the pipeline time is compute.
        let dma_part = dma_total.min(total);
        self.counters.dma_time += dma_part;
        self.counters.compute_time += total - dma_part;
        self.blocks.clear();
    }
}

/// Aggregate outcome of one cluster kernel launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterReport {
    /// Kernel wall time as the MPE sees it: max over CPE virtual times.
    pub time: f64,
    /// Sum of all CPE counters.
    pub counters: CpeCounters,
    /// Number of CPEs that did any work.
    pub active_cpes: usize,
    /// Maximum bytes any CPE kept simultaneously live in its local
    /// store — compared against the kernel's declared
    /// [`crate::LdmPlan`] by the `mmds-audit` budget prover.
    pub ldm_high_water: usize,
}

/// The 8×8 CPE mesh of one core group.
///
/// [`CpeCluster::run`] distributes work items round-robin over the 64
/// CPEs and executes the per-CPE batches in parallel with rayon. Item
/// assignment is deterministic, so counters and virtual times are
/// reproducible regardless of host scheduling.
pub struct CpeCluster {
    model: SwModel,
}

impl CpeCluster {
    /// Creates a cluster with the given cost model.
    pub fn new(model: SwModel) -> Self {
        Self { model }
    }

    /// Number of CPEs.
    pub fn n_cpes(&self) -> usize {
        self.model.n_cpes
    }

    /// Runs `kernel` over `items`: item `i` executes on CPE `i % 64`,
    /// items assigned to the same CPE run in order within one context
    /// (so a CPE can keep resident buffers across its items — the
    /// mechanism behind ghost-data reuse).
    pub fn run<I, F>(&self, items: Vec<I>, kernel: F) -> ClusterReport
    where
        I: Send,
        F: Fn(&mut CpeCtx, I) + Sync,
    {
        let n = self.model.n_cpes;
        let mut buckets: Vec<Vec<I>> = (0..n).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            buckets[i % n].push(item);
        }
        let results: Vec<(f64, CpeCounters, bool, usize)> = buckets
            .into_par_iter()
            .enumerate()
            .map(|(id, batch)| {
                let mut ctx = CpeCtx::new(id, self.model);
                let active = !batch.is_empty();
                for item in batch {
                    kernel(&mut ctx, item);
                }
                (
                    ctx.time(),
                    ctx.counters(),
                    active,
                    ctx.local_store().high_water(),
                )
            })
            .collect();
        let mut report = ClusterReport::default();
        for (t, c, active, hw) in results {
            report.time = report.time.max(t);
            report.counters = report.counters.merge(&c);
            report.active_cpes += usize::from(active);
            report.ldm_high_water = report.ldm_high_water.max(hw);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_runs_all_items() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cluster = CpeCluster::new(SwModel::free());
        let sum = AtomicU64::new(0);
        let report = cluster.run((0..1000u64).collect(), |_ctx, item| {
            sum.fetch_add(item, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499_500);
        assert_eq!(report.active_cpes, 64);
    }

    #[test]
    fn fewer_items_than_cpes() {
        let cluster = CpeCluster::new(SwModel::free());
        let report = cluster.run(vec![1, 2, 3], |ctx, _| ctx.charge_flops(10));
        assert_eq!(report.active_cpes, 3);
        assert_eq!(report.counters.flops, 30);
    }

    #[test]
    fn time_is_max_over_cpes() {
        let cluster = CpeCluster::new(SwModel::sw26010());
        // CPE 0 gets items 0 and 64 → twice the work of the rest.
        let report = cluster.run((0..65).collect::<Vec<u32>>(), |ctx, _| {
            ctx.charge_flops(1_000_000);
        });
        let per_item = SwModel::sw26010().flops_time(1_000_000);
        assert!((report.time - 2.0 * per_item).abs() < 1e-12);
        assert_eq!(report.counters.flops, 65_000_000);
    }

    #[test]
    fn dma_copies_and_charges() {
        let model = SwModel::sw26010();
        let mut ctx = CpeCtx::new(0, model);
        let src = vec![1.0, 2.0, 3.0];
        let mut buf = ctx.alloc_f64(3).unwrap();
        ctx.dma_get_f64(&src, &mut buf);
        assert_eq!(&buf[..], &[1.0, 2.0, 3.0]);
        let mut out = vec![0.0; 3];
        buf[1] = 9.0;
        ctx.dma_put_f64(&buf, &mut out);
        assert_eq!(out, vec![1.0, 9.0, 3.0]);
        let c = ctx.counters();
        assert_eq!(c.dma_gets, 1);
        assert_eq!(c.dma_puts, 1);
        assert_eq!(c.bytes_in, 24);
        assert_eq!(c.bytes_out, 24);
        assert!(ctx.time() > 0.0);
    }

    #[test]
    fn resident_table_capacity_enforced() {
        let mut ctx = CpeCtx::new(0, SwModel::sw26010());
        let traditional = vec![0.0; 5000 * 7];
        assert!(ctx.load_resident_table(&traditional).is_err());
        let compacted = vec![0.0; 5000];
        assert!(ctx.load_resident_table(&compacted).is_ok());
    }

    #[test]
    fn block_pipeline_double_buffer_cheaper() {
        let model = SwModel::sw26010();
        let run = |db: bool| {
            let mut ctx = CpeCtx::new(0, model);
            ctx.begin_blocks(db);
            for i in 0..10 {
                ctx.charge_dma_get(4096);
                ctx.charge_flops(100_000);
                ctx.charge_dma_put(4096);
                if i < 9 {
                    ctx.next_block();
                }
            }
            ctx.finish_blocks();
            ctx.time()
        };
        let seq = run(false);
        let db = run(true);
        assert!(db < seq, "db {db} !< seq {seq}");
    }

    #[test]
    fn gather_is_not_hidden_by_double_buffering() {
        let model = SwModel::sw26010();
        let run = |db: bool| {
            let mut ctx = CpeCtx::new(0, model);
            ctx.begin_blocks(db);
            for i in 0..8 {
                // Gather-dominated block: almost nothing to overlap.
                ctx.charge_dma_gather(56);
                ctx.charge_dma_gather(56);
                ctx.charge_flops(10);
                if i < 7 {
                    ctx.next_block();
                }
            }
            ctx.finish_blocks();
            ctx.time()
        };
        let seq = run(false);
        let db = run(true);
        // No stream DMA at all: double buffering must buy nothing.
        assert!((seq - db).abs() < 1e-15, "seq {seq} vs db {db}");
    }

    #[test]
    fn cluster_report_counts_all_cpes_counters() {
        let cluster = CpeCluster::new(SwModel::sw26010());
        let report = cluster.run((0..128u32).collect(), |ctx, _| {
            ctx.charge_dma_get(100);
            ctx.charge_dma_put(50);
        });
        assert_eq!(report.counters.dma_gets, 128);
        assert_eq!(report.counters.dma_puts, 128);
        assert_eq!(report.counters.bytes_in, 12_800);
        assert_eq!(report.counters.bytes_out, 6_400);
    }

    #[test]
    fn batched_table_charge_equals_scalar_total() {
        // The batch token is pure accounting granularity: flops and
        // virtual time must equal `lanes` scalar accesses exactly.
        let model = SwModel::sw26010();
        let mut scalar = CpeCtx::new(0, model);
        for _ in 0..8 {
            scalar.charge_table_access(4, 36, 1);
        }
        let mut batched = CpeCtx::new(1, model);
        batched.charge_table_batch(4, 36, 1, 8);
        assert_eq!(batched.counters().flops, scalar.counters().flops);
        // Same flop total; the time sum may differ only by float
        // accumulation order (8 small adds vs one).
        let (tb, ts) = (batched.time(), scalar.time());
        assert!((tb - ts).abs() <= 1e-12 * ts, "{tb} vs {ts}");
        assert_eq!(batched.counters().table_batches, 1);
        assert_eq!(scalar.counters().table_batches, 0);
    }

    #[test]
    fn charges_outside_blocks_accumulate_directly() {
        let mut ctx = CpeCtx::new(0, SwModel::sw26010());
        ctx.charge_flops(1450); // 1 µs
        assert!((ctx.time() - 1.0e-6).abs() < 1e-12);
    }
}
