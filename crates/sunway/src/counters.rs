//! Per-CPE work counters.

use serde::{Deserialize, Serialize};

/// Deterministic work counters accumulated by one CPE during a kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CpeCounters {
    /// DMA get transactions issued.
    pub dma_gets: u64,
    /// DMA put transactions issued.
    pub dma_puts: u64,
    /// Bytes moved main memory → local store.
    pub bytes_in: u64,
    /// Bytes moved local store → main memory.
    pub bytes_out: u64,
    /// Scalar floating-point operations charged.
    pub flops: u64,
    /// Lane-batched table accesses charged (one per full lane group of
    /// the SoA batch kernels; scalar/tail accesses don't count).
    pub table_batches: u64,
    /// Virtual seconds spent in DMA (outside double-buffer blocks; inside
    /// blocks DMA time is folded by the pipeline model).
    pub dma_time: f64,
    /// Virtual seconds spent computing.
    pub compute_time: f64,
}

impl CpeCounters {
    /// Total DMA transactions.
    pub fn dma_ops(&self) -> u64 {
        self.dma_gets + self.dma_puts
    }

    /// Total DMA bytes in either direction.
    pub fn dma_bytes(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }

    /// Element-wise sum.
    pub fn merge(&self, o: &CpeCounters) -> CpeCounters {
        CpeCounters {
            dma_gets: self.dma_gets + o.dma_gets,
            dma_puts: self.dma_puts + o.dma_puts,
            bytes_in: self.bytes_in + o.bytes_in,
            bytes_out: self.bytes_out + o.bytes_out,
            flops: self.flops + o.flops,
            table_batches: self.table_batches + o.table_batches,
            dma_time: self.dma_time + o.dma_time,
            compute_time: self.compute_time + o.compute_time,
        }
    }

    /// Aggregates a slice of per-CPE counters into cluster totals
    /// (mirrors `CommStats::sum` in `mmds-swmpi`).
    pub fn sum(all: &[CpeCounters]) -> CpeCounters {
        all.iter().fold(CpeCounters::default(), |a, c| a.merge(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums() {
        let a = CpeCounters {
            dma_gets: 2,
            bytes_in: 100,
            flops: 7,
            ..Default::default()
        };
        let b = CpeCounters {
            dma_puts: 1,
            bytes_out: 50,
            flops: 3,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.dma_ops(), 3);
        assert_eq!(m.dma_bytes(), 150);
        assert_eq!(m.flops, 10);
    }

    #[test]
    fn merge_identity_and_sum_consistency() {
        let a = CpeCounters {
            dma_gets: 5,
            dma_puts: 2,
            bytes_in: 1024,
            bytes_out: 256,
            flops: 99,
            table_batches: 4,
            dma_time: 0.25,
            compute_time: 1.5,
        };
        // Default is the identity of merge.
        assert_eq!(a.merge(&CpeCounters::default()), a);
        assert_eq!(CpeCounters::default().merge(&a), a);
        // sum of an empty slice is the identity; singleton is itself.
        assert_eq!(CpeCounters::sum(&[]), CpeCounters::default());
        assert_eq!(CpeCounters::sum(&[a]), a);
        // sum agrees with folded merge.
        let b = CpeCounters {
            flops: 1,
            dma_time: 0.5,
            ..Default::default()
        };
        assert_eq!(CpeCounters::sum(&[a, b, a]), a.merge(&b).merge(&a));
    }
}
