//! # mmds-perfmodel — paper-scale scaling projection
//!
//! We cannot run 6.6 million cores, so the figure binaries combine two
//! sources:
//!
//! 1. **Measured** laptop-scale runs (1–256 simulated ranks) through
//!    `mmds-swmpi`'s virtual clocks — real code, real bytes, modelled
//!    time.
//! 2. **Projected** paper-scale series from this crate: the per-rank
//!    compute time comes from the measured kernel rate, and the
//!    communication term follows the same LogP shape the swmpi model
//!    charges, with *one* free contention constant per experiment fitted
//!    so the largest-scale point matches the paper's reported parallel
//!    efficiency. The *shape* of the curve (where efficiency bends, how
//!    interior points fall, where super-linearity appears) is then a
//!    genuine prediction of the model — EXPERIMENTS.md compares it
//!    against every interior point the paper reports.
//!
//! All projections live here so the assumption set is in one place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod project;

pub use machine::Machine;
pub use project::{
    fit_weak_comm_constant, project_strong, project_weak, CommShape, ProjectedPoint,
};
