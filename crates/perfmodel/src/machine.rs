//! TaihuLight machine facts used by the projections.

use serde::{Deserialize, Serialize};

/// Sunway TaihuLight constants (Fu et al. 2016; paper §3).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Machine {
    /// Cores per core group (1 MPE + 64 CPEs).
    pub cores_per_cg: u64,
    /// Total core groups in the machine (40,960 nodes × 4).
    pub total_cgs: u64,
    /// L2 cache per MPE (bytes) — drives the Fig. 14 super-linear bump.
    pub l2_bytes: f64,
    /// Effective cache-speedup factor when a rank's working set fits in
    /// cache (KMC site scans become cache-resident).
    pub cache_boost: f64,
}

impl Default for Machine {
    fn default() -> Self {
        Self::taihulight()
    }
}

impl Machine {
    /// The TaihuLight configuration.
    pub fn taihulight() -> Self {
        Self {
            cores_per_cg: 65,
            total_cgs: 163_840,
            l2_bytes: 256.0 * 1024.0,
            cache_boost: 1.35,
        }
    }

    /// Master+slave core count for `cgs` core groups (MD figures).
    pub fn cores(&self, cgs: u64) -> u64 {
        cgs * self.cores_per_cg
    }

    /// Smooth cache-speedup multiplier for a per-rank working set of
    /// `bytes`: 1 when far above cache, `cache_boost` when well inside.
    /// The transition is centred where the hot fraction of the working
    /// set (~1/16th: the active sector's boundary region) fits in L2.
    pub fn cache_multiplier(&self, working_set_bytes: f64) -> f64 {
        let hot = working_set_bytes / 16.0;
        let x = (hot / self.l2_bytes).ln();
        // Logistic in log-space: ≈boost for hot ≪ L2, ≈1 for hot ≫ L2.
        1.0 + (self.cache_boost - 1.0) / (1.0 + (1.6 * x).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taihulight_core_math() {
        let m = Machine::taihulight();
        // Paper: 6,656,000 master+slave cores = 102,400 CGs.
        assert_eq!(m.cores(102_400), 6_656_000);
        assert_eq!(m.cores(96_000), 6_240_000);
        assert_eq!(m.cores(1_600), 104_000);
        assert!(m.total_cgs >= 102_400);
    }

    #[test]
    fn cache_multiplier_limits() {
        let m = Machine::taihulight();
        assert!((m.cache_multiplier(1e3) - m.cache_boost).abs() < 0.02);
        assert!((m.cache_multiplier(1e12) - 1.0).abs() < 0.001);
        // Monotone decreasing in working set.
        assert!(m.cache_multiplier(1e6) > m.cache_multiplier(1e8));
    }
}
