//! Strong/weak scaling projection with a single fitted comm constant.

use serde::{Deserialize, Serialize};

use crate::machine::Machine;

/// The P-dependence of the per-rank communication time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum CommShape {
    /// Collective-dominated: `f(P) = log2 P` (KMC's dt allreduce and
    /// fences; "the increased communication time is due to the
    /// collective operations used for time synchronization", Fig. 15).
    Log2,
    /// Halo traffic under fabric contention plus collectives:
    /// `f(P) = log2 P + w·P^(1/3)` (MD's staged ghost exchange on a
    /// torus-like network where bisection per node shrinks).
    Log2PlusCbrt {
        /// Weight of the contention term.
        w: f64,
    },
}

impl CommShape {
    /// Evaluates the shape function at `p` ranks.
    pub fn eval(&self, p: u64) -> f64 {
        let lg = (p.max(2) as f64).log2();
        match self {
            CommShape::Log2 => lg,
            CommShape::Log2PlusCbrt { w } => lg + w * (p as f64).cbrt(),
        }
    }
}

/// One projected scaling point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProjectedPoint {
    /// Ranks (core groups for MD, master cores for KMC).
    pub ranks: u64,
    /// Reported core count (ranks × cores-per-unit as the figure labels).
    pub cores: u64,
    /// Per-rank compute time (s).
    pub compute: f64,
    /// Per-rank communication time (s).
    pub comm: f64,
    /// Total time (s).
    pub total: f64,
    /// Speedup vs the first point.
    pub speedup: f64,
    /// Parallel efficiency vs the first point.
    pub efficiency: f64,
}

/// Solves for the comm constant K in `T(P) = C + K·f(P)` such that
/// weak-scaling efficiency at the last point equals `target_end_eff`.
pub fn fit_weak_comm_constant(
    per_rank_compute: f64,
    shape: CommShape,
    p_first: u64,
    p_last: u64,
    target_end_eff: f64,
) -> f64 {
    assert!(target_end_eff > 0.0 && target_end_eff < 1.0);
    let f0 = shape.eval(p_first);
    let fe = shape.eval(p_last);
    let denom = target_end_eff * fe - f0;
    assert!(
        denom > 0.0,
        "shape cannot reach the target efficiency (f0={f0}, fe={fe})"
    );
    per_rank_compute * (1.0 - target_end_eff) / denom
}

/// Weak scaling: constant per-rank work, `T(P) = C + K·f(P)`, with K
/// fitted so the last point's efficiency equals `target_end_eff`.
pub fn project_weak(
    ranks: &[u64],
    cores_per_rank: u64,
    per_rank_compute: f64,
    shape: CommShape,
    target_end_eff: f64,
) -> Vec<ProjectedPoint> {
    assert!(ranks.len() >= 2);
    let k = fit_weak_comm_constant(
        per_rank_compute,
        shape,
        ranks[0],
        *ranks.last().expect("nonempty"),
        target_end_eff,
    );
    let t0 = per_rank_compute + k * shape.eval(ranks[0]);
    ranks
        .iter()
        .map(|&p| {
            let comm = k * shape.eval(p);
            let total = per_rank_compute + comm;
            ProjectedPoint {
                ranks: p,
                cores: p * cores_per_rank,
                compute: per_rank_compute,
                comm,
                total,
                speedup: t0 / total * (p as f64 / ranks[0] as f64),
                efficiency: t0 / total,
            }
        })
        .collect()
}

/// Strong scaling: fixed total work `W`, `T(P) = W/(P·boost(P)) +
/// K·f(P)`, with K fitted so the last point's efficiency equals
/// `target_end_eff`. `cache` optionally supplies the Fig. 14
/// super-linear boost: `(machine, total working-set bytes)`.
pub fn project_strong(
    ranks: &[u64],
    cores_per_rank: u64,
    total_compute: f64,
    shape: CommShape,
    target_end_eff: f64,
    cache: Option<(Machine, f64)>,
) -> Vec<ProjectedPoint> {
    assert!(ranks.len() >= 2);
    let boost = |p: u64| -> f64 {
        match &cache {
            Some((m, ws_total)) => m.cache_multiplier(ws_total / p as f64),
            None => 1.0,
        }
    };
    let p0 = ranks[0];
    let pe = *ranks.last().expect("nonempty");
    let a0 = total_compute / (p0 as f64 * boost(p0));
    let ae = total_compute / (pe as f64 * boost(pe));
    let r = target_end_eff * pe as f64 / p0 as f64;
    let denom = r * shape.eval(pe) - shape.eval(p0);
    assert!(denom > 0.0, "shape cannot reach the target efficiency");
    let k = (a0 - r * ae) / denom;
    assert!(
        k > 0.0,
        "target efficiency implies negative communication (a0={a0:.3e}, r·ae={:.3e})",
        r * ae
    );
    let t0 = a0 + k * shape.eval(p0);
    ranks
        .iter()
        .map(|&p| {
            let compute = total_compute / (p as f64 * boost(p));
            let comm = k * shape.eval(p);
            let total = compute + comm;
            let speedup = t0 / total;
            ProjectedPoint {
                ranks: p,
                cores: p * cores_per_rank,
                compute,
                comm,
                total,
                speedup,
                efficiency: speedup / (p as f64 / p0 as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MD_WEAK_CGS: [u64; 6] = [1_600, 3_200, 12_800, 25_600, 51_200, 102_400];
    const MD_STRONG_CGS: [u64; 7] = [1_500, 3_000, 6_000, 12_000, 24_000, 48_000, 96_000];
    const KMC_STRONG: [u64; 6] = [1_500, 3_000, 6_000, 12_000, 24_000, 48_000];
    const KMC_WEAK: [u64; 7] = [1_600, 3_200, 6_400, 12_800, 25_600, 51_200, 102_400];

    #[test]
    fn md_weak_hits_85_percent_and_decays_monotonically_at_scale() {
        // Paper Fig. 11: 85% efficiency at 6,656,000 cores.
        let pts = project_weak(
            &MD_WEAK_CGS,
            65,
            1.0,
            CommShape::Log2PlusCbrt { w: 0.08 },
            0.85,
        );
        assert_eq!(pts.last().unwrap().cores, 6_656_000);
        assert!((pts.last().unwrap().efficiency - 0.85).abs() < 1e-9);
        assert!((pts[0].efficiency - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[1].efficiency <= w[0].efficiency + 1e-12);
        }
        // Compute stays constant, comm grows — the Fig. 11 bar shape.
        assert!(pts[0].compute == pts[5].compute);
        assert!(pts[5].comm > pts[0].comm);
    }

    #[test]
    fn md_strong_hits_41_percent_and_26x() {
        // Paper Fig. 10: 26.4× speedup / 41.3% efficiency over 64×.
        let pts = project_strong(
            &MD_STRONG_CGS,
            65,
            1.0e4,
            CommShape::Log2PlusCbrt { w: 0.05 },
            0.413,
            None,
        );
        let last = pts.last().unwrap();
        assert!((last.efficiency - 0.413).abs() < 1e-9);
        assert!(
            (last.speedup - 26.4).abs() < 0.1,
            "speedup = {}",
            last.speedup
        );
        // Efficiency decreases monotonically (Fig. 10's gradual decline).
        for w in pts.windows(2) {
            assert!(w[1].efficiency < w[0].efficiency);
        }
    }

    #[test]
    fn kmc_strong_shows_superlinear_bump() {
        // Paper Fig. 14: super-linear speedup from 3,000 to 12,000 cores
        // (L2 cache), 58.2% efficiency / 18.5× at 48,000.
        let machine = Machine::taihulight();
        let ws_total = 3.2e10; // ~1 B/site × 3.2e10 sites
        let pts = project_strong(
            &KMC_STRONG,
            1,
            2.0e4,
            CommShape::Log2,
            0.582,
            Some((machine, ws_total)),
        );
        let last = pts.last().unwrap();
        assert!((last.efficiency - 0.582).abs() < 1e-9);
        assert!((last.speedup - 18.5).abs() < 0.5, "{}", last.speedup);
        // Super-linearity: somewhere in 3k→12k the efficiency RISES
        // above the previous point (paper's bump).
        let eff: Vec<f64> = pts.iter().map(|p| p.efficiency).collect();
        let has_bump = eff.windows(2).any(|w| w[1] > w[0] + 1e-6);
        assert!(has_bump, "expected super-linear segment: {eff:?}");
    }

    #[test]
    fn kmc_weak_hits_74_percent() {
        // Paper Fig. 15: 97.2% → 74% over 1,600 → 102,400 master cores.
        let pts = project_weak(&KMC_WEAK, 1, 1.0, CommShape::Log2, 0.74);
        assert!((pts.last().unwrap().efficiency - 0.74).abs() < 1e-9);
        // Interior points should land in the paper's ballpark:
        // 88.1%, 86.1%, 85.2%, 79.9% at 3.2k, 6.4k(≈), 12.8k, 51.2k.
        let e = |i: usize| pts[i].efficiency;
        assert!((0.80..0.999).contains(&e(1)), "3200: {}", e(1));
        assert!((0.78..0.95).contains(&e(3)), "12800: {}", e(3));
        assert!((0.74..0.90).contains(&e(5)), "51200: {}", e(5));
    }

    #[test]
    fn coupled_weak_hits_75_7_percent() {
        // Paper Fig. 16: 98.9%, 77.4%, 75.7% over 97.5k → 6.24M cores.
        let cgs = [1_500u64, 6_000, 24_000, 96_000];
        let pts = project_weak(&cgs, 65, 5.0, CommShape::Log2PlusCbrt { w: 0.1 }, 0.757);
        assert_eq!(pts.last().unwrap().cores, 6_240_000);
        assert!((pts.last().unwrap().efficiency - 0.757).abs() < 1e-9);
        assert!(pts[1].efficiency > 0.757);
    }

    #[test]
    fn fit_rejects_impossible_targets() {
        let r = std::panic::catch_unwind(|| {
            fit_weak_comm_constant(1.0, CommShape::Log2, 1_000, 1_024, 0.5)
        });
        // f barely grows from 1000→1024 ranks: cannot halve efficiency.
        assert!(r.is_err());
    }

    #[test]
    fn comm_constant_positive_and_scales_with_compute() {
        let k1 = fit_weak_comm_constant(1.0, CommShape::Log2, 16, 65_536, 0.8);
        let k2 = fit_weak_comm_constant(2.0, CommShape::Log2, 16, 65_536, 0.8);
        assert!(k1 > 0.0);
        assert!((k2 / k1 - 2.0).abs() < 1e-12);
    }
}
