//! Property tests for the SoA lane-batch table kernels: for every
//! batch length — full lane groups, ragged tails, and the empty batch —
//! each output element must be **bitwise** equal to the scalar lookup,
//! because the lane kernels replay the scalar expression sequence per
//! lane and the tails reuse the scalar path outright. Covers both
//! table forms of the single-species potential and every Fe–Cu alloy
//! species pairing (including the canonicalised Cu–Fe order).

use std::sync::OnceLock;

use mmds_eam::alloy::AlloyEam;
use mmds_eam::analytic::Species;
use mmds_eam::{EamPotential, TableForm, BATCH_LANES};
use proptest::prelude::*;

/// Paper-sized Fe potential, built once (5000-knot tables are ~40 ms).
fn pot() -> &'static EamPotential {
    static POT: OnceLock<EamPotential> = OnceLock::new();
    POT.get_or_init(|| EamPotential::new(Species::Fe, 5000))
}

/// Fe–Cu alloy table set, built once.
fn alloy() -> &'static AlloyEam {
    static ALLOY: OnceLock<AlloyEam> = OnceLock::new();
    ALLOY.get_or_init(|| AlloyEam::fe_cu(0.05, 3000))
}

const SPECIES_PAIRS: [(Species, Species); 4] = [
    (Species::Fe, Species::Fe),
    (Species::Cu, Species::Cu),
    (Species::Fe, Species::Cu),
    (Species::Cu, Species::Fe),
];

/// Four output buffers sized for one batch.
fn bufs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    (vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n])
}

fn assert_pair_density_bitwise(form: TableForm, rs: &[f64]) {
    let p = pot();
    let (mut phi, mut dphi, mut f, mut df) = bufs(rs.len());
    p.pair_density_batch(form, rs, &mut phi, &mut dphi, &mut f, &mut df);
    for (j, &r) in rs.iter().enumerate() {
        let (sphi, sdphi, sf, sdf) = p.pair_density(form, r);
        assert_eq!(phi[j].to_bits(), sphi.to_bits(), "{form:?} phi[{j}] r={r}");
        assert_eq!(
            dphi[j].to_bits(),
            sdphi.to_bits(),
            "{form:?} dphi[{j}] r={r}"
        );
        assert_eq!(f[j].to_bits(), sf.to_bits(), "{form:?} f[{j}] r={r}");
        assert_eq!(df[j].to_bits(), sdf.to_bits(), "{form:?} df[{j}] r={r}");
    }
}

fn assert_density_values_bitwise(form: TableForm, rs: &[f64]) {
    let p = pot();
    let mut out = vec![0.0; rs.len()];
    p.density_values_batch(form, rs, &mut out);
    for (j, &r) in rs.iter().enumerate() {
        let scalar = p.density(form, r).0;
        assert_eq!(out[j].to_bits(), scalar.to_bits(), "{form:?} f[{j}] r={r}");
    }
}

fn assert_alloy_bitwise(s1: Species, s2: Species, rs: &[f64]) {
    let a = alloy();
    let (mut phi, mut dphi, mut f, mut df) = bufs(rs.len());
    a.pair_density_batch(s1, s2, rs, &mut phi, &mut dphi, &mut f, &mut df);
    for (j, &r) in rs.iter().enumerate() {
        let (sphi, sdphi, sf, sdf) = a.pair_density(s1, s2, r);
        assert_eq!(phi[j].to_bits(), sphi.to_bits(), "{s1:?}-{s2:?} phi[{j}]");
        assert_eq!(
            dphi[j].to_bits(),
            sdphi.to_bits(),
            "{s1:?}-{s2:?} dphi[{j}]"
        );
        assert_eq!(f[j].to_bits(), sf.to_bits(), "{s1:?}-{s2:?} f[{j}]");
        assert_eq!(df[j].to_bits(), sdf.to_bits(), "{s1:?}-{s2:?} df[{j}]");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random radii (including beyond-domain values that exercise the
    /// clamped boundary stencils) at random batch lengths spanning
    /// several lane groups.
    #[test]
    fn batch_matches_scalar_bitwise(
        rs in prop::collection::vec(0.8f64..6.0, 0..3 * BATCH_LANES + 2)
    ) {
        for form in [TableForm::Traditional, TableForm::Compacted] {
            assert_pair_density_bitwise(form, &rs);
            assert_density_values_bitwise(form, &rs);
        }
    }

    /// Every alloy species pairing dispatches to its canonical table
    /// pair once per batch and stays bitwise-exact per element.
    #[test]
    fn alloy_batch_matches_scalar_bitwise(
        rs in prop::collection::vec(0.8f64..6.0, 0..2 * BATCH_LANES + 2)
    ) {
        for (s1, s2) in SPECIES_PAIRS {
            assert_alloy_bitwise(s1, s2, &rs);
        }
    }
}

/// The ragged-tail boundary lengths, pinned deterministically: 0, 1,
/// N−1, N, and N+1 (N = `BATCH_LANES`), plus two and a bit lane
/// groups. Proptest reaches these too, but they are the exact seams
/// between the lane kernel and the scalar tail, so they must never
/// rotate out of coverage.
#[test]
fn ragged_boundary_lengths_are_bitwise_exact() {
    let n = BATCH_LANES;
    for len in [0, 1, n - 1, n, n + 1, 2 * n, 2 * n + 1] {
        // A radius ramp across the table domain, deliberately touching
        // the clamped edges.
        let rs: Vec<f64> = (0..len)
            .map(|i| 0.8 + 5.0 * (i as f64) / (2.0 * n as f64))
            .collect();
        for form in [TableForm::Traditional, TableForm::Compacted] {
            assert_pair_density_bitwise(form, &rs);
            assert_density_values_bitwise(form, &rs);
        }
        for (s1, s2) in SPECIES_PAIRS {
            assert_alloy_bitwise(s1, s2, &rs);
        }
    }
}
