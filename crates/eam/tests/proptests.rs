//! Property tests on the table machinery.

use mmds_eam::analytic::AnalyticEam;
use mmds_eam::compact::CompactTable;
use mmds_eam::spline::TraditionalTable;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both table forms clamp identically outside their domain.
    #[test]
    fn clamping_agrees(x in -10.0f64..20.0) {
        let f = |r: f64| (0.7 * r).cos();
        let t = TraditionalTable::build(f, 1.0, 5.0, 800);
        let c = CompactTable::build(f, 1.0, 5.0, 800);
        prop_assert!((t.eval(x) - c.eval(x)).abs() < 1e-6);
    }

    /// The Fe potential's force (−dφ/dr) is continuous: adjacent table
    /// segments agree at their shared knot.
    #[test]
    fn derivative_continuity_at_knots(i in 1usize..798) {
        let p = AnalyticEam::fe();
        let t = TraditionalTable::build(|r| p.phi(r), 1.0, 5.0, 800);
        let x = t.x0 + i as f64 * t.dx;
        let left = t.eval_deriv(x - 1e-9);
        let right = t.eval_deriv(x + 1e-9);
        prop_assert!((left - right).abs() < 1e-5, "{left} vs {right} at {x}");
    }

    /// Compacted reconstruction error stays bounded for arbitrary
    /// smooth (exp-damped oscillator) functions.
    #[test]
    fn compact_error_bounded(amp in 0.1f64..2.0, freq in 0.2f64..2.0, x in 1.2f64..4.8) {
        let f = move |r: f64| amp * (freq * r).sin() * (-0.3 * r).exp();
        let c = CompactTable::build(f, 1.0, 5.0, 2000);
        prop_assert!((c.eval(x) - f(x)).abs() < 1e-6 * amp.max(1.0));
    }

    /// Switching window: φ and f vanish at and beyond the cutoff for
    /// any radius past r_cut.
    #[test]
    fn potentials_vanish_beyond_cutoff(r in 5.0f64..100.0) {
        let p = AnalyticEam::fe();
        prop_assert_eq!(p.phi(r), 0.0);
        prop_assert_eq!(p.density(r), 0.0);
        prop_assert_eq!(p.dphi(r), 0.0);
    }
}
