//! Property tests for the fused single-locate `pair_density` lookup:
//! for every radius and both table forms it must reproduce the two
//! separate lookups, because it replays their exact operation order
//! from one shared segment locate.

use std::sync::OnceLock;

use mmds_eam::alloy::AlloyEam;
use mmds_eam::analytic::Species;
use mmds_eam::{EamPotential, TableForm};
use proptest::prelude::*;

/// Paper-sized Fe potential, built once (5000-knot tables are ~40 ms).
fn pot() -> &'static EamPotential {
    static POT: OnceLock<EamPotential> = OnceLock::new();
    POT.get_or_init(|| EamPotential::new(Species::Fe, 5000))
}

/// Fe–Cu alloy table set, built once.
fn alloy() -> &'static AlloyEam {
    static ALLOY: OnceLock<AlloyEam> = OnceLock::new();
    ALLOY.get_or_init(|| AlloyEam::fe_cu(0.05, 3000))
}

const SPECIES_PAIRS: [(Species, Species); 4] = [
    (Species::Fe, Species::Fe),
    (Species::Cu, Species::Cu),
    (Species::Fe, Species::Cu),
    (Species::Cu, Species::Fe),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fused = separate for both table forms, across the table domain
    /// and a margin beyond it (clamping included).
    #[test]
    fn fused_matches_separate_lookups(r in 0.8f64..6.0) {
        let p = pot();
        for form in [TableForm::Traditional, TableForm::Compacted] {
            let (phi_f, dphi_f, f_f, df_f) = p.pair_density(form, r);
            let (phi, dphi) = p.pair(form, r);
            let (f, df) = p.density(form, r);
            prop_assert!((phi_f - phi).abs() <= 1e-12, "{form:?} phi at r={r}");
            prop_assert!((dphi_f - dphi).abs() <= 1e-12, "{form:?} dphi at r={r}");
            prop_assert!((f_f - f).abs() <= 1e-12, "{form:?} f at r={r}");
            prop_assert!((df_f - df).abs() <= 1e-12, "{form:?} df at r={r}");
        }
    }

    /// The alloy fused lookup matches its per-table path for every
    /// species pairing (including the canonicalised Cu–Fe order).
    #[test]
    fn alloy_fused_matches_tables(r in 0.8f64..6.0) {
        use mmds_eam::alloy::AlloyTableId;
        let a = alloy();
        for (s1, s2) in SPECIES_PAIRS {
            let (phi_f, dphi_f, f_f, df_f) = a.pair_density(s1, s2, r);
            let (phi, dphi) = a.table(AlloyTableId::Pair(s1, s2)).eval_both(r);
            let (f, df) = a.table(AlloyTableId::Density(s1, s2)).eval_both(r);
            prop_assert!((phi_f - phi).abs() <= 1e-12, "{s1:?}-{s2:?} phi at r={r}");
            prop_assert!((dphi_f - dphi).abs() <= 1e-12, "{s1:?}-{s2:?} dphi at r={r}");
            prop_assert!((f_f - f).abs() <= 1e-12, "{s1:?}-{s2:?} f at r={r}");
            prop_assert!((df_f - df).abs() <= 1e-12, "{s1:?}-{s2:?} df at r={r}");
        }
    }
}
