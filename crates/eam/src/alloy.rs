//! Fe–Cu alloy table sets and the local-store placement policy.
//!
//! §2.1.2: *"For alloy materials, more interpolation tables are used ...
//! Taking the Fe-Cu alloy as an example, there are three kinds of
//! electron cloud density tables, for the atomic pairs of Fe-Fe, Cu-Cu,
//! and Fe-Cu ... The total size of these three compacted tables will
//! exceed the size of local store. Thus, we only load the compacted
//! table for the element with the highest content in the local store,
//! since it would be the most frequently used, and leave the other
//! tables in the main memory."*

use serde::{Deserialize, Serialize};

use crate::analytic::{AnalyticEam, Species};
use crate::compact::CompactTable;
use crate::potential::{RHO_MAX, R_MIN};

/// One logical table of an alloy set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlloyTableId {
    /// Pair potential φ for a species pair.
    Pair(Species, Species),
    /// Electron density f for a species pair.
    Density(Species, Species),
    /// Embedding F for a species.
    Embed(Species),
}

fn canon(a: Species, b: Species) -> (Species, Species) {
    if a == Species::Cu && b == Species::Fe {
        (Species::Fe, Species::Cu)
    } else {
        (a, b)
    }
}

/// The complete compacted table set for a binary Fe–Cu alloy.
#[derive(Debug, Clone)]
pub struct AlloyEam {
    /// Fraction of Cu atoms (0 = pure Fe).
    pub cu_fraction: f64,
    /// Knots per table.
    pub n: usize,
    tables: Vec<(AlloyTableId, CompactTable)>,
}

impl AlloyEam {
    /// Builds the 8-table Fe–Cu set (3 pair, 3 density, 2 embedding).
    pub fn fe_cu(cu_fraction: f64, n: usize) -> Self {
        assert!((0.0..=1.0).contains(&cu_fraction));
        let pairs = [
            (Species::Fe, Species::Fe),
            (Species::Cu, Species::Cu),
            (Species::Fe, Species::Cu),
        ];
        let mut tables = Vec::new();
        for (a, b) in pairs {
            let p = AnalyticEam::for_pair(a, b);
            tables.push((
                AlloyTableId::Pair(a, b),
                CompactTable::build(|r| p.phi(r), R_MIN, p.r_cut, n),
            ));
            tables.push((
                AlloyTableId::Density(a, b),
                CompactTable::build(|r| p.density(r), R_MIN, p.r_cut, n),
            ));
        }
        for s in [Species::Fe, Species::Cu] {
            let p = AnalyticEam::for_pair(s, s);
            tables.push((
                AlloyTableId::Embed(s),
                CompactTable::build(|rho| p.embed(rho), 0.0, RHO_MAX, n),
            ));
        }
        Self {
            cu_fraction,
            n,
            tables,
        }
    }

    /// All tables with their ids.
    pub fn tables(&self) -> &[(AlloyTableId, CompactTable)] {
        &self.tables
    }

    /// Looks up one table.
    pub fn table(&self, id: AlloyTableId) -> &CompactTable {
        let id = match id {
            AlloyTableId::Pair(a, b) => {
                let (a, b) = canon(a, b);
                AlloyTableId::Pair(a, b)
            }
            AlloyTableId::Density(a, b) => {
                let (a, b) = canon(a, b);
                AlloyTableId::Density(a, b)
            }
            e => e,
        };
        &self
            .tables
            .iter()
            .find(|(t, _)| *t == id)
            .expect("table exists for every canonical id")
            .1
    }

    /// Fused φ/f lookup for the species pair `(a, b)`:
    /// `(φ(r), φ'(r), f(r), f'(r))` from ONE segment locate — the pair
    /// and density tables of a species pair are sampled on the same
    /// knot grid. Bit-identical to evaluating the two tables
    /// separately via [`AlloyEam::table`].
    #[inline]
    pub fn pair_density(&self, a: Species, b: Species, r: f64) -> (f64, f64, f64, f64) {
        let pair = self.table(AlloyTableId::Pair(a, b));
        let density = self.table(AlloyTableId::Density(a, b));
        pair.eval2(density, r)
    }

    /// Batched fused φ/f lookup for the species pair `(a, b)` — the
    /// batch counterpart of [`AlloyEam::pair_density`]. The linear
    /// table search behind [`AlloyEam::table`] runs **once per batch**
    /// instead of once per neighbour (the amortisation the contiguous
    /// gather buys on top of vectorization), then the whole batch goes
    /// through [`CompactTable::eval2_batch`]. Bitwise identical to
    /// per-element `pair_density` at every length, ragged tails
    /// included.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn pair_density_batch(
        &self,
        a: Species,
        b: Species,
        rs: &[f64],
        phi: &mut [f64],
        dphi: &mut [f64],
        f: &mut [f64],
        df: &mut [f64],
    ) {
        let pair = self.table(AlloyTableId::Pair(a, b));
        let density = self.table(AlloyTableId::Density(a, b));
        pair.eval2_batch(density, rs, phi, dphi, f, df);
    }

    /// Embedding `F(ρ)` and `F'(ρ)` of species `s` (single-locate by
    /// construction — one table).
    #[inline]
    pub fn embed(&self, s: Species, rho: f64) -> (f64, f64) {
        self.table(AlloyTableId::Embed(s)).eval_both(rho)
    }

    /// Relative access frequency of a table given the species
    /// concentrations (pair/density tables are hit proportionally to the
    /// product of their species' concentrations; embedding once per atom
    /// of its species).
    pub fn access_weight(&self, id: AlloyTableId) -> f64 {
        let c_cu = self.cu_fraction;
        let c_fe = 1.0 - c_cu;
        let conc = |s: Species| match s {
            Species::Fe => c_fe,
            Species::Cu => c_cu,
        };
        match id {
            // Mixed pairs occur twice as often as the product (AB + BA).
            AlloyTableId::Pair(a, b) | AlloyTableId::Density(a, b) => {
                let w = conc(a) * conc(b);
                if a == b {
                    w
                } else {
                    2.0 * w
                }
            }
            // Embedding is evaluated once per atom, which is ~1/40th of
            // the per-neighbour table traffic for a ~40-neighbour cutoff.
            AlloyTableId::Embed(s) => conc(s) / 40.0,
        }
    }

    /// Total bytes of all compacted tables.
    pub fn total_bytes(&self) -> usize {
        self.tables.iter().map(|(_, t)| t.memory_bytes()).sum()
    }
}

/// Which tables a CPE keeps resident in its local store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdmPlacement {
    /// Ids chosen to be resident, most-frequently-accessed first.
    pub resident: Vec<AlloyTableId>,
    /// Ids left in main memory (per-access DMA).
    pub in_main_memory: Vec<AlloyTableId>,
    /// Bytes of local store consumed by the resident set.
    pub resident_bytes: usize,
}

impl LdmPlacement {
    /// Plans residency: greedily admits tables in decreasing access
    /// weight while they fit in `budget` bytes (the local store minus
    /// whatever the kernel reserves for atom block buffers).
    ///
    /// For Fe-dominated Fe–Cu this reproduces the paper's policy: the
    /// Fe–Fe tables (highest content) go resident, Cu tables stay in
    /// main memory.
    pub fn plan(alloy: &AlloyEam, budget: usize) -> Self {
        let mut ranked: Vec<(f64, AlloyTableId, usize)> = alloy
            .tables()
            .iter()
            .map(|(id, t)| (alloy.access_weight(*id), *id, t.memory_bytes()))
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("weights are finite"));
        let mut resident = Vec::new();
        let mut in_main_memory = Vec::new();
        let mut used = 0usize;
        for (_, id, bytes) in ranked {
            if used + bytes <= budget {
                used += bytes;
                resident.push(id);
            } else {
                in_main_memory.push(id);
            }
        }
        Self {
            resident,
            in_main_memory,
            resident_bytes: used,
        }
    }

    /// True if `id` is resident.
    pub fn is_resident(&self, id: AlloyTableId) -> bool {
        self.resident.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fe_cu_has_eight_tables() {
        let a = AlloyEam::fe_cu(0.01, 500);
        assert_eq!(a.tables().len(), 8);
        assert_eq!(a.total_bytes(), 8 * 500 * 8);
    }

    #[test]
    fn table_lookup_symmetric_pairs() {
        let a = AlloyEam::fe_cu(0.05, 300);
        let t1 = a.table(AlloyTableId::Pair(Species::Fe, Species::Cu));
        let t2 = a.table(AlloyTableId::Pair(Species::Cu, Species::Fe));
        assert_eq!(t1.values, t2.values);
    }

    #[test]
    fn paper_policy_fe_dominates() {
        // Paper-sized tables: each 39 KiB; 8 tables = 312 KiB ≫ 64 KB.
        let ldm = mmds_sunway::SwModel::sw26010().ldm_bytes;
        let a = AlloyEam::fe_cu(0.01, 5000);
        assert!(a.total_bytes() > ldm);
        // Budget: LDM minus 24 KB of block buffers.
        let plan = LdmPlacement::plan(&a, ldm - 24 * 1024);
        // The most frequent table is Fe-Fe density/pair; exactly one
        // 39 KiB table fits in a 40 KB budget.
        assert_eq!(plan.resident.len(), 1);
        match plan.resident[0] {
            AlloyTableId::Pair(Species::Fe, Species::Fe)
            | AlloyTableId::Density(Species::Fe, Species::Fe) => {}
            other => panic!("expected an Fe-Fe table resident, got {other:?}"),
        }
        assert_eq!(plan.in_main_memory.len(), 7);
    }

    #[test]
    fn cu_rich_alloy_flips_placement() {
        let a = AlloyEam::fe_cu(0.9, 5000);
        let plan = LdmPlacement::plan(&a, 41_000);
        match plan.resident[0] {
            AlloyTableId::Pair(Species::Cu, Species::Cu)
            | AlloyTableId::Density(Species::Cu, Species::Cu) => {}
            other => panic!("expected a Cu-Cu table resident, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_admits_everything() {
        let a = AlloyEam::fe_cu(0.5, 400);
        let plan = LdmPlacement::plan(&a, 1 << 20);
        assert_eq!(plan.resident.len(), 8);
        assert!(plan.in_main_memory.is_empty());
        assert_eq!(plan.resident_bytes, a.total_bytes());
    }

    #[test]
    fn access_weights_sum_sensibly() {
        let a = AlloyEam::fe_cu(0.25, 300);
        // Pair weights over the 3 pair tables: 0.75² + 0.25² + 2·0.75·0.25 = 1.
        let w: f64 = [
            AlloyTableId::Pair(Species::Fe, Species::Fe),
            AlloyTableId::Pair(Species::Cu, Species::Cu),
            AlloyTableId::Pair(Species::Fe, Species::Cu),
        ]
        .iter()
        .map(|&id| a.access_weight(id))
        .sum();
        assert!((w - 1.0).abs() < 1e-12);
    }
}
