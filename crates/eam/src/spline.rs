//! Traditional cubic-spline interpolation tables (LAMMPS/CoMD layout).
//!
//! The paper, §2.1.2: *"Each traditional interpolation table is a 5000×7
//! 2D array ... the columns 3–6 are the coefficients of a cubic function
//! and the columns 0–2 are the coefficients of its derivative function
//! ... The size of each traditional interpolation table is about 273 KB,
//! which exceeds the size of local store (64 KB)."*
//!
//! With `N = 5000` knots of `f64` rows this layout is `5000·7·8 B =
//! 273.4 KiB` — exactly the paper's number — while the compacted form
//! ([`crate::compact::CompactTable`]) is `5000·8 B = 39.1 KiB`.

use serde::{Deserialize, Serialize};

use crate::BATCH_LANES;

/// Number of knots used by the paper's tables.
pub const PAPER_TABLE_N: usize = 5000;

/// A natural cubic spline in the traditional 7-column coefficient form.
///
/// Row `i` covers `x ∈ [x0 + i·dx, x0 + (i+1)·dx)` with local coordinate
/// `t ∈ [0,1)`:
///
/// * value:      `((c3·t + c4)·t + c5)·t + c6`
/// * derivative: `((c0·t + c1)·t + c2) ` (already divided by `dx`)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraditionalTable {
    /// First knot abscissa.
    pub x0: f64,
    /// Knot spacing.
    pub dx: f64,
    /// `n` rows of `[c0..c6]` (row `n-1` duplicates `n-2` as padding, so
    /// the array is exactly n×7 like the paper's).
    pub coeff: Vec<[f64; 7]>,
}

impl TraditionalTable {
    /// Builds a table by sampling `f` at `n` equally spaced knots over
    /// `[x0, x1]` and fitting a natural cubic spline.
    pub fn build(f: impl Fn(f64) -> f64, x0: f64, x1: f64, n: usize) -> Self {
        assert!(n >= 4, "need at least 4 knots");
        assert!(x1 > x0);
        let dx = (x1 - x0) / (n - 1) as f64;
        let ys: Vec<f64> = (0..n).map(|i| f(x0 + i as f64 * dx)).collect();
        Self::from_samples(x0, dx, &ys)
    }

    /// Builds the spline from pre-computed samples.
    pub fn from_samples(x0: f64, dx: f64, ys: &[f64]) -> Self {
        let n = ys.len();
        assert!(n >= 4);
        let m = natural_spline_second_derivatives(ys, dx);
        let mut coeff = Vec::with_capacity(n);
        for i in 0..n - 1 {
            let h2 = dx * dx;
            let a = (m[i + 1] - m[i]) * h2 / 6.0;
            let b = m[i] * h2 / 2.0;
            let c = ys[i + 1] - ys[i] - h2 / 6.0 * (2.0 * m[i] + m[i + 1]);
            let d = ys[i];
            coeff.push([3.0 * a / dx, 2.0 * b / dx, c / dx, a, b, c, d]);
        }
        // Padding row so the array is n×7 exactly like the paper's.
        let last = *coeff.last().expect("at least one segment");
        coeff.push(last);
        Self { x0, dx, coeff }
    }

    /// Number of knots (rows).
    pub fn n(&self) -> usize {
        self.coeff.len()
    }

    /// Last covered abscissa.
    pub fn x_max(&self) -> f64 {
        self.x0 + (self.n() - 1) as f64 * self.dx
    }

    /// Size in bytes (what a resident copy would occupy in local store).
    pub fn memory_bytes(&self) -> usize {
        self.coeff.len() * 7 * 8
    }

    /// Segment index and local coordinate for `x` (clamped to range).
    // flops: LOCATE_FLOPS = 4 (sub, div, floor/min, clamp — charged once
    // per lookup; a fused eval2 pays it once for both tables)
    #[inline]
    pub fn locate(&self, x: f64) -> (usize, f64) {
        let u = ((x - self.x0) / self.dx).max(0.0);
        let max_seg = self.coeff.len() - 2;
        let i = (u as usize).min(max_seg);
        let t = (u - i as f64).clamp(0.0, 1.0);
        (i, t)
    }

    /// Interpolated value at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        let (i, t) = self.locate(x);
        let c = &self.coeff[i];
        ((c[3] * t + c[4]) * t + c[5]) * t + c[6]
    }

    /// Interpolated derivative at `x`.
    #[inline]
    pub fn eval_deriv(&self, x: f64) -> f64 {
        let (i, t) = self.locate(x);
        let c = &self.coeff[i];
        (c[0] * t + c[1]) * t + c[2]
    }

    /// Value and derivative together (one row fetch — what the CPE
    /// kernel DMA-streams per neighbour in the traditional scheme).
    // flops: SEG_EVAL_FLOPS = 8 (Horner value 3·fma + Horner derivative
    // 2·fma, counted as 8 scalar ops per located segment)
    #[inline]
    pub fn eval_both(&self, x: f64) -> (f64, f64) {
        let (i, t) = self.locate(x);
        let c = &self.coeff[i];
        (
            ((c[3] * t + c[4]) * t + c[5]) * t + c[6],
            (c[0] * t + c[1]) * t + c[2],
        )
    }

    /// Fused two-table lookup: ONE segment locate serves both this
    /// table and `other`, which must be sampled on the same knot grid.
    /// Returns `(self(x), self'(x), other(x), other'(x))`, bit-identical
    /// to two separate [`TraditionalTable::eval_both`] calls. On a CPE
    /// this still costs one coefficient-row gather per table, but only
    /// one locate.
    #[inline]
    pub fn eval2(&self, other: &Self, x: f64) -> (f64, f64, f64, f64) {
        debug_assert_eq!(self.x0, other.x0, "fused tables must share x0");
        debug_assert_eq!(self.dx, other.dx, "fused tables must share dx");
        debug_assert_eq!(self.coeff.len(), other.coeff.len());
        let (i, t) = self.locate(x);
        let c = &self.coeff[i];
        let d = &other.coeff[i];
        (
            ((c[3] * t + c[4]) * t + c[5]) * t + c[6],
            (c[0] * t + c[1]) * t + c[2],
            ((d[3] * t + d[4]) * t + d[5]) * t + d[6],
            (d[0] * t + d[1]) * t + d[2],
        )
    }

    /// Bytes of one coefficient row — the per-access DMA payload when the
    /// table cannot be resident (7 × f64).
    pub const ROW_BYTES: usize = 7 * 8;

    /// One full lane group of locates + row gathers into SoA
    /// coefficient lanes. Each lane replays the scalar
    /// [`TraditionalTable::locate`] exactly.
    #[inline]
    #[allow(clippy::type_complexity)]
    fn gather_lanes(
        &self,
        xs: &[f64; BATCH_LANES],
    ) -> ([[f64; BATCH_LANES]; 7], [f64; BATCH_LANES]) {
        let mut c = [[0.0; BATCH_LANES]; 7];
        let mut t = [0.0; BATCH_LANES];
        for k in 0..BATCH_LANES {
            let (i, tk) = self.locate(xs[k]);
            t[k] = tk;
            let row = &self.coeff[i];
            for (col, lane) in c.iter_mut().enumerate() {
                lane[k] = row[col];
            }
        }
        (c, t)
    }

    /// Batched value + derivative: full [`BATCH_LANES`] groups gather
    /// coefficient rows into SoA lanes and run the Horner combines as
    /// branch-free lane loops; the ragged tail reuses the scalar
    /// [`TraditionalTable::eval_both`]. Every lane replays the scalar
    /// Horner expressions, so outputs are bitwise identical to
    /// per-element evaluation at every length.
    // (markers for LOCATE_FLOPS / SEG_EVAL_FLOPS sit on the scalar
    // kernels above — the lane loops charge identically per element.)
    pub fn eval_batch(&self, xs: &[f64], val: &mut [f64], der: &mut [f64]) {
        assert_eq!(xs.len(), val.len());
        assert_eq!(xs.len(), der.len());
        let full = xs.len() - xs.len() % BATCH_LANES;
        let mut k = 0;
        while k < full {
            let xw: &[f64; BATCH_LANES] = xs[k..k + BATCH_LANES].try_into().expect("lane window");
            let (c, t) = self.gather_lanes(xw);
            for (off, tk) in t.iter().enumerate() {
                val[k + off] = ((c[3][off] * tk + c[4][off]) * tk + c[5][off]) * tk + c[6][off];
            }
            for (off, tk) in t.iter().enumerate() {
                der[k + off] = (c[0][off] * tk + c[1][off]) * tk + c[2][off];
            }
            k += BATCH_LANES;
        }
        for j in full..xs.len() {
            let (v, d) = self.eval_both(xs[j]);
            val[j] = v;
            der[j] = d;
        }
    }

    /// Batched fused two-table lookup — the batch counterpart of
    /// [`TraditionalTable::eval2`]: per lane, one locate serves both
    /// tables' row gathers. Bitwise identical to per-element `eval2`.
    #[allow(clippy::too_many_arguments)]
    pub fn eval2_batch(
        &self,
        other: &Self,
        xs: &[f64],
        va: &mut [f64],
        da: &mut [f64],
        vb: &mut [f64],
        db: &mut [f64],
    ) {
        debug_assert_eq!(self.x0, other.x0, "fused tables must share x0");
        debug_assert_eq!(self.dx, other.dx, "fused tables must share dx");
        debug_assert_eq!(self.coeff.len(), other.coeff.len());
        assert_eq!(xs.len(), va.len());
        assert_eq!(xs.len(), da.len());
        assert_eq!(xs.len(), vb.len());
        assert_eq!(xs.len(), db.len());
        let full = xs.len() - xs.len() % BATCH_LANES;
        let mut k = 0;
        while k < full {
            let xw: &[f64; BATCH_LANES] = xs[k..k + BATCH_LANES].try_into().expect("lane window");
            let mut c = [[0.0; BATCH_LANES]; 7];
            let mut d = [[0.0; BATCH_LANES]; 7];
            let mut t = [0.0; BATCH_LANES];
            for off in 0..BATCH_LANES {
                let (i, tk) = self.locate(xw[off]);
                t[off] = tk;
                let rc = &self.coeff[i];
                let rd = &other.coeff[i];
                for col in 0..7 {
                    c[col][off] = rc[col];
                    d[col][off] = rd[col];
                }
            }
            for (off, tk) in t.iter().enumerate() {
                va[k + off] = ((c[3][off] * tk + c[4][off]) * tk + c[5][off]) * tk + c[6][off];
            }
            for (off, tk) in t.iter().enumerate() {
                da[k + off] = (c[0][off] * tk + c[1][off]) * tk + c[2][off];
            }
            for (off, tk) in t.iter().enumerate() {
                vb[k + off] = ((d[3][off] * tk + d[4][off]) * tk + d[5][off]) * tk + d[6][off];
            }
            for (off, tk) in t.iter().enumerate() {
                db[k + off] = (d[0][off] * tk + d[1][off]) * tk + d[2][off];
            }
            k += BATCH_LANES;
        }
        for j in full..xs.len() {
            let (pva, pda, pvb, pdb) = self.eval2(other, xs[j]);
            va[j] = pva;
            da[j] = pda;
            vb[j] = pvb;
            db[j] = pdb;
        }
    }

    /// Batched value-only lookup (the density pass discards f'(r)).
    /// Values are bitwise identical to per-element
    /// [`TraditionalTable::eval`].
    pub fn eval_values_batch(&self, xs: &[f64], val: &mut [f64]) {
        assert_eq!(xs.len(), val.len());
        let full = xs.len() - xs.len() % BATCH_LANES;
        let mut k = 0;
        while k < full {
            let xw: &[f64; BATCH_LANES] = xs[k..k + BATCH_LANES].try_into().expect("lane window");
            let (c, t) = self.gather_lanes(xw);
            for (off, tk) in t.iter().enumerate() {
                val[k + off] = ((c[3][off] * tk + c[4][off]) * tk + c[5][off]) * tk + c[6][off];
            }
            k += BATCH_LANES;
        }
        for j in full..xs.len() {
            val[j] = self.eval(xs[j]);
        }
    }
}

/// Solves the natural-spline tridiagonal system for second derivatives.
fn natural_spline_second_derivatives(ys: &[f64], dx: f64) -> Vec<f64> {
    let n = ys.len();
    let mut m = vec![0.0; n];
    if n < 3 {
        return m;
    }
    // Thomas algorithm on the interior unknowns M[1..n-1]:
    //   M[i-1] + 4 M[i] + M[i+1] = 6 (y[i-1] - 2 y[i] + y[i+1]) / dx²
    let k = n - 2;
    let mut cp = vec![0.0; k]; // modified upper diagonal
    let mut dp = vec![0.0; k]; // modified rhs
    for i in 0..k {
        let rhs = 6.0 * (ys[i] - 2.0 * ys[i + 1] + ys[i + 2]) / (dx * dx);
        if i == 0 {
            cp[i] = 1.0 / 4.0;
            dp[i] = rhs / 4.0;
        } else {
            let denom = 4.0 - cp[i - 1];
            cp[i] = 1.0 / denom;
            dp[i] = (rhs - dp[i - 1]) / denom;
        }
    }
    for i in (0..k).rev() {
        m[i + 1] = dp[i] - cp[i] * if i + 2 < n - 1 { m[i + 2] } else { 0.0 };
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_is_273kb() {
        let t = TraditionalTable::build(|x| x, 0.0, 1.0, PAPER_TABLE_N);
        assert_eq!(t.memory_bytes(), 280_000);
        assert!((t.memory_bytes() as f64 / 1024.0 - 273.4).abs() < 0.1);
    }

    #[test]
    fn exact_on_linear_function() {
        let t = TraditionalTable::build(|x| 3.0 * x - 1.0, 0.0, 2.0, 50);
        for &x in &[0.0, 0.3, 0.77, 1.5, 2.0] {
            assert!((t.eval(x) - (3.0 * x - 1.0)).abs() < 1e-12);
            assert!((t.eval_deriv(x) - 3.0).abs() < 1e-10);
        }
    }

    #[test]
    fn accurate_on_smooth_function() {
        let f = |x: f64| (x * 1.7).sin() * (-0.3 * x).exp();
        let df = |x: f64| {
            1.7 * (x * 1.7).cos() * (-0.3 * x).exp() - 0.3 * (x * 1.7).sin() * (-0.3 * x).exp()
        };
        let t = TraditionalTable::build(f, 0.5, 5.0, 2000);
        for i in 0..100 {
            let x = 0.5 + 4.5 * (i as f64 + 0.5) / 100.0;
            assert!((t.eval(x) - f(x)).abs() < 1e-8, "value at {x}");
            assert!((t.eval_deriv(x) - df(x)).abs() < 1e-4, "deriv at {x}");
        }
    }

    #[test]
    fn clamps_outside_range() {
        let t = TraditionalTable::build(|x| x * x, 1.0, 2.0, 100);
        // Below range: clamped to x0.
        assert!((t.eval(0.0) - 1.0).abs() < 1e-9);
        // Above range: clamped to x_max.
        assert!((t.eval(10.0) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn interpolates_knots_exactly() {
        let f = |x: f64| x.exp();
        let t = TraditionalTable::build(f, 0.0, 1.0, 64);
        for i in 0..64 {
            let x = t.x0 + i as f64 * t.dx;
            assert!((t.eval(x) - f(x)).abs() < 1e-10, "knot {i}");
        }
    }

    #[test]
    fn fused_eval2_is_bitwise_two_lookups() {
        let a = TraditionalTable::build(|x| (0.9 * x).cos(), 1.0, 5.0, 600);
        let b = TraditionalTable::build(|x| x * x - 3.0, 1.0, 5.0, 600);
        for i in 0..300 {
            let x = 0.7 + i as f64 * 0.016;
            let (va, da, vb, db) = a.eval2(&b, x);
            assert_eq!((va, da), a.eval_both(x), "table a at {x}");
            assert_eq!((vb, db), b.eval_both(x), "table b at {x}");
        }
    }

    #[test]
    fn batch_kernels_are_bitwise_scalar_at_every_length() {
        let a = TraditionalTable::build(|x| (0.9 * x).cos(), 1.0, 5.0, 600);
        let b = TraditionalTable::build(|x| x * x - 3.0, 1.0, 5.0, 600);
        for len in [0, 1, BATCH_LANES - 1, BATCH_LANES, BATCH_LANES + 1, 29] {
            let xs: Vec<f64> = (0..len).map(|i| 0.7 + i as f64 * 0.17).collect();
            let mut va = vec![0.0; len];
            let mut da = vec![0.0; len];
            let mut vb = vec![0.0; len];
            let mut db = vec![0.0; len];
            a.eval2_batch(&b, &xs, &mut va, &mut da, &mut vb, &mut db);
            let mut v1 = vec![0.0; len];
            let mut d1 = vec![0.0; len];
            a.eval_batch(&xs, &mut v1, &mut d1);
            let mut vals = vec![0.0; len];
            a.eval_values_batch(&xs, &mut vals);
            for (j, &x) in xs.iter().enumerate() {
                let (sva, sda, svb, sdb) = a.eval2(&b, x);
                assert_eq!(
                    (va[j], da[j], vb[j], db[j]),
                    (sva, sda, svb, sdb),
                    "len {len}"
                );
                assert_eq!((v1[j], d1[j]), a.eval_both(x), "len {len} lane {j}");
                assert_eq!(vals[j], a.eval(x), "len {len} lane {j}");
            }
        }
    }

    #[test]
    fn eval_both_consistent() {
        let t = TraditionalTable::build(|x| x * x * x, 0.0, 2.0, 300);
        let (v, d) = t.eval_both(1.234);
        assert_eq!(v, t.eval(1.234));
        assert_eq!(d, t.eval_deriv(1.234));
    }

    #[test]
    fn row_bytes_is_56() {
        assert_eq!(TraditionalTable::ROW_BYTES, 56);
    }
}
