//! Physical units and constants.
//!
//! The whole workspace uses the "metal" unit system common to MD codes:
//! length in Å, energy in eV, mass in amu, time in ps, temperature in K.

/// Boltzmann constant (eV/K).
pub const KB: f64 = 8.617_333_262e-5;

/// Converts an acceleration `F/m` in (eV/Å)/amu to Å/ps².
pub const ACC_CONV: f64 = 9_648.533_212;

/// Converts `amu·(Å/ps)²` to eV (for kinetic energy: `KE = ½·m·v²·KE_CONV`).
pub const KE_CONV: f64 = 1.036_427_230e-4;

/// Mass of iron (amu).
pub const MASS_FE: f64 = 55.845;

/// Mass of copper (amu).
pub const MASS_CU: f64 = 63.546;

/// BCC Fe lattice constant used by the paper's big run (§3): 2.855 Å.
pub const LATTICE_FE: f64 = 2.855;

/// Vacancy formation energy in Fe (eV), used for the time-rescaling
/// formula t_real = t_threshold · C_v^MC / C_v^real with
/// C_v^real = exp(−E_v⁺ / k_B T). The value is chosen inside the
/// accepted experimental range for α-Fe (≈1.6–2.0 eV) such that the
/// paper's §3 arithmetic reproduces exactly: with t_threshold = 2·10⁻⁴,
/// C_v^MC = 2·10⁻⁶ and T = 600 K it yields t_real = 19.2 days.
pub const E_VAC_FORMATION: f64 = 1.8593;

/// Vacancy migration barrier prefactor in Fe (eV) for the
/// Kang–Weinberg rate form used by the KMC engine.
pub const E_MIG_FE: f64 = 0.65;

/// Typical attempt frequency prefactor ν for vacancy hops (1/s).
pub const NU_ATTEMPT: f64 = 1.0e13;

/// Kinetic temperature (K) of a set of velocities.
///
/// `T = 2·KE / (3·N·k_B)` with KE in eV.
pub fn temperature(masses_amu: &[f64], velocities: &[[f64; 3]]) -> f64 {
    assert_eq!(masses_amu.len(), velocities.len());
    if masses_amu.is_empty() {
        return 0.0;
    }
    let ke: f64 = masses_amu
        .iter()
        .zip(velocities)
        .map(|(&m, v)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]) * KE_CONV)
        .sum();
    2.0 * ke / (3.0 * masses_amu.len() as f64 * KB)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_conversion_matches_si_arithmetic() {
        // 1 eV/Å on 1 amu: (1.602176634e-19/1e-10)/1.66053906660e-27 m/s²
        let si = (1.602_176_634e-19 / 1e-10) / 1.660_539_066_60e-27;
        let a_ps = si * 1e-14; // m/s² → Å/ps²
        assert!((ACC_CONV - a_ps).abs() / a_ps < 1e-6);
    }

    #[test]
    fn ke_conversion_consistent_with_acc() {
        // Energy conservation requires KE_CONV == 1/ACC_CONV.
        assert!((KE_CONV * ACC_CONV - 1.0).abs() < 1e-6);
    }

    #[test]
    fn temperature_of_known_velocities() {
        // One atom, m = 1 amu, |v|² = 3 (Å/ps)² ⇒ KE = 1.5·KE_CONV eV,
        // T = 2·KE/(3·kB) = KE_CONV/KB.
        let t = temperature(&[1.0], &[[1.0, 1.0, 1.0]]);
        assert!((t - KE_CONV / KB).abs() < 1e-9);
    }

    #[test]
    fn empty_system_is_cold() {
        assert_eq!(temperature(&[], &[]), 0.0);
    }
}
