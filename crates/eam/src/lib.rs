//! # mmds-eam — Embedded-Atom Method potential substrate
//!
//! The paper's core computation (for both MD and KMC) is EAM potential
//! evaluation, Eq. (1)–(3):
//!
//! ```text
//! E_total = Σ e_i + Σ F(ρ_i)
//! e_i     = ½ Σ_{j≠i} φ_ij(r_ij)       (pair potential)
//! ρ_i     = Σ_{j≠i} f_ij(r_ij)         (electron cloud density)
//! ```
//!
//! evaluated through **cubic-spline interpolation tables** (§2.1.2). We
//! do not have the authors' fitted Fe potential file, so [`analytic`]
//! provides smooth analytic forms with physically reasonable Fe and Cu
//! constants; the *table machinery* — the part the paper optimises — is
//! reproduced exactly:
//!
//! * [`spline::TraditionalTable`]: the 5000×7 coefficient layout used by
//!   LAMMPS/CoMD (columns 0–2 derivative coefficients, 3–6 cubic
//!   coefficients) — 273 KiB, exceeding the 64 KB CPE local store.
//! * [`compact::CompactTable`]: the paper's compacted layout — the 5000
//!   sample values only (39 KiB), with coefficients reconstructed on the
//!   fly via the 5-point formula of Fig. 5:
//!   `L[5,2] = (S[0] − S[4] + 8·(S[3] − S[1]))/12`.
//! * [`alloy`]: Fe–Cu alloy table sets (φ for Fe-Fe/Cu-Cu/Fe-Cu, etc.)
//!   and the local-store placement policy of §2.1.2 (the most abundant
//!   species' tables go resident; the rest stay in main memory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloy;
pub mod analytic;
pub mod compact;
pub mod potential;
pub mod spline;
pub mod units;

pub use alloy::{AlloyEam, LdmPlacement};
pub use analytic::{AnalyticEam, Species};
pub use compact::CompactTable;
pub use potential::{EamPotential, TableForm};
pub use spline::TraditionalTable;

/// Scalar flops of one table segment locate (offset, scale, floor,
/// clamp). Both table forms pay it per lookup; a fused two-table
/// access ([`CompactTable::eval2`], [`TraditionalTable::eval2`]) pays
/// it once for the pair. Used by the CPE cost accounting.
pub const LOCATE_FLOPS: u64 = 4;

/// Scalar flops of evaluating one located cubic segment (value +
/// derivative), excluding the locate and any compacted-table
/// reconstruction. `LOCATE_FLOPS + SEG_EVAL_FLOPS` matches the cost
/// previously charged per traditional-table access.
pub const SEG_EVAL_FLOPS: u64 = 8;

/// Lane width of the SoA batch kernels ([`CompactTable::eval2_batch`]
/// & co). Eight f64 lanes = one 64-byte cache line and two 256-bit
/// vector registers — wide enough for the autovectorizer to tile the
/// Hermite/Horner combine loops, small enough that a gather buffer of a
/// few batches still fits comfortably next to the resident table in a
/// 64 KB CPE local store. Batch kernels process full lane groups with
/// fixed-width `[f64; BATCH_LANES]` windows and hand any ragged tail to
/// the scalar eval path, so results are bitwise identical to per-element
/// evaluation at every length.
pub const BATCH_LANES: usize = 8;
