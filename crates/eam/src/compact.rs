//! Compacted interpolation tables (the paper's contribution #2).
//!
//! §2.1.2: *"we use a compacted interpolation table, of which size is
//! only 39 KB (1/7 of the traditional table). The compacted interpolation
//! table contains the values of 5000 sampling points ... all the values
//! in the traditional table can be calculated on the fly using the
//! compacted table and a specific interpolation formula"* (Fig. 5):
//!
//! ```text
//! L[5,2] = ( S[0] − S[4] + 8·(S[3] − S[1]) ) / 12
//! ```
//!
//! which is the classic 5-point central difference for the first
//! derivative at a knot. We reconstruct knot derivatives with that
//! stencil and evaluate the segment with a cubic Hermite polynomial —
//! trading ~3× more flops per access for a table that *fits in the 64 KB
//! local store*, the trade the paper shows wins decisively (Fig. 9).

use serde::{Deserialize, Serialize};

/// Extra scalar flops per table access paid for on-the-fly coefficient
/// reconstruction (5-point stencil ×2 knots + Hermite combination),
/// compared with [`crate::spline::TraditionalTable`] direct evaluation.
/// Used by the CPE cost accounting. A *fused* two-table lookup
/// ([`CompactTable::eval2`]) pays this once per table but the segment
/// locate ([`crate::LOCATE_FLOPS`]) only once.
pub const RECON_EXTRA_FLOPS: u64 = 28;

/// Cubic Hermite basis values at local coordinate `t ∈ [0,1]`:
/// `[h00, h10, h01, h11, dh00, dh10, dh01, dh11]` — the value basis and
/// its derivative basis. Computing these once is what a fused
/// two-table lookup shares besides the locate.
#[inline]
fn hermite_basis(t: f64) -> [f64; 8] {
    let t2 = t * t;
    let t3 = t2 * t;
    [
        2.0 * t3 - 3.0 * t2 + 1.0,
        t3 - 2.0 * t2 + t,
        -2.0 * t3 + 3.0 * t2,
        t3 - t2,
        6.0 * t2 - 6.0 * t,
        3.0 * t2 - 4.0 * t + 1.0,
        -6.0 * t2 + 6.0 * t,
        3.0 * t2 - 2.0 * t,
    ]
}

/// Segment index and local coordinate for `x` on a knot grid of
/// `n` values starting at `x0` with spacing `dx` (clamped to range).
// flops: LOCATE_FLOPS = 4 (sub, div, floor/min, clamp — shared with the
// traditional locate; a fused eval2_slice pays it once for both tables)
#[inline]
fn locate_on(n: usize, x0: f64, dx: f64, x: f64) -> (usize, f64) {
    let u = ((x - x0) / dx).max(0.0);
    let max_seg = n - 2;
    let i = (u as usize).min(max_seg);
    let t = (u - i as f64).clamp(0.0, 1.0);
    (i, t)
}

/// A compacted table: sample values only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompactTable {
    /// First knot abscissa.
    pub x0: f64,
    /// Knot spacing.
    pub dx: f64,
    /// The `n` sample values `S[i] = f(x0 + i·dx)`.
    pub values: Vec<f64>,
}

impl CompactTable {
    /// Samples `f` at `n` equally spaced knots over `[x0, x1]`.
    pub fn build(f: impl Fn(f64) -> f64, x0: f64, x1: f64, n: usize) -> Self {
        assert!(n >= 6, "5-point stencil needs at least 6 knots");
        assert!(x1 > x0);
        let dx = (x1 - x0) / (n - 1) as f64;
        let values = (0..n).map(|i| f(x0 + i as f64 * dx)).collect();
        Self { x0, dx, values }
    }

    /// Number of knots.
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// Last covered abscissa.
    pub fn x_max(&self) -> f64 {
        self.x0 + (self.n() - 1) as f64 * self.dx
    }

    /// Size in bytes — `n × 8`; 39.1 KiB for the paper's n = 5000,
    /// small enough to sit resident in a CPE local store.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * 8
    }

    /// Knot derivative via the paper's 5-point formula (one-sided stencils
    /// of the same order near the boundaries).
    #[inline]
    fn knot_deriv(values: &[f64], i: usize, dx: f64) -> f64 {
        let n = values.len();
        if i >= 2 && i + 2 < n {
            // (S[i-2] − S[i+2] + 8·(S[i+1] − S[i-1])) / 12  — Fig. 5.
            (values[i - 2] - values[i + 2] + 8.0 * (values[i + 1] - values[i - 1])) / (12.0 * dx)
        } else if i == 0 {
            (-3.0 * values[0] + 4.0 * values[1] - values[2]) / (2.0 * dx)
        } else if i == 1 {
            (values[2] - values[0]) / (2.0 * dx)
        } else if i + 2 == n {
            (values[n - 1] - values[n - 3]) / (2.0 * dx)
        } else {
            (3.0 * values[n - 1] - 4.0 * values[n - 2] + values[n - 3]) / (2.0 * dx)
        }
    }

    /// Segment index and local coordinate for `x` (clamped to range).
    #[inline]
    pub fn locate(&self, x: f64) -> (usize, f64) {
        locate_on(self.values.len(), self.x0, self.dx, x)
    }

    /// Value and derivative of the segment `(i, t)` of `values`, given
    /// a precomputed Hermite basis (reconstruction happens here: two
    /// 5-point knot-derivative stencils per table).
    // flops: SEG_EVAL_FLOPS = 8 (Hermite value 4·mul+3·add ≈ value +
    // derivative combination, same per-segment charge as the
    // traditional form)
    // flops: RECON_EXTRA_FLOPS = 28 (two 5-point knot-derivative
    // stencils at ~10 ops each + basis/derivative scaling — the
    // compacted table's on-the-fly reconstruction premium)
    #[inline]
    fn eval_segment(values: &[f64], i: usize, t_basis: &[f64; 8], dx: f64) -> (f64, f64) {
        let y0 = values[i];
        let y1 = values[i + 1];
        let d0 = Self::knot_deriv(values, i, dx) * dx;
        let d1 = Self::knot_deriv(values, i + 1, dx) * dx;
        let [h00, h10, h01, h11, dh00, dh10, dh01, dh11] = *t_basis;
        let value = h00 * y0 + h10 * d0 + h01 * y1 + h11 * d1;
        let deriv = (dh00 * y0 + dh10 * d0 + dh01 * y1 + dh11 * d1) / dx;
        (value, deriv)
    }

    /// Value and derivative at `x`, reconstructed on the fly. This is
    /// the method CPE kernels call against a **slice** so the table can
    /// live either in local store or main memory.
    #[inline]
    pub fn eval_slice(values: &[f64], x0: f64, dx: f64, x: f64) -> (f64, f64) {
        let (i, t) = locate_on(values.len(), x0, dx, x);
        let basis = hermite_basis(t);
        Self::eval_segment(values, i, &basis, dx)
    }

    /// Fused two-table lookup against **slices**: ONE segment locate and
    /// one Hermite basis serve both `a` and `b`, which must be sampled
    /// on the same knot grid (`x0`, `dx`, length). Returns
    /// `(a(x), a'(x), b(x), b'(x))`, bit-identical to two separate
    /// [`CompactTable::eval_slice`] calls.
    #[inline]
    pub fn eval2_slice(a: &[f64], b: &[f64], x0: f64, dx: f64, x: f64) -> (f64, f64, f64, f64) {
        debug_assert_eq!(a.len(), b.len(), "fused tables must share the knot grid");
        let (i, t) = locate_on(a.len(), x0, dx, x);
        let basis = hermite_basis(t);
        let (va, da) = Self::eval_segment(a, i, &basis, dx);
        let (vb, db) = Self::eval_segment(b, i, &basis, dx);
        (va, da, vb, db)
    }

    /// Fused owned-table lookup: `(self(x), self'(x), other(x),
    /// other'(x))` from a single locate. `other` must share this
    /// table's knot grid (the r-indexed pair and density tables do).
    #[inline]
    pub fn eval2(&self, other: &CompactTable, x: f64) -> (f64, f64, f64, f64) {
        debug_assert_eq!(self.x0, other.x0, "fused tables must share x0");
        debug_assert_eq!(self.dx, other.dx, "fused tables must share dx");
        Self::eval2_slice(&self.values, &other.values, self.x0, self.dx, x)
    }

    /// Value and derivative at `x` from this owned table.
    #[inline]
    pub fn eval_both(&self, x: f64) -> (f64, f64) {
        Self::eval_slice(&self.values, self.x0, self.dx, x)
    }

    /// Value at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.eval_both(x).0
    }

    /// Derivative at `x`.
    #[inline]
    pub fn eval_deriv(&self, x: f64) -> f64 {
        self.eval_both(x).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spline::{TraditionalTable, PAPER_TABLE_N};

    #[test]
    fn paper_table_is_39kb() {
        let t = CompactTable::build(|x| x, 0.0, 1.0, PAPER_TABLE_N);
        assert_eq!(t.memory_bytes(), 40_000);
        assert!((t.memory_bytes() as f64 / 1024.0 - 39.06).abs() < 0.1);
        // And it fits where the traditional table does not.
        let ldm = mmds_sunway::SwModel::sw26010().ldm_bytes;
        assert!(t.memory_bytes() < ldm);
        let trad = TraditionalTable::build(|x| x, 0.0, 1.0, PAPER_TABLE_N);
        assert!(trad.memory_bytes() > ldm);
        assert_eq!(trad.memory_bytes(), 7 * t.memory_bytes());
    }

    #[test]
    fn exact_on_cubic() {
        // Hermite with 4th-order-accurate knot slopes is exact on cubics.
        let f = |x: f64| 2.0 * x * x * x - x * x + 3.0;
        let t = CompactTable::build(f, 0.0, 2.0, 40);
        for i in 0..50 {
            let x = 0.15 + i as f64 * 0.035;
            let (v, d) = t.eval_both(x);
            assert!((v - f(x)).abs() < 1e-9, "value at {x}: {v}");
            let df = 6.0 * x * x - 2.0 * x;
            assert!((d - df).abs() < 1e-7, "deriv at {x}: {d} vs {df}");
        }
    }

    #[test]
    fn agrees_with_traditional_table() {
        let f = |x: f64| (1.3 * x).sin() * (-0.4 * x).exp() + 0.1 * x;
        let trad = TraditionalTable::build(f, 0.5, 5.0, PAPER_TABLE_N);
        let comp = CompactTable::build(f, 0.5, 5.0, PAPER_TABLE_N);
        for i in 0..500 {
            let x = 0.5 + 4.5 * (i as f64 + 0.37) / 500.0;
            let (tv, td) = trad.eval_both(x);
            let (cv, cd) = comp.eval_both(x);
            assert!((tv - cv).abs() < 1e-9, "value mismatch at {x}");
            assert!((td - cd).abs() < 1e-5, "deriv mismatch at {x}");
        }
    }

    #[test]
    fn boundary_stencils_reasonable() {
        let f = |x: f64| x.exp();
        let t = CompactTable::build(f, 0.0, 1.0, 100);
        // First and last segments still approximate well.
        let (v, d) = t.eval_both(0.003);
        assert!((v - f(0.003)).abs() < 1e-6);
        assert!((d - f(0.003)).abs() < 1e-3);
        let (v, d) = t.eval_both(0.997);
        assert!((v - f(0.997)).abs() < 1e-6);
        assert!((d - f(0.997)).abs() < 1e-3);
    }

    #[test]
    fn clamps_outside_range() {
        let t = CompactTable::build(|x| x, 1.0, 2.0, 64);
        assert!((t.eval(0.5) - 1.0).abs() < 1e-9);
        assert!((t.eval(3.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fused_eval2_is_bitwise_two_lookups() {
        let fa = |x: f64| (1.1 * x).sin() + 0.2 * x;
        let fb = |x: f64| (-0.3 * x).exp() * x;
        let a = CompactTable::build(fa, 1.0, 5.0, 777);
        let b = CompactTable::build(fb, 1.0, 5.0, 777);
        for i in 0..400 {
            let x = 0.8 + i as f64 * 0.0115; // includes the clamp regions
            let (va, da, vb, db) = a.eval2(&b, x);
            let (va1, da1) = a.eval_both(x);
            let (vb1, db1) = b.eval_both(x);
            assert_eq!(va, va1, "fused value a at {x}");
            assert_eq!(da, da1, "fused deriv a at {x}");
            assert_eq!(vb, vb1, "fused value b at {x}");
            assert_eq!(db, db1, "fused deriv b at {x}");
        }
    }

    #[test]
    fn eval_slice_matches_owned() {
        let t = CompactTable::build(|x| x * x, 0.0, 3.0, 128);
        let (v1, d1) = t.eval_both(1.718);
        let (v2, d2) = CompactTable::eval_slice(&t.values, t.x0, t.dx, 1.718);
        assert_eq!(v1, v2);
        assert_eq!(d1, d2);
    }
}
