//! Compacted interpolation tables (the paper's contribution #2).
//!
//! §2.1.2: *"we use a compacted interpolation table, of which size is
//! only 39 KB (1/7 of the traditional table). The compacted interpolation
//! table contains the values of 5000 sampling points ... all the values
//! in the traditional table can be calculated on the fly using the
//! compacted table and a specific interpolation formula"* (Fig. 5):
//!
//! ```text
//! L[5,2] = ( S[0] − S[4] + 8·(S[3] − S[1]) ) / 12
//! ```
//!
//! which is the classic 5-point central difference for the first
//! derivative at a knot. We reconstruct knot derivatives with that
//! stencil and evaluate the segment with a cubic Hermite polynomial —
//! trading ~3× more flops per access for a table that *fits in the 64 KB
//! local store*, the trade the paper shows wins decisively (Fig. 9).

use serde::{Deserialize, Serialize};

use crate::BATCH_LANES;

/// Extra scalar flops per table access paid for on-the-fly coefficient
/// reconstruction (5-point stencil ×2 knots + Hermite combination),
/// compared with [`crate::spline::TraditionalTable`] direct evaluation.
/// Used by the CPE cost accounting. A *fused* two-table lookup
/// ([`CompactTable::eval2`]) pays this once per table but the segment
/// locate ([`crate::LOCATE_FLOPS`]) only once.
pub const RECON_EXTRA_FLOPS: u64 = 28;

/// Cubic Hermite basis values at local coordinate `t ∈ [0,1]`:
/// `[h00, h10, h01, h11, dh00, dh10, dh01, dh11]` — the value basis and
/// its derivative basis. Computing these once is what a fused
/// two-table lookup shares besides the locate.
#[inline]
fn hermite_basis(t: f64) -> [f64; 8] {
    let t2 = t * t;
    let t3 = t2 * t;
    [
        2.0 * t3 - 3.0 * t2 + 1.0,
        t3 - 2.0 * t2 + t,
        -2.0 * t3 + 3.0 * t2,
        t3 - t2,
        6.0 * t2 - 6.0 * t,
        3.0 * t2 - 4.0 * t + 1.0,
        -6.0 * t2 + 6.0 * t,
        3.0 * t2 - 2.0 * t,
    ]
}

/// Segment index and local coordinate for `x` on a knot grid of
/// `n` values starting at `x0` with spacing `dx` (clamped to range).
// flops: LOCATE_FLOPS = 4 (sub, div, floor/min, clamp — shared with the
// traditional locate; a fused eval2_slice pays it once for both tables)
#[inline]
fn locate_on(n: usize, x0: f64, dx: f64, x: f64) -> (usize, f64) {
    let u = ((x - x0) / dx).max(0.0);
    let max_seg = n - 2;
    let i = (u as usize).min(max_seg);
    let t = (u - i as f64).clamp(0.0, 1.0);
    (i, t)
}

/// Segment indices and local coordinates for one full lane group.
/// Replays [`locate_on`] per lane, so each lane's result is bitwise
/// identical to the scalar locate.
// flops: LOCATE_FLOPS = 4 (per lane — the same sub, div, floor/min,
// clamp sequence as the scalar locate, just over a lane group)
#[inline]
fn locate_lanes(
    n: usize,
    x0: f64,
    dx: f64,
    xs: &[f64; BATCH_LANES],
) -> ([usize; BATCH_LANES], [f64; BATCH_LANES]) {
    let mut seg = [0usize; BATCH_LANES];
    let mut t = [0.0; BATCH_LANES];
    for k in 0..BATCH_LANES {
        let (i, tk) = locate_on(n, x0, dx, xs[k]);
        seg[k] = i;
        t[k] = tk;
    }
    (seg, t)
}

/// SoA Hermite basis for one lane group: `out[c][k]` is component `c`
/// of `hermite_basis(t[k])` — component-major so the combine loops in
/// [`CompactTable::eval_segment_lanes`] read contiguous lane arrays.
#[inline]
fn hermite_basis_lanes(t: &[f64; BATCH_LANES]) -> [[f64; BATCH_LANES]; 8] {
    let mut out = [[0.0; BATCH_LANES]; 8];
    for k in 0..BATCH_LANES {
        let b = hermite_basis(t[k]);
        for (c, row) in out.iter_mut().enumerate() {
            row[k] = b[c];
        }
    }
    out
}

/// Value-half SoA Hermite basis (`h00, h10, h01, h11` lanes only) —
/// the value-only density kernel never reads the derivative basis, and
/// the four value components are computed with exactly the
/// [`hermite_basis`] expressions, so the value lanes stay bitwise
/// identical.
#[inline]
fn hermite_value_basis_lanes(t: &[f64; BATCH_LANES]) -> [[f64; BATCH_LANES]; 4] {
    let mut out = [[0.0; BATCH_LANES]; 4];
    for k in 0..BATCH_LANES {
        let t1 = t[k];
        let t2 = t1 * t1;
        let t3 = t2 * t1;
        out[0][k] = 2.0 * t3 - 3.0 * t2 + 1.0;
        out[1][k] = t3 - 2.0 * t2 + t1;
        out[2][k] = -2.0 * t3 + 3.0 * t2;
        out[3][k] = t3 - t2;
    }
    out
}

/// A compacted table: sample values only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompactTable {
    /// First knot abscissa.
    pub x0: f64,
    /// Knot spacing.
    pub dx: f64,
    /// The `n` sample values `S[i] = f(x0 + i·dx)`.
    pub values: Vec<f64>,
}

impl CompactTable {
    /// Samples `f` at `n` equally spaced knots over `[x0, x1]`.
    pub fn build(f: impl Fn(f64) -> f64, x0: f64, x1: f64, n: usize) -> Self {
        assert!(n >= 6, "5-point stencil needs at least 6 knots");
        assert!(x1 > x0);
        let dx = (x1 - x0) / (n - 1) as f64;
        let values = (0..n).map(|i| f(x0 + i as f64 * dx)).collect();
        Self { x0, dx, values }
    }

    /// Number of knots.
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// Last covered abscissa.
    pub fn x_max(&self) -> f64 {
        self.x0 + (self.n() - 1) as f64 * self.dx
    }

    /// Size in bytes — `n × 8`; 39.1 KiB for the paper's n = 5000,
    /// small enough to sit resident in a CPE local store.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * 8
    }

    /// Knot derivative via the paper's 5-point formula (one-sided stencils
    /// of the same order near the boundaries).
    #[inline]
    fn knot_deriv(values: &[f64], i: usize, dx: f64) -> f64 {
        let n = values.len();
        if i >= 2 && i + 2 < n {
            // (S[i-2] − S[i+2] + 8·(S[i+1] − S[i-1])) / 12  — Fig. 5.
            (values[i - 2] - values[i + 2] + 8.0 * (values[i + 1] - values[i - 1])) / (12.0 * dx)
        } else if i == 0 {
            (-3.0 * values[0] + 4.0 * values[1] - values[2]) / (2.0 * dx)
        } else if i == 1 {
            (values[2] - values[0]) / (2.0 * dx)
        } else if i + 2 == n {
            (values[n - 1] - values[n - 3]) / (2.0 * dx)
        } else {
            (3.0 * values[n - 1] - 4.0 * values[n - 2] + values[n - 3]) / (2.0 * dx)
        }
    }

    /// Segment index and local coordinate for `x` (clamped to range).
    #[inline]
    pub fn locate(&self, x: f64) -> (usize, f64) {
        locate_on(self.values.len(), self.x0, self.dx, x)
    }

    /// Value and derivative of the segment `(i, t)` of `values`, given
    /// a precomputed Hermite basis (reconstruction happens here: two
    /// 5-point knot-derivative stencils per table).
    // flops: SEG_EVAL_FLOPS = 8 (Hermite value 4·mul+3·add ≈ value +
    // derivative combination, same per-segment charge as the
    // traditional form)
    // flops: RECON_EXTRA_FLOPS = 28 (two 5-point knot-derivative
    // stencils at ~10 ops each + basis/derivative scaling — the
    // compacted table's on-the-fly reconstruction premium)
    #[inline]
    fn eval_segment(values: &[f64], i: usize, t_basis: &[f64; 8], dx: f64) -> (f64, f64) {
        let y0 = values[i];
        let y1 = values[i + 1];
        let d0 = Self::knot_deriv(values, i, dx) * dx;
        let d1 = Self::knot_deriv(values, i + 1, dx) * dx;
        let [h00, h10, h01, h11, dh00, dh10, dh01, dh11] = *t_basis;
        let value = h00 * y0 + h10 * d0 + h01 * y1 + h11 * d1;
        let deriv = (dh00 * y0 + dh10 * d0 + dh01 * y1 + dh11 * d1) / dx;
        (value, deriv)
    }

    /// Value and derivative at `x`, reconstructed on the fly. This is
    /// the method CPE kernels call against a **slice** so the table can
    /// live either in local store or main memory.
    #[inline]
    pub fn eval_slice(values: &[f64], x0: f64, dx: f64, x: f64) -> (f64, f64) {
        let (i, t) = locate_on(values.len(), x0, dx, x);
        let basis = hermite_basis(t);
        Self::eval_segment(values, i, &basis, dx)
    }

    /// Fused two-table lookup against **slices**: ONE segment locate and
    /// one Hermite basis serve both `a` and `b`, which must be sampled
    /// on the same knot grid (`x0`, `dx`, length). Returns
    /// `(a(x), a'(x), b(x), b'(x))`, bit-identical to two separate
    /// [`CompactTable::eval_slice`] calls.
    #[inline]
    pub fn eval2_slice(a: &[f64], b: &[f64], x0: f64, dx: f64, x: f64) -> (f64, f64, f64, f64) {
        debug_assert_eq!(a.len(), b.len(), "fused tables must share the knot grid");
        let (i, t) = locate_on(a.len(), x0, dx, x);
        let basis = hermite_basis(t);
        let (va, da) = Self::eval_segment(a, i, &basis, dx);
        let (vb, db) = Self::eval_segment(b, i, &basis, dx);
        (va, da, vb, db)
    }

    /// Fused owned-table lookup: `(self(x), self'(x), other(x),
    /// other'(x))` from a single locate. `other` must share this
    /// table's knot grid (the r-indexed pair and density tables do).
    #[inline]
    pub fn eval2(&self, other: &CompactTable, x: f64) -> (f64, f64, f64, f64) {
        debug_assert_eq!(self.x0, other.x0, "fused tables must share x0");
        debug_assert_eq!(self.dx, other.dx, "fused tables must share dx");
        Self::eval2_slice(&self.values, &other.values, self.x0, self.dx, x)
    }

    /// Value and derivative at `x` from this owned table.
    #[inline]
    pub fn eval_both(&self, x: f64) -> (f64, f64) {
        Self::eval_slice(&self.values, self.x0, self.dx, x)
    }

    /// Value at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.eval_both(x).0
    }

    /// Derivative at `x`.
    #[inline]
    pub fn eval_deriv(&self, x: f64) -> f64 {
        self.eval_both(x).1
    }

    /// Evaluates one table's located segments across a full lane group:
    /// knot values and reconstructed derivatives are gathered into lane
    /// arrays (the only non-contiguous reads), then combined with the
    /// shared SoA basis in branch-free lane loops the autovectorizer
    /// can tile. Each lane replays exactly the scalar
    /// [`CompactTable::eval_segment`] expression, so every lane is
    /// bitwise identical to a scalar eval.
    // flops: SEG_EVAL_FLOPS = 8 (per lane — the same Hermite value +
    // derivative combination as the scalar segment eval)
    // flops: RECON_EXTRA_FLOPS = 28 (per lane — two 5-point
    // knot-derivative stencils + basis/derivative scaling, unchanged
    // from the scalar reconstruction)
    #[inline]
    fn eval_segment_lanes(
        values: &[f64],
        seg: &[usize; BATCH_LANES],
        h: &[[f64; BATCH_LANES]; 8],
        dx: f64,
        val: &mut [f64; BATCH_LANES],
        der: &mut [f64; BATCH_LANES],
    ) {
        let (y0, y1, d0, d1) = Self::gather_segment_lanes(values, seg, dx);
        for k in 0..BATCH_LANES {
            val[k] = h[0][k] * y0[k] + h[1][k] * d0[k] + h[2][k] * y1[k] + h[3][k] * d1[k];
        }
        for k in 0..BATCH_LANES {
            der[k] = (h[4][k] * y0[k] + h[5][k] * d0[k] + h[6][k] * y1[k] + h[7][k] * d1[k]) / dx;
        }
    }

    /// Value-only lane-group segment eval — the density pass discards
    /// the derivative, so the batched ρ kernel skips the derivative
    /// combine entirely. The value lanes are still bitwise identical to
    /// [`CompactTable::eval_segment`]'s value output.
    #[inline]
    fn eval_segment_values_lanes(
        values: &[f64],
        seg: &[usize; BATCH_LANES],
        h: &[[f64; BATCH_LANES]; 4],
        dx: f64,
        val: &mut [f64; BATCH_LANES],
    ) {
        let (y0, y1, d0, d1) = Self::gather_segment_lanes(values, seg, dx);
        for k in 0..BATCH_LANES {
            val[k] = h[0][k] * y0[k] + h[1][k] * d0[k] + h[2][k] * y1[k] + h[3][k] * d1[k];
        }
    }

    /// Fused two-table lane-group segment eval: both tables share the
    /// lane segment indices (same knot grid), so the interior-stencil
    /// check and the per-lane index arithmetic run **once** for both
    /// gathers. Each table's lanes replay exactly the expressions of
    /// [`CompactTable::eval_segment_lanes`], so the outputs are bitwise
    /// identical to two separate single-table lane evals.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn eval2_segment_lanes(
        a: &[f64],
        b: &[f64],
        seg: &[usize; BATCH_LANES],
        h: &[[f64; BATCH_LANES]; 8],
        dx: f64,
        va: &mut [f64; BATCH_LANES],
        da: &mut [f64; BATCH_LANES],
        vb: &mut [f64; BATCH_LANES],
        db: &mut [f64; BATCH_LANES],
    ) {
        debug_assert_eq!(a.len(), b.len(), "fused tables must share the knot grid");
        let n = a.len();
        let mut ya0 = [0.0; BATCH_LANES];
        let mut ya1 = [0.0; BATCH_LANES];
        let mut da0 = [0.0; BATCH_LANES];
        let mut da1 = [0.0; BATCH_LANES];
        let mut yb0 = [0.0; BATCH_LANES];
        let mut yb1 = [0.0; BATCH_LANES];
        let mut db0 = [0.0; BATCH_LANES];
        let mut db1 = [0.0; BATCH_LANES];
        if seg.iter().all(|&i| i >= 2 && i + 3 < n) {
            for k in 0..BATCH_LANES {
                let i = seg[k];
                ya0[k] = a[i];
                ya1[k] = a[i + 1];
                da0[k] = (a[i - 2] - a[i + 2] + 8.0 * (a[i + 1] - a[i - 1])) / (12.0 * dx) * dx;
                da1[k] = (a[i - 1] - a[i + 3] + 8.0 * (a[i + 2] - a[i])) / (12.0 * dx) * dx;
                yb0[k] = b[i];
                yb1[k] = b[i + 1];
                db0[k] = (b[i - 2] - b[i + 2] + 8.0 * (b[i + 1] - b[i - 1])) / (12.0 * dx) * dx;
                db1[k] = (b[i - 1] - b[i + 3] + 8.0 * (b[i + 2] - b[i])) / (12.0 * dx) * dx;
            }
        } else {
            for k in 0..BATCH_LANES {
                let i = seg[k];
                ya0[k] = a[i];
                ya1[k] = a[i + 1];
                da0[k] = Self::knot_deriv(a, i, dx) * dx;
                da1[k] = Self::knot_deriv(a, i + 1, dx) * dx;
                yb0[k] = b[i];
                yb1[k] = b[i + 1];
                db0[k] = Self::knot_deriv(b, i, dx) * dx;
                db1[k] = Self::knot_deriv(b, i + 1, dx) * dx;
            }
        }
        for k in 0..BATCH_LANES {
            va[k] = h[0][k] * ya0[k] + h[1][k] * da0[k] + h[2][k] * ya1[k] + h[3][k] * da1[k];
        }
        for k in 0..BATCH_LANES {
            da[k] =
                (h[4][k] * ya0[k] + h[5][k] * da0[k] + h[6][k] * ya1[k] + h[7][k] * da1[k]) / dx;
        }
        for k in 0..BATCH_LANES {
            vb[k] = h[0][k] * yb0[k] + h[1][k] * db0[k] + h[2][k] * yb1[k] + h[3][k] * db1[k];
        }
        for k in 0..BATCH_LANES {
            db[k] =
                (h[4][k] * yb0[k] + h[5][k] * db0[k] + h[6][k] * yb1[k] + h[7][k] * db1[k]) / dx;
        }
    }

    /// The gather stage shared by the lane-group evals: knot values and
    /// scaled knot derivatives of each lane's segment, in lane arrays.
    #[inline]
    #[allow(clippy::type_complexity)]
    fn gather_segment_lanes(
        values: &[f64],
        seg: &[usize; BATCH_LANES],
        dx: f64,
    ) -> (
        [f64; BATCH_LANES],
        [f64; BATCH_LANES],
        [f64; BATCH_LANES],
        [f64; BATCH_LANES],
    ) {
        let mut y0 = [0.0; BATCH_LANES];
        let mut y1 = [0.0; BATCH_LANES];
        let mut d0 = [0.0; BATCH_LANES];
        let mut d1 = [0.0; BATCH_LANES];
        // Fast path: every lane's two stencils are interior (the
        // overwhelmingly common case for MD distances well inside the
        // tabulated range), so the whole gather runs branch-free with
        // the Fig. 5 stencil inlined — the identical expression
        // `knot_deriv` evaluates for interior knots, so the bits match.
        let n = values.len();
        if seg.iter().all(|&i| i >= 2 && i + 3 < n) {
            for k in 0..BATCH_LANES {
                let i = seg[k];
                y0[k] = values[i];
                y1[k] = values[i + 1];
                d0[k] = (values[i - 2] - values[i + 2] + 8.0 * (values[i + 1] - values[i - 1]))
                    / (12.0 * dx)
                    * dx;
                d1[k] = (values[i - 1] - values[i + 3] + 8.0 * (values[i + 2] - values[i]))
                    / (12.0 * dx)
                    * dx;
            }
        } else {
            for k in 0..BATCH_LANES {
                let i = seg[k];
                y0[k] = values[i];
                y1[k] = values[i + 1];
                d0[k] = Self::knot_deriv(values, i, dx) * dx;
                d1[k] = Self::knot_deriv(values, i + 1, dx) * dx;
            }
        }
        (y0, y1, d0, d1)
    }

    /// Batched value + derivative against a **slice**: full
    /// [`BATCH_LANES`] groups go through the lane kernel, the ragged
    /// tail through the scalar [`CompactTable::eval_slice`]. Bitwise
    /// identical to per-element evaluation at every length.
    pub fn eval_batch_slice(
        values: &[f64],
        x0: f64,
        dx: f64,
        xs: &[f64],
        val: &mut [f64],
        der: &mut [f64],
    ) {
        assert_eq!(xs.len(), val.len());
        assert_eq!(xs.len(), der.len());
        let full = xs.len() - xs.len() % BATCH_LANES;
        let mut k = 0;
        while k < full {
            let xw: &[f64; BATCH_LANES] = xs[k..k + BATCH_LANES].try_into().expect("lane window");
            let (seg, t) = locate_lanes(values.len(), x0, dx, xw);
            let h = hermite_basis_lanes(&t);
            let vw: &mut [f64; BATCH_LANES] = (&mut val[k..k + BATCH_LANES])
                .try_into()
                .expect("lane window");
            let dw: &mut [f64; BATCH_LANES] = (&mut der[k..k + BATCH_LANES])
                .try_into()
                .expect("lane window");
            Self::eval_segment_lanes(values, &seg, &h, dx, vw, dw);
            k += BATCH_LANES;
        }
        for j in full..xs.len() {
            let (v, d) = Self::eval_slice(values, x0, dx, xs[j]);
            val[j] = v;
            der[j] = d;
        }
    }

    /// Batched fused two-table lookup against **slices**: per lane
    /// group, ONE locate pass and one SoA Hermite basis serve both
    /// tables (which must share the knot grid), exactly like the scalar
    /// [`CompactTable::eval2_slice`]; the ragged tail reuses that
    /// scalar path. All four output streams are bitwise identical to
    /// per-element `eval2_slice` calls.
    #[allow(clippy::too_many_arguments)]
    pub fn eval2_batch_slice(
        a: &[f64],
        b: &[f64],
        x0: f64,
        dx: f64,
        xs: &[f64],
        va: &mut [f64],
        da: &mut [f64],
        vb: &mut [f64],
        db: &mut [f64],
    ) {
        debug_assert_eq!(a.len(), b.len(), "fused tables must share the knot grid");
        assert_eq!(xs.len(), va.len());
        assert_eq!(xs.len(), da.len());
        assert_eq!(xs.len(), vb.len());
        assert_eq!(xs.len(), db.len());
        let full = xs.len() - xs.len() % BATCH_LANES;
        let mut k = 0;
        while k < full {
            let xw: &[f64; BATCH_LANES] = xs[k..k + BATCH_LANES].try_into().expect("lane window");
            let (seg, t) = locate_lanes(a.len(), x0, dx, xw);
            let h = hermite_basis_lanes(&t);
            let vaw: &mut [f64; BATCH_LANES] = (&mut va[k..k + BATCH_LANES])
                .try_into()
                .expect("lane window");
            let daw: &mut [f64; BATCH_LANES] = (&mut da[k..k + BATCH_LANES])
                .try_into()
                .expect("lane window");
            let vbw: &mut [f64; BATCH_LANES] = (&mut vb[k..k + BATCH_LANES])
                .try_into()
                .expect("lane window");
            let dbw: &mut [f64; BATCH_LANES] = (&mut db[k..k + BATCH_LANES])
                .try_into()
                .expect("lane window");
            Self::eval2_segment_lanes(a, b, &seg, &h, dx, vaw, daw, vbw, dbw);
            k += BATCH_LANES;
        }
        for j in full..xs.len() {
            let (pva, pda, pvb, pdb) = Self::eval2_slice(a, b, x0, dx, xs[j]);
            va[j] = pva;
            da[j] = pda;
            vb[j] = pvb;
            db[j] = pdb;
        }
    }

    /// Batched value-only lookup against a **slice** — the density-pass
    /// kernel (ρ accumulation never reads f'(r)). Values are bitwise
    /// identical to the value half of per-element
    /// [`CompactTable::eval_slice`] calls.
    pub fn eval_values_batch_slice(values: &[f64], x0: f64, dx: f64, xs: &[f64], val: &mut [f64]) {
        assert_eq!(xs.len(), val.len());
        let full = xs.len() - xs.len() % BATCH_LANES;
        let mut k = 0;
        while k < full {
            let xw: &[f64; BATCH_LANES] = xs[k..k + BATCH_LANES].try_into().expect("lane window");
            let (seg, t) = locate_lanes(values.len(), x0, dx, xw);
            let h = hermite_value_basis_lanes(&t);
            let vw: &mut [f64; BATCH_LANES] = (&mut val[k..k + BATCH_LANES])
                .try_into()
                .expect("lane window");
            Self::eval_segment_values_lanes(values, &seg, &h, dx, vw);
            k += BATCH_LANES;
        }
        for j in full..xs.len() {
            val[j] = Self::eval_slice(values, x0, dx, xs[j]).0;
        }
    }

    /// Batched fused owned-table lookup — the batch counterpart of
    /// [`CompactTable::eval2`]. `other` must share this table's knot
    /// grid.
    #[allow(clippy::too_many_arguments)]
    pub fn eval2_batch(
        &self,
        other: &CompactTable,
        xs: &[f64],
        va: &mut [f64],
        da: &mut [f64],
        vb: &mut [f64],
        db: &mut [f64],
    ) {
        debug_assert_eq!(self.x0, other.x0, "fused tables must share x0");
        debug_assert_eq!(self.dx, other.dx, "fused tables must share dx");
        Self::eval2_batch_slice(
            &self.values,
            &other.values,
            self.x0,
            self.dx,
            xs,
            va,
            da,
            vb,
            db,
        );
    }

    /// Batched value-only lookup from this owned table.
    pub fn eval_values_batch(&self, xs: &[f64], val: &mut [f64]) {
        Self::eval_values_batch_slice(&self.values, self.x0, self.dx, xs, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spline::{TraditionalTable, PAPER_TABLE_N};

    #[test]
    fn paper_table_is_39kb() {
        let t = CompactTable::build(|x| x, 0.0, 1.0, PAPER_TABLE_N);
        assert_eq!(t.memory_bytes(), 40_000);
        assert!((t.memory_bytes() as f64 / 1024.0 - 39.06).abs() < 0.1);
        // And it fits where the traditional table does not.
        let ldm = mmds_sunway::SwModel::sw26010().ldm_bytes;
        assert!(t.memory_bytes() < ldm);
        let trad = TraditionalTable::build(|x| x, 0.0, 1.0, PAPER_TABLE_N);
        assert!(trad.memory_bytes() > ldm);
        assert_eq!(trad.memory_bytes(), 7 * t.memory_bytes());
    }

    #[test]
    fn exact_on_cubic() {
        // Hermite with 4th-order-accurate knot slopes is exact on cubics.
        let f = |x: f64| 2.0 * x * x * x - x * x + 3.0;
        let t = CompactTable::build(f, 0.0, 2.0, 40);
        for i in 0..50 {
            let x = 0.15 + i as f64 * 0.035;
            let (v, d) = t.eval_both(x);
            assert!((v - f(x)).abs() < 1e-9, "value at {x}: {v}");
            let df = 6.0 * x * x - 2.0 * x;
            assert!((d - df).abs() < 1e-7, "deriv at {x}: {d} vs {df}");
        }
    }

    #[test]
    fn agrees_with_traditional_table() {
        let f = |x: f64| (1.3 * x).sin() * (-0.4 * x).exp() + 0.1 * x;
        let trad = TraditionalTable::build(f, 0.5, 5.0, PAPER_TABLE_N);
        let comp = CompactTable::build(f, 0.5, 5.0, PAPER_TABLE_N);
        for i in 0..500 {
            let x = 0.5 + 4.5 * (i as f64 + 0.37) / 500.0;
            let (tv, td) = trad.eval_both(x);
            let (cv, cd) = comp.eval_both(x);
            assert!((tv - cv).abs() < 1e-9, "value mismatch at {x}");
            assert!((td - cd).abs() < 1e-5, "deriv mismatch at {x}");
        }
    }

    #[test]
    fn boundary_stencils_reasonable() {
        let f = |x: f64| x.exp();
        let t = CompactTable::build(f, 0.0, 1.0, 100);
        // First and last segments still approximate well.
        let (v, d) = t.eval_both(0.003);
        assert!((v - f(0.003)).abs() < 1e-6);
        assert!((d - f(0.003)).abs() < 1e-3);
        let (v, d) = t.eval_both(0.997);
        assert!((v - f(0.997)).abs() < 1e-6);
        assert!((d - f(0.997)).abs() < 1e-3);
    }

    #[test]
    fn clamps_outside_range() {
        let t = CompactTable::build(|x| x, 1.0, 2.0, 64);
        assert!((t.eval(0.5) - 1.0).abs() < 1e-9);
        assert!((t.eval(3.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fused_eval2_is_bitwise_two_lookups() {
        let fa = |x: f64| (1.1 * x).sin() + 0.2 * x;
        let fb = |x: f64| (-0.3 * x).exp() * x;
        let a = CompactTable::build(fa, 1.0, 5.0, 777);
        let b = CompactTable::build(fb, 1.0, 5.0, 777);
        for i in 0..400 {
            let x = 0.8 + i as f64 * 0.0115; // includes the clamp regions
            let (va, da, vb, db) = a.eval2(&b, x);
            let (va1, da1) = a.eval_both(x);
            let (vb1, db1) = b.eval_both(x);
            assert_eq!(va, va1, "fused value a at {x}");
            assert_eq!(da, da1, "fused deriv a at {x}");
            assert_eq!(vb, vb1, "fused value b at {x}");
            assert_eq!(db, db1, "fused deriv b at {x}");
        }
    }

    #[test]
    fn batch_kernels_are_bitwise_scalar_at_every_length() {
        let fa = |x: f64| (1.1 * x).sin() + 0.2 * x;
        let fb = |x: f64| (-0.3 * x).exp() * x;
        let a = CompactTable::build(fa, 1.0, 5.0, 777);
        let b = CompactTable::build(fb, 1.0, 5.0, 777);
        for len in [0, 1, BATCH_LANES - 1, BATCH_LANES, BATCH_LANES + 1, 37] {
            let xs: Vec<f64> = (0..len).map(|i| 0.8 + i as f64 * 0.13).collect();
            let mut va = vec![0.0; len];
            let mut da = vec![0.0; len];
            let mut vb = vec![0.0; len];
            let mut db = vec![0.0; len];
            a.eval2_batch(&b, &xs, &mut va, &mut da, &mut vb, &mut db);
            let mut vals = vec![0.0; len];
            a.eval_values_batch(&xs, &mut vals);
            let mut v1 = vec![0.0; len];
            let mut d1 = vec![0.0; len];
            CompactTable::eval_batch_slice(&a.values, a.x0, a.dx, &xs, &mut v1, &mut d1);
            for (j, &x) in xs.iter().enumerate() {
                let (sva, sda, svb, sdb) = a.eval2(&b, x);
                assert_eq!(va[j], sva, "len {len} lane {j}");
                assert_eq!(da[j], sda, "len {len} lane {j}");
                assert_eq!(vb[j], svb, "len {len} lane {j}");
                assert_eq!(db[j], sdb, "len {len} lane {j}");
                assert_eq!(vals[j], a.eval(x), "len {len} lane {j}");
                assert_eq!(v1[j], a.eval(x));
                assert_eq!(d1[j], a.eval_deriv(x));
            }
        }
    }

    #[test]
    fn eval_slice_matches_owned() {
        let t = CompactTable::build(|x| x * x, 0.0, 3.0, 128);
        let (v1, d1) = t.eval_both(1.718);
        let (v2, d2) = CompactTable::eval_slice(&t.values, t.x0, t.dx, 1.718);
        assert_eq!(v1, v2);
        assert_eq!(d1, d2);
    }
}
