//! Analytic EAM functional forms.
//!
//! The paper uses a fitted Fe EAM potential (Daw & Baskes form \[4\]) that
//! we do not have. These analytic substitutes — Morse pair term,
//! exponential electron density, Finnis–Sinclair-style embedding with a
//! quadratic correction — are smooth, short-ranged and attract atoms to
//! the BCC lattice, which is all the paper's *scaling* machinery needs.
//! All functions and their first derivatives are C¹ thanks to a quintic
//! switching window `[r_switch, r_cut]`.

use serde::{Deserialize, Serialize};

/// Atomic species supported by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Species {
    /// Iron (the paper's main material).
    Fe,
    /// Copper (for the Fe–Cu alloy path of §2.1.2).
    Cu,
}

impl Species {
    /// Atomic mass in amu.
    pub fn mass(&self) -> f64 {
        match self {
            Species::Fe => crate::units::MASS_FE,
            Species::Cu => crate::units::MASS_CU,
        }
    }

    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Species::Fe => "Fe",
            Species::Cu => "Cu",
        }
    }
}

/// Quintic switching function: 1 at `x=0`, 0 at `x=1`, with zero first
/// and second derivatives at both ends.
fn switch(x: f64) -> f64 {
    if x <= 0.0 {
        1.0
    } else if x >= 1.0 {
        0.0
    } else {
        1.0 - x * x * x * (10.0 - 15.0 * x + 6.0 * x * x)
    }
}

/// Derivative of [`switch`] with respect to `x`.
fn dswitch(x: f64) -> f64 {
    if x <= 0.0 || x >= 1.0 {
        0.0
    } else {
        -30.0 * x * x * (1.0 - x) * (1.0 - x)
    }
}

/// One species' (or species pair's) analytic EAM parameter set.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AnalyticEam {
    /// Morse well depth D (eV).
    pub d: f64,
    /// Morse width α (1/Å).
    pub alpha: f64,
    /// Morse equilibrium distance r₀ (Å).
    pub r0: f64,
    /// Density amplitude f_e.
    pub fe: f64,
    /// Density decay β (1/Å).
    pub beta: f64,
    /// Density reference radius (Å).
    pub rd: f64,
    /// Embedding √-term coefficient A (eV): F(ρ) = −A√ρ + B·ρ².
    pub embed_a: f64,
    /// Embedding quadratic coefficient B (eV).
    pub embed_b: f64,
    /// Switching window start (Å).
    pub r_switch: f64,
    /// Cutoff radius (Å).
    pub r_cut: f64,
}

impl AnalyticEam {
    /// Iron parameters (BCC, a₀ = 2.855 Å, 1NN = 2.472 Å).
    pub fn fe() -> Self {
        Self {
            d: 0.42,
            alpha: 1.42,
            r0: 2.55,
            fe: 1.0,
            beta: 1.8,
            rd: 2.4724,
            embed_a: 1.85,
            embed_b: 0.006,
            r_switch: 4.1,
            r_cut: 5.0,
        }
    }

    /// Copper parameters (as a substitutional solute on the BCC grid).
    ///
    /// Density and embedding match iron's: in this simplified alloy
    /// model the chemical difference is carried entirely by the pair
    /// term (an Ising-on-EAM picture). This keeps vacancy–Cu binding
    /// mildly *attractive* (~0.1 eV, as in real Fe–Cu, where vacancies
    /// are the solute transport vehicle) while the scaled mixed pair
    /// term provides the positive heat of mixing that drives
    /// precipitation.
    pub fn cu() -> Self {
        let fe = Self::fe();
        Self {
            d: 0.36,
            alpha: 1.35,
            r0: 2.60,
            fe: fe.fe,
            beta: fe.beta,
            rd: fe.rd,
            embed_a: fe.embed_a,
            embed_b: fe.embed_b,
            r_switch: 4.1,
            r_cut: 5.0,
        }
    }

    /// Mixed Fe–Cu pair interaction: Lorentz–Berthelot mixing with the
    /// well depth scaled by 0.85 to give the **positive heat of mixing**
    /// that real Fe–Cu has — the thermodynamic driver of Cu
    /// precipitation in α-Fe (Castin et al. \[2\], the paper's source for
    /// the time-rescaling formula).
    pub fn fe_cu() -> Self {
        let fe = Self::fe();
        let cu = Self::cu();
        Self {
            d: 0.85 * (fe.d * cu.d).sqrt(),
            alpha: 0.5 * (fe.alpha + cu.alpha),
            r0: 0.5 * (fe.r0 + cu.r0),
            fe: (fe.fe * cu.fe).sqrt(),
            beta: 0.5 * (fe.beta + cu.beta),
            rd: 0.5 * (fe.rd + cu.rd),
            embed_a: 0.5 * (fe.embed_a + cu.embed_a),
            embed_b: 0.5 * (fe.embed_b + cu.embed_b),
            r_switch: 4.1,
            r_cut: 5.0,
        }
    }

    /// Parameters for a species pair.
    pub fn for_pair(a: Species, b: Species) -> Self {
        match (a, b) {
            (Species::Fe, Species::Fe) => Self::fe(),
            (Species::Cu, Species::Cu) => Self::cu(),
            _ => Self::fe_cu(),
        }
    }

    fn sw(&self, r: f64) -> f64 {
        switch((r - self.r_switch) / (self.r_cut - self.r_switch))
    }

    fn dsw(&self, r: f64) -> f64 {
        dswitch((r - self.r_switch) / (self.r_cut - self.r_switch)) / (self.r_cut - self.r_switch)
    }

    /// Pair potential φ(r) (eV).
    pub fn phi(&self, r: f64) -> f64 {
        if r >= self.r_cut {
            return 0.0;
        }
        let e = (-self.alpha * (r - self.r0)).exp();
        self.d * (e * e - 2.0 * e) * self.sw(r)
    }

    /// dφ/dr (eV/Å).
    pub fn dphi(&self, r: f64) -> f64 {
        if r >= self.r_cut {
            return 0.0;
        }
        let e = (-self.alpha * (r - self.r0)).exp();
        let raw = self.d * (e * e - 2.0 * e);
        let draw = self.d * (-2.0 * self.alpha) * (e * e - e);
        draw * self.sw(r) + raw * self.dsw(r)
    }

    /// Electron density contribution f(r).
    pub fn density(&self, r: f64) -> f64 {
        if r >= self.r_cut {
            return 0.0;
        }
        self.fe * (-self.beta * (r - self.rd)).exp() * self.sw(r)
    }

    /// df/dr.
    pub fn ddensity(&self, r: f64) -> f64 {
        if r >= self.r_cut {
            return 0.0;
        }
        let raw = self.fe * (-self.beta * (r - self.rd)).exp();
        -self.beta * raw * self.sw(r) + raw * self.dsw(r)
    }

    /// Embedding energy F(ρ) (eV).
    pub fn embed(&self, rho: f64) -> f64 {
        debug_assert!(rho >= 0.0, "negative electron density");
        -self.embed_a * rho.sqrt() + self.embed_b * rho * rho
    }

    /// dF/dρ.
    pub fn dembed(&self, rho: f64) -> f64 {
        if rho <= 0.0 {
            // F'(0⁺) diverges; clamp like production EAM codes do.
            return 0.0;
        }
        -0.5 * self.embed_a / rho.sqrt() + 2.0 * self.embed_b * rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_derivative(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn switching_endpoints() {
        assert_eq!(switch(-0.1), 1.0);
        assert_eq!(switch(0.0), 1.0);
        assert_eq!(switch(1.0), 0.0);
        assert_eq!(switch(1.1), 0.0);
        assert!((switch(0.5) - 0.5).abs() < 1e-12);
        assert!(dswitch(0.0).abs() < 1e-12);
        assert!(dswitch(1.0).abs() < 1e-12);
    }

    #[test]
    fn phi_vanishes_at_cutoff() {
        let p = AnalyticEam::fe();
        assert_eq!(p.phi(p.r_cut), 0.0);
        assert_eq!(p.phi(p.r_cut + 1.0), 0.0);
        assert!(p.phi(p.r_cut - 1e-4).abs() < 1e-6, "C¹ approach to zero");
    }

    #[test]
    fn phi_has_attractive_well() {
        let p = AnalyticEam::fe();
        // Minimum near r0, negative there, strongly repulsive at short r.
        assert!(p.phi(p.r0) < 0.0);
        assert!(p.phi(1.6) > 0.0);
        assert!(p.phi(p.r0) < p.phi(p.r0 + 0.5));
        assert!(p.phi(p.r0) < p.phi(p.r0 - 0.4));
    }

    #[test]
    fn derivatives_match_numeric() {
        let p = AnalyticEam::fe();
        for &r in &[1.9, 2.2, 2.4724, 2.855, 3.5, 4.3, 4.8] {
            let nd = numeric_derivative(|x| p.phi(x), r);
            assert!(
                (p.dphi(r) - nd).abs() < 1e-5,
                "dphi at {r}: {} vs {nd}",
                p.dphi(r)
            );
            let nf = numeric_derivative(|x| p.density(x), r);
            assert!(
                (p.ddensity(r) - nf).abs() < 1e-5,
                "ddensity at {r}: {} vs {nf}",
                p.ddensity(r)
            );
        }
        for &rho in &[0.5, 1.0, 3.0, 8.0] {
            let ne = numeric_derivative(|x| p.embed(x), rho);
            assert!((p.dembed(rho) - ne).abs() < 1e-6);
        }
    }

    #[test]
    fn density_positive_and_decaying() {
        let p = AnalyticEam::fe();
        assert!(p.density(2.0) > p.density(3.0));
        assert!(p.density(3.0) > p.density(4.5));
        assert!(p.density(4.5) > 0.0);
        assert_eq!(p.density(5.5), 0.0);
    }

    #[test]
    fn embedding_has_minimum_at_positive_rho() {
        let p = AnalyticEam::fe();
        // F'(ρ*) = 0 at ρ* = (A/4B)^{2/3}; F decreasing before, increasing after.
        let rho_star = (p.embed_a / (4.0 * p.embed_b)).powf(2.0 / 3.0);
        assert!(p.dembed(rho_star * 0.5) < 0.0);
        assert!(p.dembed(rho_star * 2.0) > 0.0);
        assert!(p.dembed(rho_star).abs() < 1e-9);
    }

    #[test]
    fn mixing_has_positive_heat_of_mixing() {
        // Fe–Cu demixes: the mixed bond is weaker than both pure bonds,
        // so 2·E(FeCu) > E(FeFe) + E(CuCu) (pair energies are negative).
        let fe = AnalyticEam::fe();
        let cu = AnalyticEam::cu();
        let mix = AnalyticEam::fe_cu();
        assert!(mix.d < cu.d.min(fe.d), "mixed well must be the shallowest");
        let r = 2.5;
        assert!(2.0 * mix.phi(r) > fe.phi(r) + cu.phi(r));
        assert_eq!(
            AnalyticEam::for_pair(Species::Fe, Species::Cu).d,
            AnalyticEam::for_pair(Species::Cu, Species::Fe).d
        );
    }

    #[test]
    fn species_metadata() {
        assert_eq!(Species::Fe.name(), "Fe");
        assert!(Species::Cu.mass() > Species::Fe.mass());
    }
}
