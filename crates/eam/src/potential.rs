//! A complete single-species EAM potential with all three table forms.
//!
//! Both MD and KMC access the potential exclusively through the three
//! interpolation tables (pair, density, embedding — §2.1.2); the
//! analytic functions exist only to *generate* the tables and for
//! accuracy tests.

use serde::{Deserialize, Serialize};

use crate::analytic::{AnalyticEam, Species};
use crate::compact::CompactTable;
use crate::spline::{TraditionalTable, PAPER_TABLE_N};

/// Which table machinery evaluates the potential — the Fig. 9 ablation
/// axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableForm {
    /// 5000×7 coefficient rows; too large for the CPE local store, so a
    /// CPE pays one DMA row-fetch per neighbour per table.
    Traditional,
    /// 5000 sample values; local-store resident, coefficients
    /// reconstructed on the fly.
    Compacted,
}

/// The three tables of one species (or species pair): pair potential
/// φ(r), electron density f(r), and embedding F(ρ).
#[derive(Debug, Clone)]
pub struct EamPotential {
    /// Which species this parameterisation describes.
    pub species: Species,
    /// Analytic source functions.
    pub analytic: AnalyticEam,
    /// Traditional tables: `[pair, density, embedding]`.
    pub trad_pair: TraditionalTable,
    /// Traditional electron-density table.
    pub trad_density: TraditionalTable,
    /// Traditional embedding table (domain is ρ, not r).
    pub trad_embed: TraditionalTable,
    /// Compacted pair table.
    pub comp_pair: CompactTable,
    /// Compacted density table.
    pub comp_density: CompactTable,
    /// Compacted embedding table.
    pub comp_embed: CompactTable,
}

/// Inner edge of the tabulated r-domain (Å); below this the potential is
/// clamped (standard practice — cascades rarely probe r < 1 Å at the
/// energies we scale to).
pub const R_MIN: f64 = 1.0;

/// Upper edge of the tabulated ρ-domain; generous multiple of the
/// equilibrium BCC density.
pub const RHO_MAX: f64 = 60.0;

impl EamPotential {
    /// Builds the full table set for `species` with `n` knots per table.
    pub fn new(species: Species, n: usize) -> Self {
        let analytic = match species {
            Species::Fe => AnalyticEam::fe(),
            Species::Cu => AnalyticEam::cu(),
        };
        Self::from_analytic(species, analytic, n)
    }

    /// Builds the paper-sized (5000-knot) Fe potential.
    pub fn fe() -> Self {
        Self::new(Species::Fe, PAPER_TABLE_N)
    }

    /// Builds tables from an explicit analytic parameter set (used for
    /// mixed Fe–Cu pair tables too).
    pub fn from_analytic(species: Species, analytic: AnalyticEam, n: usize) -> Self {
        let rc = analytic.r_cut;
        Self {
            species,
            analytic,
            trad_pair: TraditionalTable::build(|r| analytic.phi(r), R_MIN, rc, n),
            trad_density: TraditionalTable::build(|r| analytic.density(r), R_MIN, rc, n),
            trad_embed: TraditionalTable::build(|rho| analytic.embed(rho), 0.0, RHO_MAX, n),
            comp_pair: CompactTable::build(|r| analytic.phi(r), R_MIN, rc, n),
            comp_density: CompactTable::build(|r| analytic.density(r), R_MIN, rc, n),
            comp_embed: CompactTable::build(|rho| analytic.embed(rho), 0.0, RHO_MAX, n),
        }
    }

    /// Cutoff radius (Å).
    pub fn cutoff(&self) -> f64 {
        self.analytic.r_cut
    }

    /// φ(r) and φ'(r) via the chosen table form.
    #[inline]
    pub fn pair(&self, form: TableForm, r: f64) -> (f64, f64) {
        match form {
            TableForm::Traditional => self.trad_pair.eval_both(r),
            TableForm::Compacted => self.comp_pair.eval_both(r),
        }
    }

    /// f(r) and f'(r) via the chosen table form.
    #[inline]
    pub fn density(&self, form: TableForm, r: f64) -> (f64, f64) {
        match form {
            TableForm::Traditional => self.trad_density.eval_both(r),
            TableForm::Compacted => self.comp_density.eval_both(r),
        }
    }

    /// F(ρ) and F'(ρ) via the chosen table form. Already a fused
    /// single-locate access: one locate yields both the value and the
    /// derivative of the embedding table.
    #[inline]
    pub fn embed(&self, form: TableForm, rho: f64) -> (f64, f64) {
        match form {
            TableForm::Traditional => self.trad_embed.eval_both(rho),
            TableForm::Compacted => self.comp_embed.eval_both(rho),
        }
    }

    /// Fused φ/f lookup: `(φ(r), φ'(r), f(r), f'(r))` from **one**
    /// segment locate (and, in compacted form, one shared Hermite
    /// basis) serving both r-indexed tables — the pair and density
    /// tables are sampled on the same knot grid, so the force pass
    /// never needs the two independent locates the separate
    /// [`EamPotential::pair`] + [`EamPotential::density`] calls pay.
    /// Results are bit-identical to the separate calls.
    #[inline]
    pub fn pair_density(&self, form: TableForm, r: f64) -> (f64, f64, f64, f64) {
        match form {
            TableForm::Traditional => self.trad_pair.eval2(&self.trad_density, r),
            TableForm::Compacted => self.comp_pair.eval2(&self.comp_density, r),
        }
    }

    /// Batched fused φ/f lookup: the batch counterpart of
    /// [`EamPotential::pair_density`] — the table-form dispatch and the
    /// table pair are resolved **once per batch** instead of once per
    /// neighbour, then the whole batch runs through the SoA lane
    /// kernels ([`CompactTable::eval2_batch`] /
    /// [`TraditionalTable::eval2_batch`]). Output streams are bitwise
    /// identical to per-element `pair_density` calls at every length,
    /// ragged tails included.
    #[inline]
    pub fn pair_density_batch(
        &self,
        form: TableForm,
        rs: &[f64],
        phi: &mut [f64],
        dphi: &mut [f64],
        f: &mut [f64],
        df: &mut [f64],
    ) {
        match form {
            TableForm::Traditional => {
                self.trad_pair
                    .eval2_batch(&self.trad_density, rs, phi, dphi, f, df)
            }
            TableForm::Compacted => {
                self.comp_pair
                    .eval2_batch(&self.comp_density, rs, phi, dphi, f, df)
            }
        }
    }

    /// Batched value-only density lookup: `out[j] = f(rs[j])`, bitwise
    /// identical to the value half of [`EamPotential::density`] — the ρ
    /// accumulation never reads f'(r), so the batched density pass
    /// skips the derivative combine.
    #[inline]
    pub fn density_values_batch(&self, form: TableForm, rs: &[f64], out: &mut [f64]) {
        match form {
            TableForm::Traditional => self.trad_density.eval_values_batch(rs, out),
            TableForm::Compacted => self.comp_density.eval_values_batch(rs, out),
        }
    }

    /// Total bytes of the three tables in the given form — what a CPE
    /// would need to hold them resident.
    pub fn table_bytes(&self, form: TableForm) -> usize {
        match form {
            TableForm::Traditional => {
                self.trad_pair.memory_bytes()
                    + self.trad_density.memory_bytes()
                    + self.trad_embed.memory_bytes()
            }
            TableForm::Compacted => {
                self.comp_pair.memory_bytes()
                    + self.comp_density.memory_bytes()
                    + self.comp_embed.memory_bytes()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe_small() -> EamPotential {
        EamPotential::new(Species::Fe, 1200)
    }

    #[test]
    fn tables_match_analytic() {
        let p = fe_small();
        for i in 0..60 {
            let r = 1.2 + i as f64 * 0.06;
            let (phi_t, dphi_t) = p.pair(TableForm::Traditional, r);
            let (phi_c, dphi_c) = p.pair(TableForm::Compacted, r);
            assert!((phi_t - p.analytic.phi(r)).abs() < 1e-6, "trad phi at {r}");
            assert!((phi_c - p.analytic.phi(r)).abs() < 1e-6, "comp phi at {r}");
            assert!((dphi_t - p.analytic.dphi(r)).abs() < 1e-3);
            assert!((dphi_c - p.analytic.dphi(r)).abs() < 1e-3);
        }
    }

    #[test]
    fn forms_agree_with_each_other_tightly() {
        let p = fe_small();
        for i in 0..200 {
            let r = 1.05 + i as f64 * 0.019;
            let (vt, dt) = p.density(TableForm::Traditional, r);
            let (vc, dc) = p.density(TableForm::Compacted, r);
            assert!((vt - vc).abs() < 1e-7, "density value at {r}");
            assert!((dt - dc).abs() < 1e-4, "density deriv at {r}");
        }
    }

    #[test]
    fn embedding_domain_covers_bcc_density() {
        let p = fe_small();
        // Equilibrium BCC Fe: 8 1NN + 6 2NN contributions.
        let a = p.analytic;
        let rho_eq = 8.0 * a.density(2.4724) + 6.0 * a.density(2.855);
        assert!(rho_eq < RHO_MAX / 2.0, "rho_eq = {rho_eq}");
        let (f_val, _) = p.embed(TableForm::Compacted, rho_eq);
        assert!((f_val - a.embed(rho_eq)).abs() < 1e-6);
    }

    #[test]
    fn paper_sized_table_budget() {
        let p = EamPotential::fe();
        let ldm = mmds_sunway::SwModel::sw26010().ldm_bytes;
        // Traditional: 3 × 273 KiB ≫ 64 KB; compacted: 3 × 39 KiB ≈ 117 KiB
        // (only the r-indexed pair+density tables plus embedding — the
        // paper loads the compacted tables of ONE element, 39 KB each, and
        // our MD kernel stages them one at a time or merged; see md::offload).
        assert!(p.table_bytes(TableForm::Traditional) > 3 * ldm);
        assert_eq!(p.table_bytes(TableForm::Compacted), 3 * 40_000);
    }

    #[test]
    fn cutoff_reported() {
        assert_eq!(EamPotential::fe().cutoff(), 5.0);
    }
}
