//! Property tests for the skeleton IR's rank-expression matching:
//! the symbolic rule (`recv_from == -send_to`) must agree with
//! brute-force enumeration over concrete decompositions.

use mmds_swmpi::skeleton::{
    concrete_match, match_closure, neg, simulate, symbolic_match, ByteSpec, CommPlan, SkelOp,
};
use mmds_swmpi::CartGrid;
use proptest::prelude::*;

/// The decompositions the paper's runs (and our tests) actually use,
/// plus deliberately non-cubic ones.
fn grids() -> Vec<CartGrid> {
    let mut g: Vec<CartGrid> = [1usize, 2, 8, 27, 64]
        .iter()
        .map(|&p| CartGrid::for_ranks(p))
        .collect();
    g.push(CartGrid::new([4, 2, 1]));
    g.push(CartGrid::new([1, 3, 5]));
    g.push(CartGrid::new([6, 2, 2]));
    g
}

proptest! {
    /// Soundness: a symbolic match is a concrete match on EVERY
    /// decomposition — periodic wrap can alias extra offsets onto the
    /// same peer but can never unmatch `neighbor(neighbor(r, d), -d)`.
    #[test]
    fn symbolic_match_holds_on_every_grid(
        dt in (-1i64..2, -1i64..2, -1i64..2),
        et in (-1i64..2, -1i64..2, -1i64..2),
    ) {
        let d = [dt.0, dt.1, dt.2];
        let e = [et.0, et.1, et.2];
        if symbolic_match(d, e) {
            for grid in grids() {
                prop_assert!(
                    concrete_match(&grid, d, e),
                    "symbolic match broken on dims {:?}", grid.dims
                );
            }
        }
    }

    /// Completeness: on a grid with >= 3 ranks per axis there is no
    /// aliasing for single-cell offsets, so the brute-force check
    /// agrees with the symbolic rule exactly.
    #[test]
    fn no_aliasing_at_three_or_more_per_axis(
        dt in (-1i64..2, -1i64..2, -1i64..2),
        et in (-1i64..2, -1i64..2, -1i64..2),
    ) {
        let d = [dt.0, dt.1, dt.2];
        let e = [et.0, et.1, et.2];
        let grid = CartGrid::for_ranks(27);
        prop_assert_eq!(grid.dims, [3, 3, 3]);
        prop_assert_eq!(symbolic_match(d, e), concrete_match(&grid, d, e));
        let wide = CartGrid::new([4, 3, 5]);
        prop_assert_eq!(symbolic_match(d, e), concrete_match(&wide, d, e));
    }

    /// Aliasing only ever ADDS concrete matches on smaller grids: if
    /// the brute-force check fails anywhere, the symbolic rule must
    /// have rejected the pair too.
    #[test]
    fn concrete_mismatch_implies_symbolic_mismatch(
        dt in (-1i64..2, -1i64..2, -1i64..2),
        et in (-1i64..2, -1i64..2, -1i64..2),
    ) {
        let d = [dt.0, dt.1, dt.2];
        let e = [et.0, et.1, et.2];
        for grid in grids() {
            if !concrete_match(&grid, d, e) {
                prop_assert!(!symbolic_match(d, e));
            }
        }
    }

    /// A symbolically match-closed single-direction exchange completes
    /// (and drains) under lock-step execution on every decomposition;
    /// a symbolically orphaned send leaves undelivered messages on
    /// every decomposition — even when the offset self-aliases back
    /// onto the sender, nobody ever posts the recv.
    #[test]
    fn closure_verdict_agrees_with_lockstep(
        dt in (-1i64..2, -1i64..2, -1i64..2),
        paired in any::<bool>(),
    ) {
        let d = if dt == (0, 0, 0) {
            [1i64, 0, 0] // recanonicalise the one excluded offset
        } else {
            [dt.0, dt.1, dt.2]
        };
        let mut ops = vec![SkelOp::Send { to: d, bytes: ByteSpec::Exact(16) }];
        if paired {
            ops.push(SkelOp::Recv { from: neg(d), bytes: ByteSpec::Exact(16) });
        }
        let plan = CommPlan::new("prop.closure", "props.rs", ops, "");
        let symbolically_closed = match_closure(&plan).is_empty();
        prop_assert_eq!(symbolically_closed, paired);
        for grid in grids() {
            let sim = simulate(&plan, &grid, 2);
            if symbolically_closed {
                prop_assert!(sim.is_ok(), "closed plan must complete on {:?}", grid.dims);
            } else {
                prop_assert!(sim.is_err(), "orphan send must strand on {:?}", grid.dims);
            }
        }
    }
}
