//! Cartesian process topology and domain decomposition.
//!
//! Both MD and KMC use "standard domain decomposition to equally
//! partition the simulation box" (§2): ranks form a 3-D grid, each owns a
//! box-shaped subdomain, and ghost exchange pairs each rank with its 6
//! face neighbours (or up to 26 with corners, which the KMC sector logic
//! needs).

use serde::{Deserialize, Serialize};

use crate::Rank;

/// A 3-D Cartesian grid of ranks with periodic boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CartGrid {
    /// Ranks along each axis.
    pub dims: [usize; 3],
}

impl CartGrid {
    /// Builds a grid with explicit dimensions.
    pub fn new(dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "grid dims must be positive");
        Self { dims }
    }

    /// Factorises `p` into a near-cubic 3-D grid (like
    /// `MPI_Dims_create`): dims are non-increasing and their product is
    /// exactly `p`.
    pub fn for_ranks(p: usize) -> Self {
        assert!(p > 0);
        let mut best = [p, 1, 1];
        let mut best_score = usize::MAX;
        let mut a = 1;
        while a * a * a <= p {
            if p.is_multiple_of(a) {
                let q = p / a;
                let mut b = a;
                while b * b <= q {
                    if q.is_multiple_of(b) {
                        let c = q / b;
                        // surface-to-volume proxy: minimise sum of dims
                        let score = a + b + c;
                        if score < best_score {
                            best_score = score;
                            best = [c, b, a];
                        }
                    }
                    b += 1;
                }
            }
            a += 1;
        }
        Self::new(best)
    }

    /// Total number of ranks.
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// True only for the degenerate 1-rank grid.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Converts a rank to grid coordinates (x fastest).
    pub fn coords(&self, rank: Rank) -> [usize; 3] {
        assert!(rank < self.len(), "rank {rank} outside grid");
        let x = rank % self.dims[0];
        let y = (rank / self.dims[0]) % self.dims[1];
        let z = rank / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Converts grid coordinates to a rank.
    pub fn rank_of(&self, c: [usize; 3]) -> Rank {
        debug_assert!(c[0] < self.dims[0] && c[1] < self.dims[1] && c[2] < self.dims[2]);
        c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])
    }

    /// The rank at offset `d` (each component in `-1..=1`, periodic wrap)
    /// from `rank`.
    pub fn neighbor(&self, rank: Rank, d: [i64; 3]) -> Rank {
        let c = self.coords(rank);
        let mut n = [0usize; 3];
        for i in 0..3 {
            let dim = self.dims[i] as i64;
            n[i] = ((c[i] as i64 + d[i]).rem_euclid(dim)) as usize;
        }
        self.rank_of(n)
    }

    /// The 6 face neighbours in fixed order: -x, +x, -y, +y, -z, +z.
    pub fn face_neighbors(&self, rank: Rank) -> [Rank; 6] {
        [
            self.neighbor(rank, [-1, 0, 0]),
            self.neighbor(rank, [1, 0, 0]),
            self.neighbor(rank, [0, -1, 0]),
            self.neighbor(rank, [0, 1, 0]),
            self.neighbor(rank, [0, 0, -1]),
            self.neighbor(rank, [0, 0, 1]),
        ]
    }

    /// All 26 surrounding offsets (excluding `[0,0,0]`), in a fixed
    /// deterministic order.
    pub fn halo_offsets() -> Vec<[i64; 3]> {
        let mut out = Vec::with_capacity(26);
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    if (dx, dy, dz) != (0, 0, 0) {
                        out.push([dx, dy, dz]);
                    }
                }
            }
        }
        out
    }

    /// Splits a global extent of `cells` along axis `axis` into this
    /// grid's `dims[axis]` contiguous chunks; returns `(start, len)` for
    /// chunk `idx`. Remainder cells go to the lowest-index chunks.
    pub fn split_extent(&self, cells: usize, axis: usize, idx: usize) -> (usize, usize) {
        let parts = self.dims[axis];
        assert!(idx < parts);
        let base = cells / parts;
        let rem = cells % parts;
        let len = base + usize::from(idx < rem);
        let start = idx * base + idx.min(rem);
        (start, len)
    }

    /// The subdomain of `rank` in a global grid of `cells` per axis:
    /// `([start; 3], [len; 3])`.
    pub fn subdomain(&self, cells: [usize; 3], rank: Rank) -> ([usize; 3], [usize; 3]) {
        let c = self.coords(rank);
        let mut start = [0; 3];
        let mut len = [0; 3];
        for axis in 0..3 {
            let (s, l) = self.split_extent(cells[axis], axis, c[axis]);
            start[axis] = s;
            len[axis] = l;
        }
        (start, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorisation_is_exact_and_balanced() {
        for p in [1, 2, 3, 4, 6, 8, 12, 16, 27, 64, 100, 128, 1024] {
            let g = CartGrid::for_ranks(p);
            assert_eq!(g.len(), p, "product must equal p for p={p}");
        }
        assert_eq!(CartGrid::for_ranks(8).dims, [2, 2, 2]);
        assert_eq!(CartGrid::for_ranks(64).dims, [4, 4, 4]);
        let g = CartGrid::for_ranks(12).dims;
        assert_eq!(g[0] * g[1] * g[2], 12);
        assert!(g[0] <= 3 + 1); // near-cubic: 3,2,2
    }

    #[test]
    fn coords_rank_round_trip() {
        let g = CartGrid::new([3, 4, 5]);
        for r in 0..g.len() {
            assert_eq!(g.rank_of(g.coords(r)), r);
        }
    }

    #[test]
    fn periodic_neighbors() {
        let g = CartGrid::new([3, 1, 1]);
        assert_eq!(g.neighbor(0, [-1, 0, 0]), 2);
        assert_eq!(g.neighbor(2, [1, 0, 0]), 0);
        let f = g.face_neighbors(1);
        assert_eq!(f[0], 0);
        assert_eq!(f[1], 2);
        // y/z wrap to self in a 1-deep axis.
        assert_eq!(f[2], 1);
        assert_eq!(f[5], 1);
    }

    #[test]
    fn split_extent_covers_everything() {
        let g = CartGrid::new([4, 1, 1]);
        let mut covered = 0;
        let mut next = 0;
        for i in 0..4 {
            let (s, l) = g.split_extent(10, 0, i);
            assert_eq!(s, next);
            next = s + l;
            covered += l;
        }
        assert_eq!(covered, 10);
        // Remainder goes to low indices: 3,3,2,2.
        assert_eq!(g.split_extent(10, 0, 0).1, 3);
        assert_eq!(g.split_extent(10, 0, 3).1, 2);
    }

    #[test]
    fn subdomains_partition_box() {
        let g = CartGrid::for_ranks(8);
        let cells = [10, 9, 7];
        let mut total = 0;
        for r in 0..8 {
            let (_, len) = g.subdomain(cells, r);
            total += len[0] * len[1] * len[2];
        }
        assert_eq!(total, 10 * 9 * 7);
    }

    #[test]
    fn halo_offsets_has_26_unique() {
        let offs = CartGrid::halo_offsets();
        assert_eq!(offs.len(), 26);
        let mut s = offs.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), 26);
    }
}
