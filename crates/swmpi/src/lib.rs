//! # mmds-swmpi — in-process message-passing substrate
//!
//! A from-scratch "simulated MPI" used by the MMDS reproduction of
//! *Massively Scaling the Metal Microscopic Damage Simulation on Sunway
//! TaihuLight Supercomputer* (Li et al., ICPP 2018).
//!
//! The paper runs its MD and KMC engines over MPI on up to 6.6 million
//! cores. We have neither the machine nor its toolchain, so this crate
//! provides the closest substitute that exercises the same code paths:
//!
//! * **Ranks are OS threads** spawned by [`World::run`]; each receives a
//!   [`Comm`] handle.
//! * **Two-sided primitives** with MPI semantics: [`Comm::send`],
//!   [`Comm::recv`], tag matching, [`Comm::probe`] /
//!   [`Comm::try_probe_any`] (needed by the paper's on-demand KMC
//!   communication, §2.2.1).
//! * **Collectives**: barrier, allreduce, allgather — all of which also
//!   synchronise the per-rank *virtual clocks*.
//! * **One-sided windows** ([`onesided::WindowHub`]): put + fence, the
//!   paper's alternative implementation of on-demand communication that
//!   avoids zero-size messages.
//! * **Accounting**: every message updates [`stats::CommStats`]
//!   (bytes/messages — exact, machine-independent) and advances a
//!   per-rank virtual clock through a LogP-style [`model::MachineModel`]
//!   (time — modelled, calibrated to TaihuLight-like constants).
//! * **Pairwise tracing** ([`matrix::CommMatrix`]): every rank also
//!   records *who* it talked to — the src→dst message/byte matrix that
//!   [`matrix::WorldMatrix`] assembles and validates for pairwise
//!   send/recv symmetry.
//! * **Declared skeletons** ([`skeleton::CommPlan`]): each exchange
//!   phase declares its symbolic op sequence over rank expressions;
//!   match closure, deadlock freedom and fence enclosure are proven
//!   for all P and reconciled against traced runs by `mmds-audit`.
//!
//! Communication *volume* results (paper Fig. 12) read the exact counters;
//! communication *time* results (Figs. 10–16) read the virtual clocks, and
//! `EXPERIMENTS.md` documents that substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod mailbox;
pub mod matrix;
pub mod model;
pub mod onesided;
pub mod skeleton;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod wire;
pub mod world;

pub use comm::Comm;
pub use matrix::{CommMatrix, PairFlow, WorldMatrix};
pub use model::MachineModel;
pub use skeleton::{ByteSpec, CommPlan, SkelOp, SkelViolation};
pub use stats::{CommStats, ExchangeSavings};
pub use topology::CartGrid;
pub use trace::{CommEvent, CommOp, CommTracer};
pub use wire::{Packer, Unpacker, Wire};
pub use world::{World, WorldConfig};

/// A message tag, used for matching as in MPI.
pub type Tag = u32;

/// A rank identifier within a [`World`].
pub type Rank = usize;
