//! Per-rank communication and computation accounting.
//!
//! Byte and message counts are *exact* — they are what Fig. 12
//! (communication volume) reports. Times are virtual-clock charges from
//! [`crate::model::MachineModel`].

use serde::{Deserialize, Serialize};

/// Counters accumulated by one rank over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Point-to-point payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub msgs_recv: u64,
    /// Point-to-point payload bytes received.
    pub bytes_recv: u64,
    /// One-sided put operations issued.
    pub puts: u64,
    /// One-sided payload bytes put.
    pub bytes_put: u64,
    /// Collective operations participated in (barrier/allreduce/allgather).
    pub collectives: u64,
    /// Virtual seconds spent in communication (waiting + transfer).
    pub comm_time: f64,
    /// Virtual seconds charged as computation.
    pub compute_time: f64,
}

impl CommStats {
    /// Total virtual time (compute + communication).
    pub fn total_time(&self) -> f64 {
        self.comm_time + self.compute_time
    }

    /// Total bytes moved by this rank (two-sided sends + one-sided puts).
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_sent + self.bytes_put
    }

    /// Element-wise sum, for aggregating a world's ranks.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        CommStats {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            puts: self.puts + other.puts,
            bytes_put: self.bytes_put + other.bytes_put,
            collectives: self.collectives + other.collectives,
            comm_time: self.comm_time + other.comm_time,
            compute_time: self.compute_time + other.compute_time,
        }
    }

    /// Aggregates a slice of per-rank stats into world totals.
    pub fn sum(all: &[CommStats]) -> CommStats {
        all.iter().fold(CommStats::default(), |a, s| a.merge(s))
    }

    /// Maximum communication time across ranks (critical path proxy).
    pub fn max_comm_time(all: &[CommStats]) -> f64 {
        all.iter().map(|s| s.comm_time).fold(0.0, f64::max)
    }

    /// Maximum compute time across ranks.
    pub fn max_compute_time(all: &[CommStats]) -> f64 {
        all.iter().map(|s| s.compute_time).fold(0.0, f64::max)
    }

    /// Mean total virtual time across ranks (0 for an empty slice).
    pub fn avg_total_time(all: &[CommStats]) -> f64 {
        if all.is_empty() {
            return 0.0;
        }
        all.iter().map(|s| s.total_time()).sum::<f64>() / all.len() as f64
    }

    /// Load-imbalance ratio of total virtual time: `max / avg` across
    /// ranks. 1.0 is perfectly balanced; the Fig. 16 narrative's
    /// "sector-by-sector cost skew" shows up here first. Returns 1.0
    /// when no time was charged.
    pub fn time_imbalance(all: &[CommStats]) -> f64 {
        let avg = Self::avg_total_time(all);
        if avg <= 0.0 {
            return 1.0;
        }
        all.iter().map(|s| s.total_time()).fold(0.0, f64::max) / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = CommStats {
            msgs_sent: 1,
            bytes_sent: 10,
            comm_time: 0.5,
            ..Default::default()
        };
        let b = CommStats {
            msgs_sent: 2,
            bytes_sent: 20,
            compute_time: 1.0,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.msgs_sent, 3);
        assert_eq!(m.bytes_sent, 30);
        assert_eq!(m.total_time(), 1.5);
    }

    #[test]
    fn sum_and_maxes() {
        let all = vec![
            CommStats {
                comm_time: 1.0,
                compute_time: 3.0,
                bytes_sent: 5,
                ..Default::default()
            },
            CommStats {
                comm_time: 2.0,
                compute_time: 1.0,
                bytes_put: 7,
                ..Default::default()
            },
        ];
        let s = CommStats::sum(&all);
        assert_eq!(s.bytes_moved(), 12);
        assert_eq!(CommStats::max_comm_time(&all), 2.0);
        assert_eq!(CommStats::max_compute_time(&all), 3.0);
    }

    #[test]
    fn merge_identity_and_sum_consistency() {
        let a = CommStats {
            msgs_sent: 4,
            bytes_sent: 44,
            msgs_recv: 3,
            bytes_recv: 33,
            puts: 2,
            bytes_put: 22,
            collectives: 1,
            comm_time: 0.75,
            compute_time: 2.5,
        };
        // Default is the identity of merge.
        assert_eq!(a.merge(&CommStats::default()), a);
        assert_eq!(CommStats::default().merge(&a), a);
        // sum of an empty slice is the identity; singleton is itself.
        assert_eq!(CommStats::sum(&[]), CommStats::default());
        assert_eq!(CommStats::sum(&[a]), a);
        // sum agrees with folded merge.
        let b = CommStats {
            collectives: 7,
            comm_time: 0.25,
            ..Default::default()
        };
        assert_eq!(CommStats::sum(&[a, b, a]), a.merge(&b).merge(&a));
    }
}
