//! Per-rank communication and computation accounting.
//!
//! Byte and message counts are *exact* — they are what Fig. 12
//! (communication volume) reports. Times are virtual-clock charges from
//! [`crate::model::MachineModel`].

use serde::{Deserialize, Serialize};

/// On-demand ghost-exchange savings accounting (paper Fig. 12): how
/// many bytes the dirty-site protocol actually moved versus what a
/// traditional full-ghost exchange of the same sectors would have
/// moved, plus the dirty-site census behind the ratio. All counts are
/// exact; the baseline is computed analytically from the slab geometry,
/// not measured by sending.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExchangeSavings {
    /// Payload bytes the on-demand exchange actually sent/put.
    pub bytes_on_demand: u64,
    /// Payload bytes the full-ghost baseline would have sent for the
    /// same sector sequence.
    pub bytes_full_ghost: u64,
    /// Unique dirty sites shipped to at least one neighbour.
    pub dirty_sites: u64,
    /// Sites the full-ghost put would have shipped (the dirty-fraction
    /// denominator).
    pub candidate_sites: u64,
}

impl ExchangeSavings {
    /// Element-wise sum.
    pub fn merge(&self, other: &ExchangeSavings) -> ExchangeSavings {
        ExchangeSavings {
            bytes_on_demand: self.bytes_on_demand + other.bytes_on_demand,
            bytes_full_ghost: self.bytes_full_ghost + other.bytes_full_ghost,
            dirty_sites: self.dirty_sites + other.dirty_sites,
            candidate_sites: self.candidate_sites + other.candidate_sites,
        }
    }

    /// `bytes_on_demand / bytes_full_ghost` — the paper's Fig. 12
    /// communication-volume ratio. `None` until a baseline is recorded.
    pub fn volume_ratio(&self) -> Option<f64> {
        (self.bytes_full_ghost > 0)
            .then(|| self.bytes_on_demand as f64 / self.bytes_full_ghost as f64)
    }

    /// Fraction of full-ghost candidate sites that were actually dirty.
    /// `None` until a baseline is recorded.
    pub fn dirty_fraction(&self) -> Option<f64> {
        (self.candidate_sites > 0).then(|| self.dirty_sites as f64 / self.candidate_sites as f64)
    }
}

/// Counters accumulated by one rank over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Point-to-point payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub msgs_recv: u64,
    /// Point-to-point payload bytes received.
    pub bytes_recv: u64,
    /// One-sided put operations issued.
    pub puts: u64,
    /// One-sided payload bytes put.
    pub bytes_put: u64,
    /// Collective operations participated in (barrier/allreduce/allgather).
    pub collectives: u64,
    /// Virtual seconds spent in communication (waiting + transfer).
    pub comm_time: f64,
    /// Virtual seconds charged as computation.
    pub compute_time: f64,
    /// On-demand ghost-exchange savings accounting, when the rank ran
    /// an on-demand exchange (zero otherwise).
    pub savings: ExchangeSavings,
}

impl CommStats {
    /// Total virtual time (compute + communication).
    pub fn total_time(&self) -> f64 {
        self.comm_time + self.compute_time
    }

    /// Total bytes moved by this rank (two-sided sends + one-sided puts).
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_sent + self.bytes_put
    }

    /// Element-wise sum, for aggregating a world's ranks.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        CommStats {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            puts: self.puts + other.puts,
            bytes_put: self.bytes_put + other.bytes_put,
            collectives: self.collectives + other.collectives,
            comm_time: self.comm_time + other.comm_time,
            compute_time: self.compute_time + other.compute_time,
            savings: self.savings.merge(&other.savings),
        }
    }

    /// Aggregates a slice of per-rank stats into world totals.
    pub fn sum(all: &[CommStats]) -> CommStats {
        all.iter().fold(CommStats::default(), |a, s| a.merge(s))
    }

    /// Maximum communication time across ranks. For the true
    /// cross-rank critical path — which compute segment or message
    /// edge the run's end actually waited on — use the causal trace
    /// (`crate::trace` + `mmds-inspect causal`) instead of this
    /// per-rank maximum.
    pub fn max_comm_time(all: &[CommStats]) -> f64 {
        all.iter().map(|s| s.comm_time).fold(0.0, f64::max)
    }

    /// Maximum compute time across ranks.
    pub fn max_compute_time(all: &[CommStats]) -> f64 {
        all.iter().map(|s| s.compute_time).fold(0.0, f64::max)
    }

    /// Mean total virtual time across ranks (0 for an empty slice).
    pub fn avg_total_time(all: &[CommStats]) -> f64 {
        if all.is_empty() {
            return 0.0;
        }
        all.iter().map(|s| s.total_time()).sum::<f64>() / all.len() as f64
    }

    /// Load-imbalance ratio of total virtual time: `max / avg` across
    /// ranks. 1.0 is perfectly balanced; the Fig. 16 narrative's
    /// "sector-by-sector cost skew" shows up here first. Returns 1.0
    /// when no time was charged.
    pub fn time_imbalance(all: &[CommStats]) -> f64 {
        let avg = Self::avg_total_time(all);
        if avg <= 0.0 {
            return 1.0;
        }
        all.iter().map(|s| s.total_time()).fold(0.0, f64::max) / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = CommStats {
            msgs_sent: 1,
            bytes_sent: 10,
            comm_time: 0.5,
            ..Default::default()
        };
        let b = CommStats {
            msgs_sent: 2,
            bytes_sent: 20,
            compute_time: 1.0,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.msgs_sent, 3);
        assert_eq!(m.bytes_sent, 30);
        assert_eq!(m.total_time(), 1.5);
    }

    #[test]
    fn sum_and_maxes() {
        let all = vec![
            CommStats {
                comm_time: 1.0,
                compute_time: 3.0,
                bytes_sent: 5,
                ..Default::default()
            },
            CommStats {
                comm_time: 2.0,
                compute_time: 1.0,
                bytes_put: 7,
                ..Default::default()
            },
        ];
        let s = CommStats::sum(&all);
        assert_eq!(s.bytes_moved(), 12);
        assert_eq!(CommStats::max_comm_time(&all), 2.0);
        assert_eq!(CommStats::max_compute_time(&all), 3.0);
    }

    #[test]
    fn merge_identity_and_sum_consistency() {
        let a = CommStats {
            msgs_sent: 4,
            bytes_sent: 44,
            msgs_recv: 3,
            bytes_recv: 33,
            puts: 2,
            bytes_put: 22,
            collectives: 1,
            comm_time: 0.75,
            compute_time: 2.5,
            savings: ExchangeSavings {
                bytes_on_demand: 14,
                bytes_full_ghost: 160,
                dirty_sites: 1,
                candidate_sites: 10,
            },
        };
        // Default is the identity of merge.
        assert_eq!(a.merge(&CommStats::default()), a);
        assert_eq!(CommStats::default().merge(&a), a);
        // sum of an empty slice is the identity; singleton is itself.
        assert_eq!(CommStats::sum(&[]), CommStats::default());
        assert_eq!(CommStats::sum(&[a]), a);
        // sum agrees with folded merge.
        let b = CommStats {
            collectives: 7,
            comm_time: 0.25,
            ..Default::default()
        };
        assert_eq!(CommStats::sum(&[a, b, a]), a.merge(&b).merge(&a));
    }

    #[test]
    fn savings_ratios() {
        let s = ExchangeSavings {
            bytes_on_demand: 26,
            bytes_full_ghost: 1000,
            dirty_sites: 3,
            candidate_sites: 100,
        };
        assert_eq!(s.volume_ratio(), Some(0.026));
        assert_eq!(s.dirty_fraction(), Some(0.03));
        assert_eq!(ExchangeSavings::default().volume_ratio(), None);
        assert_eq!(ExchangeSavings::default().dirty_fraction(), None);
        let m = s.merge(&s);
        assert_eq!(m.bytes_on_demand, 52);
        assert_eq!(m.volume_ratio(), Some(0.026));
    }
}
