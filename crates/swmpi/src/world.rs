//! World creation: spawn one thread per rank and collect results.

use std::sync::Arc;

use crate::collectives::CollectiveHub;
use crate::comm::{Comm, Shared};
use crate::mailbox::Mailbox;
use crate::matrix::CommMatrix;
use crate::model::MachineModel;
use crate::onesided::WindowHub;
use crate::stats::CommStats;

/// Configuration for a [`World`].
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Communication cost model charged to virtual clocks.
    pub model: MachineModel,
    /// Stack size per rank thread. Ranks are plentiful (hundreds), so we
    /// default well below the 8 MB Linux default.
    pub stack_bytes: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            model: MachineModel::taihulight(),
            stack_bytes: 4 << 20,
        }
    }
}

/// What one rank produced: the closure's return value plus accounting.
#[derive(Debug, Clone)]
pub struct RankOutput<R> {
    /// The rank's return value.
    pub result: R,
    /// Final accounting counters.
    pub stats: CommStats,
    /// Final pairwise communication matrix.
    pub matrix: CommMatrix,
    /// Final virtual clock (seconds).
    pub clock: f64,
}

/// A launcher for SPMD programs over simulated ranks.
///
/// ```
/// use mmds_swmpi::{World, WorldConfig};
/// let out = World::new(WorldConfig::default()).run(4, |comm| {
///     comm.allreduce_sum_u64(comm.rank() as u64 + 1)
/// });
/// assert!(out.iter().all(|r| r.result == 10));
/// ```
pub struct World {
    config: WorldConfig,
}

impl World {
    /// Creates a world launcher with the given configuration.
    pub fn new(config: WorldConfig) -> Self {
        Self { config }
    }

    /// A world with default (TaihuLight-like) cost model.
    pub fn default_world() -> Self {
        Self::new(WorldConfig::default())
    }

    /// Runs `f` on `n` ranks, each on its own OS thread, and returns the
    /// per-rank outputs in rank order. Panics in any rank propagate.
    pub fn run<R, F>(&self, n: usize, f: F) -> Vec<RankOutput<R>>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        assert!(n > 0, "world needs at least one rank");
        let shared = Arc::new(Shared {
            mailboxes: (0..n).map(|_| Arc::new(Mailbox::new())).collect(),
            hub: CollectiveHub::new(n),
            windows: WindowHub::new(n),
            model: self.config.model,
        });
        let stack = self.config.stack_bytes;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let shared = Arc::clone(&shared);
                    let f = &f;
                    std::thread::Builder::new()
                        .name(format!("rank{rank}"))
                        .stack_size(stack)
                        .spawn_scoped(scope, move || {
                            let comm = Comm::new(rank, n, shared);
                            let result = f(&comm);
                            RankOutput {
                                result,
                                stats: comm.stats(),
                                matrix: comm.comm_matrix(),
                                clock: comm.clock(),
                            }
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(out) => out,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_in_rank_order() {
        let out = World::default_world().run(8, |comm| comm.rank() * 10);
        let got: Vec<_> = out.iter().map(|r| r.result).collect();
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::default_world().run(1, |comm| {
            comm.barrier();
            comm.allreduce_sum_f64(3.5)
        });
        assert_eq!(out[0].result, 3.5);
    }

    #[test]
    fn many_ranks_spawn() {
        let world = World::new(WorldConfig {
            stack_bytes: 512 << 10,
            ..Default::default()
        });
        let out = world.run(128, |comm| comm.allreduce_sum_u64(1));
        assert!(out.iter().all(|r| r.result == 128));
    }

    #[test]
    fn stats_reported_per_rank() {
        let out = World::default_world().run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 64]);
            } else {
                comm.recv_from(0, 0);
            }
        });
        assert_eq!(out[0].stats.bytes_sent, 64);
        assert_eq!(out[1].stats.bytes_recv, 64);
    }

    #[test]
    fn comm_matrix_collected_and_symmetric() {
        let out = World::default_world().run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.sendrecv(next, prev, 0, vec![0u8; 32 * (comm.rank() + 1)]);
            comm.win_put(prev, 0, vec![0u8; 8]);
            comm.win_fence();
        });
        let matrices: Vec<_> = out.iter().map(|r| r.matrix.clone()).collect();
        assert_eq!(matrices[0].sent[0].peer, 1);
        assert_eq!(matrices[0].sent[0].bytes, 32);
        let w = crate::matrix::WorldMatrix::from_ranks(&matrices);
        w.validate_symmetry().expect("ring exchange is symmetric");
        assert_eq!(w.bytes(1, 2), 64); // rank 1 sent 2×32 B to rank 2
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        World::default_world().run(2, |comm| {
            if comm.rank() == 1 {
                // Avoid leaving rank 0 blocked: panic before any recv.
                panic!("boom");
            }
        });
    }
}
