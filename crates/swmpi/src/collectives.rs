//! Synchronising collectives: barrier, allreduce, allgather.
//!
//! Besides their functional role, collectives are where per-rank virtual
//! clocks reconcile: every participant leaves a collective with its clock
//! set to the maximum clock over all participants plus the modelled cost
//! of the operation. This reproduces the paper's observation that
//! "collective operations used for time synchronization" dominate KMC
//! weak-scaling communication time (Fig. 15).

use std::collections::HashMap;

use parking_lot::{Condvar, Mutex};

/// A rank's contribution to (and the result of) one collective call.
///
/// All ranks of a world must pass the *same variant* to the same
/// collective call site; mixing variants is a protocol error and panics.
#[derive(Debug, Clone)]
pub enum Acc {
    /// Pure synchronisation, no data.
    Barrier,
    /// Sum of `f64` contributions.
    SumF64(f64),
    /// Minimum of `f64` contributions.
    MinF64(f64),
    /// Maximum of `f64` contributions.
    MaxF64(f64),
    /// Sum of `u64` contributions.
    SumU64(u64),
    /// Maximum of `u64` contributions.
    MaxU64(u64),
    /// Byte-buffer allgather; slot `r` holds rank `r`'s contribution.
    Gather(Vec<Option<Vec<u8>>>),
}

fn combine(a: Acc, b: Acc) -> Acc {
    use Acc::*;
    match (a, b) {
        (Barrier, Barrier) => Barrier,
        (SumF64(x), SumF64(y)) => SumF64(x + y),
        (MinF64(x), MinF64(y)) => MinF64(x.min(y)),
        (MaxF64(x), MaxF64(y)) => MaxF64(x.max(y)),
        (SumU64(x), SumU64(y)) => SumU64(x + y),
        (MaxU64(x), MaxU64(y)) => MaxU64(x.max(y)),
        (Gather(mut xs), Gather(ys)) => {
            for (i, y) in ys.into_iter().enumerate() {
                if let Some(v) = y {
                    assert!(
                        xs[i].is_none(),
                        "two ranks contributed to allgather slot {i}"
                    );
                    xs[i] = Some(v);
                }
            }
            Gather(xs)
        }
        (a, b) => panic!("mismatched collective variants: {a:?} vs {b:?}"),
    }
}

struct Inner {
    generation: u64,
    arrived: usize,
    acc: Option<Acc>,
    clock_max: f64,
    lamport_max: u64,
    /// generation -> (result, synced clock, synced Lamport clock,
    /// readers still to consume).
    results: HashMap<u64, (Acc, f64, u64, usize)>,
}

/// Shared rendezvous point for all collectives of one world.
pub struct CollectiveHub {
    n: usize,
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl CollectiveHub {
    /// Creates a hub for a world of `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "world must have at least one rank");
        Self {
            n,
            inner: Mutex::new(Inner {
                generation: 0,
                arrived: 0,
                acc: None,
                clock_max: f64::NEG_INFINITY,
                lamport_max: 0,
                results: HashMap::new(),
            }),
            cond: Condvar::new(),
        }
    }

    /// World size this hub synchronises.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Performs one collective: contributes `mine`, this rank's virtual
    /// `clock`, and its Lamport clock, blocks until all `n` ranks have
    /// arrived, and returns `(combined result, max clock, max Lamport
    /// clock, generation)` over the participants. The generation is
    /// the world-wide collective ordinal — the match id causal traces
    /// use to join all ranks' halves of one collective call.
    pub fn collect(&self, mine: Acc, clock: f64, lamport: u64) -> (Acc, f64, u64, u64) {
        let mut g = self.inner.lock();
        let my_gen = g.generation;
        g.clock_max = g.clock_max.max(clock);
        g.lamport_max = g.lamport_max.max(lamport);
        g.acc = Some(match g.acc.take() {
            None => mine,
            Some(a) => combine(a, mine),
        });
        g.arrived += 1;
        if g.arrived == self.n {
            let acc = g.acc.take().expect("accumulator present at completion");
            let ck = g.clock_max;
            let lam = g.lamport_max;
            g.results.insert(my_gen, (acc, ck, lam, self.n));
            g.generation += 1;
            g.arrived = 0;
            g.clock_max = f64::NEG_INFINITY;
            g.lamport_max = 0;
            self.cond.notify_all();
        } else {
            while !g.results.contains_key(&my_gen) {
                self.cond.wait(&mut g);
            }
        }
        let entry = g
            .results
            .get_mut(&my_gen)
            .expect("result published for this generation");
        let out = (entry.0.clone(), entry.1, entry.2, my_gen);
        entry.3 -= 1;
        if entry.3 == 0 {
            g.results.remove(&my_gen);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn run_ranks<F, R>(n: usize, f: F) -> Vec<R>
    where
        F: Fn(usize, &CollectiveHub) -> R + Sync,
        R: Send,
    {
        let hub = Arc::new(CollectiveHub::new(n));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|r| {
                    let hub = Arc::clone(&hub);
                    let f = &f;
                    s.spawn(move || f(r, &hub))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn sum_reduction() {
        let out = run_ranks(8, |r, hub| hub.collect(Acc::SumF64(r as f64), 0.0, 0));
        for (acc, ..) in out {
            match acc {
                Acc::SumF64(s) => assert_eq!(s, 28.0),
                _ => panic!("wrong variant"),
            }
        }
    }

    #[test]
    fn clock_sync_takes_max() {
        let out = run_ranks(4, |r, hub| {
            hub.collect(Acc::Barrier, r as f64 * 10.0, r as u64)
        });
        for (_, ck, lam, gen) in out {
            assert_eq!(ck, 30.0);
            assert_eq!(lam, 3);
            assert_eq!(gen, 0);
        }
    }

    #[test]
    fn gather_collects_all_slots() {
        let out = run_ranks(3, |r, hub| {
            let mut slots = vec![None; 3];
            slots[r] = Some(vec![r as u8; r + 1]);
            hub.collect(Acc::Gather(slots), 0.0, 0)
        });
        for (acc, ..) in out {
            match acc {
                Acc::Gather(slots) => {
                    for (i, s) in slots.iter().enumerate() {
                        assert_eq!(s.as_ref().unwrap().len(), i + 1);
                    }
                }
                _ => panic!("wrong variant"),
            }
        }
    }

    #[test]
    fn repeated_generations() {
        let out = run_ranks(4, |r, hub| {
            let mut total = 0u64;
            for round in 0..50u64 {
                let (acc, ..) = hub.collect(Acc::SumU64(round + r as u64), 0.0, 0);
                match acc {
                    Acc::SumU64(s) => total += s,
                    _ => panic!("wrong variant"),
                }
            }
            total
        });
        // Every round sums to 4*round + (0+1+2+3); totals agree on all ranks.
        assert!(out.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn min_max_reductions() {
        let out = run_ranks(5, |r, hub| {
            let (mn, ..) = hub.collect(Acc::MinF64(r as f64), 0.0, 0);
            let (mx, ..) = hub.collect(Acc::MaxU64(r as u64), 0.0, 0);
            (mn, mx)
        });
        for (mn, mx) in out {
            assert!(matches!(mn, Acc::MinF64(v) if v == 0.0));
            assert!(matches!(mx, Acc::MaxU64(4)));
        }
    }
}
