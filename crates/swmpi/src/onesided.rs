//! One-sided communication: windows with put + fence.
//!
//! The paper (§2.2.1) notes that probe-based on-demand exchange forces
//! senders to emit zero-size messages so receivers can match them, and
//! proposes MPI one-sided communication as the fix: each process opens a
//! window, *puts* updates into its neighbours, and a global fence
//! completes the epoch. [`WindowHub`] models exactly that: puts append
//! [`PutRecord`]s to the target's board; after a fence (a barrier driven
//! by [`crate::Comm::win_fence`]) each rank drains its own board.

use parking_lot::Mutex;

use crate::Rank;

/// One one-sided update deposited into a target rank's window.
#[derive(Debug, Clone)]
pub struct PutRecord {
    /// Originating rank.
    pub src: Rank,
    /// Application-defined region identifier (e.g. which ghost face).
    pub region: u32,
    /// Virtual time at which the originator issued the put.
    pub depart_time: f64,
    /// Per-sender message ordinal: `(src, seq)` matches this put with
    /// the drain event on the target rank in a causal trace.
    pub seq: u64,
    /// Originator's Lamport clock at departure.
    pub lamport: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Per-rank put boards for an entire world.
pub struct WindowHub {
    boards: Vec<Mutex<Vec<PutRecord>>>,
}

impl WindowHub {
    /// Creates boards for `n` ranks.
    pub fn new(n: usize) -> Self {
        Self {
            boards: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Deposits a record into `dst`'s board. Called by the source rank.
    pub fn put(&self, dst: Rank, rec: PutRecord) {
        self.boards[dst].lock().push(rec);
    }

    /// Removes and returns everything deposited into `rank`'s board.
    /// Called by the owner after a fence. Records are sorted by
    /// `(src, region)` so drain order is deterministic regardless of
    /// thread scheduling.
    pub fn drain(&self, rank: Rank) -> Vec<PutRecord> {
        let mut recs = std::mem::take(&mut *self.boards[rank].lock());
        recs.sort_by_key(|r| (r.src, r.region));
        recs
    }

    /// Number of undelivered records currently boarded for `rank`.
    pub fn pending(&self, rank: Rank) -> usize {
        self.boards[rank].lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(src: Rank, region: u32, payload: Vec<u8>) -> PutRecord {
        PutRecord {
            src,
            region,
            depart_time: 0.0,
            seq: 0,
            lamport: 0,
            payload,
        }
    }

    #[test]
    fn put_then_drain() {
        let hub = WindowHub::new(3);
        hub.put(1, rec(0, 2, vec![1, 2]));
        hub.put(1, rec(2, 1, vec![3]));
        hub.put(0, rec(1, 0, vec![4]));
        assert_eq!(hub.pending(1), 2);
        let drained = hub.drain(1);
        assert_eq!(drained.len(), 2);
        // Deterministic order: sorted by (src, region).
        assert_eq!(drained[0].src, 0);
        assert_eq!(drained[1].src, 2);
        assert_eq!(hub.pending(1), 0);
        assert_eq!(hub.drain(0).len(), 1);
    }

    #[test]
    fn drain_sorts_by_src_then_region() {
        let hub = WindowHub::new(2);
        hub.put(0, rec(1, 5, vec![]));
        hub.put(0, rec(1, 2, vec![]));
        hub.put(0, rec(0, 9, vec![]));
        let d = hub.drain(0);
        let keys: Vec<_> = d.iter().map(|r| (r.src, r.region)).collect();
        assert_eq!(keys, vec![(0, 9), (1, 2), (1, 5)]);
    }

    #[test]
    fn empty_drain() {
        let hub = WindowHub::new(1);
        assert!(hub.drain(0).is_empty());
    }
}
