//! Declared communication-skeleton IR (paper §2.2.1 protocol, proven
//! statically).
//!
//! Every communicating phase of the MD/KMC/coupled pipeline declares a
//! [`CommPlan`] next to its exchange code: the symbolic sequence of
//! communication operations one rank performs per phase instance,
//! written over *rank expressions* — periodic offsets on the 3-D
//! Cartesian decomposition ([`CartGrid::neighbor`]) — instead of
//! concrete rank ids, and over *symbolic byte counts* ([`ByteSpec`])
//! instead of concrete payload sizes. Because the program is SPMD
//! (every rank executes the same plan), a plan is a complete
//! description of the global communication pattern for **all** world
//! sizes P at once, which makes three protocol properties provable
//! symbolically:
//!
//! * **Match closure** ([`match_closure`]): a `Recv { from: e }`
//!   consumes exactly the sends declared as `Send { to: -e }` — on a
//!   periodic grid, `neighbor(neighbor(r, d), -d) == r` for every rank
//!   `r` and every dims vector, so per-direction send/recv counts must
//!   balance. Small grids only *alias* extra directions onto the same
//!   concrete peer; aliasing can never unmatch a message (see
//!   [`symbolic_match`] / [`concrete_match`] and the proptests).
//! * **Deadlock freedom** ([`deadlock_free`]): sends are eager (never
//!   block), so an SPMD straight-line plan can only deadlock when some
//!   rank blocks in a `Recv` whose matching `Send` has not been issued
//!   yet — i.e. the k-th `Recv { from: -d }` must appear *after* the
//!   k-th `Send { to: d }` in the plan. [`simulate`] cross-checks the
//!   symbolic proof by lock-step execution on concrete grids.
//! * **Fence enclosure** ([`fences_enclose`]): every `WinPut` must be
//!   completed by a `WinFence` later in the same plan instance (the
//!   window epoch discipline the swmpi one-sided model checker
//!   verifies dynamically).
//!
//! The same declarations are *reconciled against reality*: the audit
//! golden table pins their rendered form, `replay` executes them
//! through a real [`Comm`], and `mmds-bench`'s causal smoke run checks
//! traced [`CommEvent`](crate::trace::CommEvent)s — ops, bytes and
//! match ids — against the declared plans, so a declaration can never
//! rot. The verified IR is also the designated input format for the
//! future million-rank skeleton-replay mode (ROADMAP item 5).

use serde::{Deserialize, Serialize};

use crate::topology::CartGrid;
use crate::{Comm, Rank, Tag};

/// A symbolic rank expression: a periodic offset on the Cartesian
/// grid. `neighbor(axis, ±1)` is `[±1, 0, 0]` etc.; corner directions
/// have several non-zero components.
pub type Offset = [i64; 3];

/// Negates an offset componentwise (the matching direction).
pub fn neg(d: Offset) -> Offset {
    [-d[0], -d[1], -d[2]]
}

/// Symbolic payload size of one declared operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ByteSpec {
    /// Exactly this many bytes, every time (e.g. one f64 allreduce).
    Exact(u64),
    /// `header + n * record` bytes for some count `n >= 0` (e.g. the
    /// run-away migration allgather: a u32 count plus 88 B records).
    Records {
        /// Fixed bytes independent of the record count.
        header: u64,
        /// Bytes per record.
        record: u64,
    },
    /// Size depends on run state in a way the plan cannot bound
    /// (e.g. MD ghost slabs, whose run-away chains vary per site).
    Dynamic,
}

impl ByteSpec {
    /// Whether a traced payload size is consistent with this spec.
    pub fn admits(&self, bytes: u64) -> bool {
        match *self {
            ByteSpec::Exact(n) => bytes == n,
            ByteSpec::Records { header, record } => {
                if bytes < header {
                    return false;
                }
                if record == 0 {
                    bytes == header
                } else {
                    (bytes - header).is_multiple_of(record)
                }
            }
            ByteSpec::Dynamic => true,
        }
    }

    /// A representative concrete size, used by [`replay`].
    pub fn sample(&self) -> u64 {
        match *self {
            ByteSpec::Exact(n) => n,
            ByteSpec::Records { header, record } => header + 2 * record,
            ByteSpec::Dynamic => 64,
        }
    }

    /// Compact rendering for the skeleton table (`8 B`, `4+88n B`, …).
    pub fn describe(&self) -> String {
        match *self {
            ByteSpec::Exact(n) => format!("{n} B"),
            ByteSpec::Records { header: 0, record } => format!("{record}n B"),
            ByteSpec::Records { header, record } => format!("{header}+{record}n B"),
            ByteSpec::Dynamic => "dyn B".to_string(),
        }
    }
}

/// One declared communication operation, mirroring the granularity at
/// which [`crate::trace::CommOp`] events are emitted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkelOp {
    /// Eager send to the neighbour at `to`.
    Send {
        /// Destination rank expression.
        to: Offset,
        /// Payload size.
        bytes: ByteSpec,
    },
    /// Blocking receive from the neighbour at `from`.
    Recv {
        /// Source rank expression.
        from: Offset,
        /// Payload size.
        bytes: ByteSpec,
    },
    /// Global barrier.
    Barrier,
    /// Allreduce over one value.
    Allreduce {
        /// Payload size (8 for a single f64/u64).
        bytes: ByteSpec,
        /// `Some(reason)` when the op may be skipped under a predicate
        /// that is *provably rank-uniform* (computed from a globally
        /// agreed value), so skipping cannot diverge ranks. The
        /// reconciler treats the op as optional but requires the skip
        /// decision to be uniform per instance.
        uniform_skip: Option<String>,
    },
    /// Allgather of per-rank buffers.
    Allgather {
        /// Per-rank contribution size.
        bytes: ByteSpec,
    },
    /// One-sided window put to the neighbour at `to`; completes at the
    /// next `WinFence`.
    WinPut {
        /// Destination rank expression.
        to: Offset,
        /// Payload size.
        bytes: ByteSpec,
        /// True when the put is elided for empty payloads (the
        /// on-demand one-sided exchange skips zero-size puts — the
        /// whole point of the variant).
        optional: bool,
    },
    /// Window fence: collective epoch close that drains puts.
    WinFence,
}

impl SkelOp {
    /// The two ops of one staged `sendrecv` shift along `axis`:
    /// send to `axis/toward_high`, receive from the opposite neighbour.
    pub fn shift(axis: usize, toward_high: bool, bytes: ByteSpec) -> [SkelOp; 2] {
        let mut d = [0i64; 3];
        d[axis] = if toward_high { 1 } else { -1 };
        [
            SkelOp::Send { to: d, bytes },
            SkelOp::Recv {
                from: neg(d),
                bytes,
            },
        ]
    }

    fn render(&self) -> String {
        let off = |d: Offset| format!("({:+},{:+},{:+})", d[0], d[1], d[2]);
        match self {
            SkelOp::Send { to, bytes } => {
                format!("send      -> {:<12} {}", off(*to), bytes.describe())
            }
            SkelOp::Recv { from, bytes } => {
                format!("recv      <- {:<12} {}", off(*from), bytes.describe())
            }
            SkelOp::Barrier => "barrier".to_string(),
            SkelOp::Allreduce {
                bytes,
                uniform_skip,
            } => match uniform_skip {
                Some(reason) => format!(
                    "allreduce    {:<12} {}  [uniform-skip: {reason}]",
                    "",
                    bytes.describe()
                ),
                None => format!("allreduce    {:<12} {}", "", bytes.describe()),
            },
            SkelOp::Allgather { bytes } => {
                format!("allgather    {:<12} {}", "", bytes.describe())
            }
            SkelOp::WinPut {
                to,
                bytes,
                optional,
            } => format!(
                "win_put   -> {:<12} {}{}",
                off(*to),
                bytes.describe(),
                if *optional { "  [optional]" } else { "" }
            ),
            SkelOp::WinFence => "win_fence".to_string(),
        }
    }
}

/// The declared communication skeleton of one telemetry phase.
///
/// `phase` names the *leaf* telemetry span the ops are emitted under
/// (e.g. `md.ghost`); one phase instance executes `variants[k % V]`
/// where `k` is the instance ordinal — sector-parameterised phases
/// (the KMC pre/post-sector exchanges) cycle through 8 variants, one
/// per sector, while simple phases have a single variant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommPlan {
    /// Leaf telemetry span name this plan describes.
    pub phase: String,
    /// Workspace-relative source file declaring the exchange.
    pub declared_in: String,
    /// Op sequences; instance `k` executes `variants[k % len]`.
    pub variants: Vec<Vec<SkelOp>>,
    /// One-line description for the skeleton table.
    pub note: String,
}

impl CommPlan {
    /// A single-variant plan.
    pub fn new(
        phase: impl Into<String>,
        declared_in: impl Into<String>,
        ops: Vec<SkelOp>,
        note: impl Into<String>,
    ) -> Self {
        Self {
            phase: phase.into(),
            declared_in: declared_in.into(),
            variants: vec![ops],
            note: note.into(),
        }
    }

    /// A sector-cycled plan (instance `k` runs `variants[k % len]`).
    pub fn cycled(
        phase: impl Into<String>,
        declared_in: impl Into<String>,
        variants: Vec<Vec<SkelOp>>,
        note: impl Into<String>,
    ) -> Self {
        assert!(!variants.is_empty(), "plan needs at least one variant");
        Self {
            phase: phase.into(),
            declared_in: declared_in.into(),
            variants,
            note: note.into(),
        }
    }
}

/// One symbolic protocol violation found in a declared plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkelViolation {
    /// Phase of the offending plan.
    pub plan: String,
    /// Variant index within the plan.
    pub variant: usize,
    /// What is wrong.
    pub message: String,
}

impl SkelViolation {
    fn new(plan: &CommPlan, variant: usize, message: String) -> Self {
        Self {
            plan: plan.phase.clone(),
            variant,
            message,
        }
    }
}

impl std::fmt::Display for SkelViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plan `{}` variant {}: {}",
            self.plan, self.variant, self.message
        )
    }
}

/// Symbolic matching rule: on an SPMD periodic grid, `Recv { from: e }`
/// consumes `Send { to: d }` for **every** world size iff `e == -d`.
pub fn symbolic_match(send_to: Offset, recv_from: Offset) -> bool {
    recv_from == neg(send_to)
}

/// Brute-force matching on one concrete grid: the send from every rank
/// `r` lands on the rank that will read it, i.e.
/// `neighbor(neighbor(r, d), e) == r` for all `r`. Equals
/// [`symbolic_match`] whenever every axis has ≥ 3 ranks; smaller axes
/// only *alias* additional offsets onto the same peer (periodic wrap),
/// which adds concrete matches but never removes one.
pub fn concrete_match(grid: &CartGrid, send_to: Offset, recv_from: Offset) -> bool {
    (0..grid.len()).all(|r| grid.neighbor(grid.neighbor(r, send_to), recv_from) == r)
}

/// For each op, the index of the plan op it pairs with:
/// `pair[recv] == Some(send)` for two-sided pairs (k-th `Recv{from:-d}`
/// pairs the k-th `Send{to:d}`); non-consuming ops map to `None`.
pub fn pair_ops(ops: &[SkelOp]) -> Vec<Option<usize>> {
    let mut sends: std::collections::BTreeMap<Offset, Vec<usize>> = Default::default();
    for (i, op) in ops.iter().enumerate() {
        if let SkelOp::Send { to, .. } = op {
            sends.entry(*to).or_default().push(i);
        }
    }
    let mut taken: std::collections::BTreeMap<Offset, usize> = Default::default();
    ops.iter()
        .map(|op| {
            if let SkelOp::Recv { from, .. } = op {
                let d = neg(*from);
                let k = taken.entry(d).or_insert(0);
                let j = sends.get(&d).and_then(|v| v.get(*k)).copied();
                *k += 1;
                j
            } else {
                None
            }
        })
        .collect()
}

/// **Match closure**: every send has exactly one matching recv and
/// vice versa, per variant, for symbolic P.
pub fn match_closure(plan: &CommPlan) -> Vec<SkelViolation> {
    let mut out = Vec::new();
    for (vi, ops) in plan.variants.iter().enumerate() {
        let mut sends: std::collections::BTreeMap<Offset, i64> = Default::default();
        for op in ops {
            match op {
                SkelOp::Send { to, .. } => *sends.entry(*to).or_insert(0) += 1,
                SkelOp::Recv { from, .. } => *sends.entry(neg(*from)).or_insert(0) -= 1,
                _ => {}
            }
        }
        for (d, n) in sends {
            if n > 0 {
                out.push(SkelViolation::new(
                    plan,
                    vi,
                    format!(
                        "orphan send: {n} send(s) to ({:+},{:+},{:+}) with no \
                         matching recv from ({:+},{:+},{:+})",
                        d[0], d[1], d[2], -d[0], -d[1], -d[2]
                    ),
                ));
            } else if n < 0 {
                out.push(SkelViolation::new(
                    plan,
                    vi,
                    format!(
                        "orphan recv: {} recv(s) from ({:+},{:+},{:+}) with no \
                         matching send to ({:+},{:+},{:+})",
                        -n, -d[0], -d[1], -d[2], d[0], d[1], d[2]
                    ),
                ));
            }
        }
    }
    out
}

/// **Deadlock freedom**: sends are eager, so an SPMD plan deadlocks
/// iff some `Recv` precedes its matching `Send` — every rank would
/// block in the recv with nobody left to send. Requires each recv's
/// paired send (per [`pair_ops`]) to appear earlier in the variant.
pub fn deadlock_free(plan: &CommPlan) -> Vec<SkelViolation> {
    let mut out = Vec::new();
    for (vi, ops) in plan.variants.iter().enumerate() {
        let pairs = pair_ops(ops);
        for (i, op) in ops.iter().enumerate() {
            if let SkelOp::Recv { from, .. } = op {
                match pairs[i] {
                    Some(j) if j < i => {}
                    Some(j) => out.push(SkelViolation::new(
                        plan,
                        vi,
                        format!(
                            "cyclic exchange order: recv (op {i}) from \
                             ({:+},{:+},{:+}) precedes its matching send (op {j}) \
                             — every rank would block here (SPMD)",
                            from[0], from[1], from[2]
                        ),
                    )),
                    // Unmatched recvs are reported by match_closure.
                    None => {}
                }
            }
        }
    }
    out
}

/// **Fence enclosure**: every `WinPut` must be completed by a
/// `WinFence` later in the same variant.
pub fn fences_enclose(plan: &CommPlan) -> Vec<SkelViolation> {
    let mut out = Vec::new();
    for (vi, ops) in plan.variants.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, SkelOp::WinPut { .. })
                && !ops[i + 1..].iter().any(|o| matches!(o, SkelOp::WinFence))
            {
                out.push(SkelViolation::new(
                    plan,
                    vi,
                    format!("unfenced put: win_put (op {i}) has no later win_fence"),
                ));
            }
        }
    }
    out
}

/// Runs every symbolic check on a plan.
pub fn verify_plan(plan: &CommPlan) -> Vec<SkelViolation> {
    let mut out = match_closure(plan);
    out.extend(deadlock_free(plan));
    out.extend(fences_enclose(plan));
    out
}

/// Aggregate op/byte counts of one lock-step [`simulate`] run (world
/// totals, sample byte sizes), for cross-checking against a real
/// [`Comm`] replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Point-to-point messages sent (world total).
    pub p2p_msgs: u64,
    /// Point-to-point payload bytes (sample sizes, world total).
    pub p2p_bytes: u64,
    /// Collective invocations (world total; barrier/allreduce/
    /// allgather, and one per fence).
    pub collectives: u64,
    /// Window puts deposited (world total).
    pub puts: u64,
}

/// Brute-force lock-step execution of `instances` instances of `plan`
/// on a concrete `grid`: eager sends, blocking recvs, rendezvous
/// collectives/fences. Returns the op census, or the violation that
/// stalled it (deadlock, left-over messages). This is the concrete
/// oracle the symbolic checks are proptested against.
pub fn simulate(
    plan: &CommPlan,
    grid: &CartGrid,
    instances: usize,
) -> Result<SimReport, SkelViolation> {
    let p = grid.len();
    let nv = plan.variants.len();
    let program: Vec<&SkelOp> = (0..instances)
        .flat_map(|k| plan.variants[k % nv].iter())
        .collect();
    let mut pc = vec![0usize; p];
    // FIFO per (src, dst) of pending payload sizes.
    let mut mail: std::collections::BTreeMap<(Rank, Rank), std::collections::VecDeque<u64>> =
        Default::default();
    let mut window_deposits = vec![0u64; p];
    let mut report = SimReport::default();
    loop {
        if pc.iter().all(|&c| c == program.len()) {
            break;
        }
        let mut advanced = false;
        // Phase 1: advance every rank through its non-blocking and
        // satisfiable blocking ops.
        for r in 0..p {
            while pc[r] < program.len() {
                match program[pc[r]] {
                    SkelOp::Send { to, bytes } => {
                        let dst = grid.neighbor(r, *to);
                        mail.entry((r, dst)).or_default().push_back(bytes.sample());
                        report.p2p_msgs += 1;
                        report.p2p_bytes += bytes.sample();
                    }
                    SkelOp::Recv { from, .. } => {
                        let src = grid.neighbor(r, *from);
                        match mail.get_mut(&(src, r)).and_then(|q| q.pop_front()) {
                            Some(_) => {}
                            None => break, // block until the send lands
                        }
                    }
                    SkelOp::WinPut { to, bytes, .. } => {
                        let dst = grid.neighbor(r, *to);
                        window_deposits[dst] += 1;
                        report.puts += 1;
                        report.p2p_bytes += bytes.sample();
                    }
                    SkelOp::Barrier
                    | SkelOp::Allreduce { .. }
                    | SkelOp::Allgather { .. }
                    | SkelOp::WinFence => break, // rendezvous below
                }
                pc[r] += 1;
                advanced = true;
            }
        }
        // Phase 2: release a collective rendezvous when every rank is
        // parked at one.
        let parked = (0..p).all(|r| {
            pc[r] < program.len()
                && matches!(
                    program[pc[r]],
                    SkelOp::Barrier
                        | SkelOp::Allreduce { .. }
                        | SkelOp::Allgather { .. }
                        | SkelOp::WinFence
                )
        });
        if parked {
            if pc.iter().any(|&c| c != pc[0]) {
                return Err(SkelViolation::new(
                    plan,
                    pc[0] % plan.variants[0].len().max(1),
                    format!(
                        "rank-divergent collective: ranks parked at different plan \
                         ops {:?}",
                        pc
                    ),
                ));
            }
            if matches!(program[pc[0]], SkelOp::WinFence) {
                for d in window_deposits.iter_mut() {
                    *d = 0; // fence drains every deposit
                }
            }
            report.collectives += p as u64;
            for c in pc.iter_mut() {
                *c += 1;
            }
            advanced = true;
        }
        if !advanced {
            let r = (0..p).find(|&r| pc[r] < program.len()).unwrap_or(0);
            return Err(SkelViolation::new(
                plan,
                0,
                format!(
                    "deadlock: no rank can advance; rank {r} blocked at program op \
                     {} ({:?})",
                    pc[r], program[pc[r]]
                ),
            ));
        }
    }
    if mail.values().any(|q| !q.is_empty()) {
        let ((src, dst), q) = mail.iter().find(|(_, q)| !q.is_empty()).unwrap();
        return Err(SkelViolation::new(
            plan,
            0,
            format!(
                "orphan send: {} message(s) from rank {src} to rank {dst} never \
                 received",
                q.len()
            ),
        ));
    }
    if window_deposits.iter().any(|&d| d > 0) {
        return Err(SkelViolation::new(
            plan,
            0,
            "unfenced put: window deposits left undrained at exit".to_string(),
        ));
    }
    Ok(report)
}

/// Executes one plan instance on a real [`Comm`]: peers resolved via
/// `grid`, payloads at their [`ByteSpec::sample`] sizes, tags derived
/// from `base_tag` plus the *send's* op index (so each recv names its
/// paired send's tag). Used to cross-check declarations against the
/// live substrate and as the seed of the future skeleton-replay mode.
pub fn replay(comm: &Comm, grid: &CartGrid, plan: &CommPlan, instance: usize, base_tag: Tag) {
    let ops = &plan.variants[instance % plan.variants.len()];
    let pairs = pair_ops(ops);
    let me = comm.rank();
    for (i, op) in ops.iter().enumerate() {
        match op {
            SkelOp::Send { to, bytes } => {
                let dst = grid.neighbor(me, *to);
                comm.send(dst, base_tag + i as Tag, vec![0u8; bytes.sample() as usize]);
            }
            SkelOp::Recv { from, .. } => {
                let src = grid.neighbor(me, *from);
                let j = pairs[i].expect("replay requires a match-closed plan");
                let _ = comm.recv_from(src, base_tag + j as Tag);
            }
            SkelOp::Barrier => comm.barrier(),
            SkelOp::Allreduce { .. } => {
                // Replay always takes the un-skipped path.
                let _ = comm.allreduce_sum_f64(0.0);
            }
            SkelOp::Allgather { bytes } => {
                let _ = comm.allgather_bytes(vec![0u8; bytes.sample() as usize]);
            }
            SkelOp::WinPut { to, bytes, .. } => {
                let dst = grid.neighbor(me, *to);
                comm.win_put(dst, i as u32, vec![0u8; bytes.sample() as usize]);
            }
            SkelOp::WinFence => {
                let _ = comm.win_fence();
            }
        }
    }
}

/// Renders the golden skeleton table (the protocol analogue of the LDM
/// budget table): one block per plan, one line per declared op.
pub fn render_skeleton_table(plans: &[CommPlan]) -> String {
    let mut out =
        String::from("Communication skeleton (declared per-phase plans, symbolic over all P)\n");
    for plan in plans {
        out.push('\n');
        out.push_str(&format!(
            "{}  [{} variant(s)]  {}\n",
            plan.phase,
            plan.variants.len(),
            plan.declared_in
        ));
        if !plan.note.is_empty() {
            out.push_str(&format!("  # {}\n", plan.note));
        }
        for (vi, ops) in plan.variants.iter().enumerate() {
            if plan.variants.len() > 1 {
                out.push_str(&format!("  variant {vi}:\n"));
            }
            for (i, op) in ops.iter().enumerate() {
                out.push_str(&format!("    {i:>2}  {}\n", op.render()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineModel, World, WorldConfig};

    fn shift_plan() -> CommPlan {
        let mut ops = Vec::new();
        for axis in 0..3 {
            for toward_high in [true, false] {
                ops.extend(SkelOp::shift(axis, toward_high, ByteSpec::Dynamic));
            }
        }
        CommPlan::new("test.shift", "here.rs", ops, "6 staged shifts")
    }

    #[test]
    fn staged_shifts_verify_clean() {
        let plan = shift_plan();
        assert!(verify_plan(&plan).is_empty());
        for p in [1, 2, 8, 27, 64] {
            let grid = CartGrid::for_ranks(p);
            let rep = simulate(&plan, &grid, 2).expect("lock-step completes");
            assert_eq!(rep.p2p_msgs, (p * 6 * 2) as u64);
        }
    }

    #[test]
    fn orphan_send_is_caught_symbolically_and_concretely() {
        let plan = CommPlan::new(
            "test.orphan",
            "here.rs",
            vec![SkelOp::Send {
                to: [1, 0, 0],
                bytes: ByteSpec::Exact(8),
            }],
            "",
        );
        let v = match_closure(&plan);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("orphan send"), "{}", v[0]);
        let sim = simulate(&plan, &CartGrid::for_ranks(8), 1);
        assert!(sim.unwrap_err().message.contains("orphan send"));
    }

    #[test]
    fn recv_before_send_deadlocks() {
        let d = [1i64, 0, 0];
        let plan = CommPlan::new(
            "test.cyclic",
            "here.rs",
            vec![
                SkelOp::Recv {
                    from: neg(d),
                    bytes: ByteSpec::Dynamic,
                },
                SkelOp::Send {
                    to: d,
                    bytes: ByteSpec::Dynamic,
                },
            ],
            "",
        );
        assert!(match_closure(&plan).is_empty(), "counts do balance");
        let v = deadlock_free(&plan);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("cyclic exchange order"));
        let sim = simulate(&plan, &CartGrid::for_ranks(8), 1);
        assert!(sim.unwrap_err().message.contains("deadlock"));
    }

    #[test]
    fn unfenced_put_is_caught() {
        let plan = CommPlan::new(
            "test.put",
            "here.rs",
            vec![SkelOp::WinPut {
                to: [0, 0, 1],
                bytes: ByteSpec::Records {
                    header: 0,
                    record: 14,
                },
                optional: true,
            }],
            "",
        );
        let v = fences_enclose(&plan);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unfenced put"));
        let sim = simulate(&plan, &CartGrid::for_ranks(2), 1);
        assert!(sim.unwrap_err().message.contains("unfenced put"));
        let fenced = CommPlan::new(
            "test.put_fenced",
            "here.rs",
            vec![
                SkelOp::WinPut {
                    to: [0, 0, 1],
                    bytes: ByteSpec::Exact(14),
                    optional: false,
                },
                SkelOp::WinFence,
            ],
            "",
        );
        assert!(verify_plan(&fenced).is_empty());
        assert!(simulate(&fenced, &CartGrid::for_ranks(8), 2).is_ok());
    }

    #[test]
    fn byte_specs_admit_expected_sizes() {
        assert!(ByteSpec::Exact(8).admits(8));
        assert!(!ByteSpec::Exact(8).admits(16));
        let rec = ByteSpec::Records {
            header: 4,
            record: 88,
        };
        assert!(rec.admits(4));
        assert!(rec.admits(4 + 88 * 3));
        assert!(!rec.admits(5));
        assert!(!rec.admits(0));
        assert!(ByteSpec::Dynamic.admits(12345));
    }

    #[test]
    fn pair_ops_pairs_kth_recv_with_kth_send() {
        let d = [0i64, 1, 0];
        let ops = vec![
            SkelOp::Send {
                to: d,
                bytes: ByteSpec::Dynamic,
            },
            SkelOp::Send {
                to: d,
                bytes: ByteSpec::Dynamic,
            },
            SkelOp::Recv {
                from: neg(d),
                bytes: ByteSpec::Dynamic,
            },
            SkelOp::Recv {
                from: neg(d),
                bytes: ByteSpec::Dynamic,
            },
        ];
        assert_eq!(pair_ops(&ops), vec![None, None, Some(0), Some(1)]);
    }

    #[test]
    fn replay_runs_clean_plans_through_a_real_world() {
        let plan = shift_plan();
        for p in [1, 2, 8] {
            let world = World::new(WorldConfig {
                model: MachineModel::free(),
                ..Default::default()
            });
            let grid = CartGrid::for_ranks(p);
            let sim = simulate(&plan, &grid, 1).unwrap();
            let out = world.run(p, |comm| {
                replay(comm, &grid, &plan, 0, 0x5348_0000);
                (comm.stats().msgs_sent, comm.stats().bytes_sent)
            });
            let msgs: u64 = out.iter().map(|r| r.result.0).sum();
            let bytes: u64 = out.iter().map(|r| r.result.1).sum();
            assert_eq!(msgs, sim.p2p_msgs, "replay matches lock-step census");
            assert_eq!(bytes, sim.p2p_bytes);
        }
    }

    #[test]
    fn replay_cross_checks_collectives_and_fences() {
        let plan = CommPlan::new(
            "test.mixed",
            "here.rs",
            vec![
                SkelOp::Allreduce {
                    bytes: ByteSpec::Exact(8),
                    uniform_skip: None,
                },
                SkelOp::WinPut {
                    to: [1, 0, 0],
                    bytes: ByteSpec::Exact(14),
                    optional: false,
                },
                SkelOp::WinFence,
                SkelOp::Barrier,
            ],
            "",
        );
        assert!(verify_plan(&plan).is_empty());
        let grid = CartGrid::for_ranks(4);
        let sim = simulate(&plan, &grid, 1).unwrap();
        let world = World::new(WorldConfig {
            model: MachineModel::free(),
            ..Default::default()
        });
        let out = world.run(4, |comm| {
            replay(comm, &grid, &plan, 0, 0);
            (comm.stats().collectives, comm.stats().puts)
        });
        let colls: u64 = out.iter().map(|r| r.result.0).sum();
        let puts: u64 = out.iter().map(|r| r.result.1).sum();
        // win_fence counts as 2 collectives in CommStats (epoch open +
        // close barriers); the lock-step model counts it once.
        assert_eq!(colls, sim.collectives + 4, "fence double-barrier");
        assert_eq!(puts, sim.puts);
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = shift_plan();
        let json = serde_json::to_string(&plan).unwrap();
        let back: CommPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn table_lists_every_phase_and_op() {
        let t = render_skeleton_table(&[shift_plan()]);
        assert!(t.contains("test.shift"));
        assert!(t.contains("send      -> (+1,+0,+0)"));
        assert!(t.contains("recv      <- (-1,-0,-0)") || t.contains("recv      <- (-1,+0,+0)"));
    }
}
