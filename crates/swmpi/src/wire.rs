//! Byte-level message packing.
//!
//! The paper packs ghost atoms/sites into contiguous send buffers before
//! each exchange (§2.1.1, §2.2.1). We mirror that with a small, explicit
//! little-endian packer rather than pulling in a serialization framework:
//! HPC codes control their wire layout, and byte counts feed directly into
//! the communication-volume experiment (Fig. 12).

/// Serialises primitive values into a growable little-endian byte buffer.
#[derive(Default, Debug)]
pub struct Packer {
    buf: Vec<u8>,
}

impl Packer {
    /// Creates an empty packer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a packer with preallocated capacity (bytes).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes packed so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been packed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the packer, returning the wire bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Packs a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Packs a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Packs an `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Packs a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Packs an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Packs a `usize` as a `u64` (portable width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Packs a slice of `f64`s (length-prefixed).
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Packs any [`Wire`] value.
    pub fn put<W: Wire>(&mut self, v: &W) {
        v.pack(self);
    }
}

/// Deserialises values from a byte buffer written by [`Packer`].
#[derive(Debug)]
pub struct Unpacker<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Unpacker<'a> {
    /// Wraps a received byte buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes remaining to be consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(
            self.pos + n <= self.buf.len(),
            "wire underflow: need {n} bytes, have {}",
            self.remaining()
        );
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Unpacks a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Unpacks a `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Unpacks an `i32`.
    pub fn get_i32(&mut self) -> i32 {
        i32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Unpacks a `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Unpacks an `f64`.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Unpacks a `usize` (stored as `u64`).
    pub fn get_usize(&mut self) -> usize {
        self.get_u64() as usize
    }

    /// Unpacks a length-prefixed `f64` slice.
    pub fn get_f64_vec(&mut self) -> Vec<f64> {
        let n = self.get_usize();
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Unpacks any [`Wire`] value.
    pub fn get<W: Wire>(&mut self) -> W {
        W::unpack(self)
    }
}

/// Types with a fixed, explicit wire representation.
pub trait Wire: Sized {
    /// Appends this value's wire bytes to `p`.
    fn pack(&self, p: &mut Packer);
    /// Reads one value back from `u`.
    fn unpack(u: &mut Unpacker<'_>) -> Self;
}

impl Wire for f64 {
    fn pack(&self, p: &mut Packer) {
        p.put_f64(*self);
    }
    fn unpack(u: &mut Unpacker<'_>) -> Self {
        u.get_f64()
    }
}

impl Wire for u32 {
    fn pack(&self, p: &mut Packer) {
        p.put_u32(*self);
    }
    fn unpack(u: &mut Unpacker<'_>) -> Self {
        u.get_u32()
    }
}

impl Wire for i32 {
    fn pack(&self, p: &mut Packer) {
        p.put_i32(*self);
    }
    fn unpack(u: &mut Unpacker<'_>) -> Self {
        u.get_i32()
    }
}

impl Wire for u64 {
    fn pack(&self, p: &mut Packer) {
        p.put_u64(*self);
    }
    fn unpack(u: &mut Unpacker<'_>) -> Self {
        u.get_u64()
    }
}

impl Wire for usize {
    fn pack(&self, p: &mut Packer) {
        p.put_usize(*self);
    }
    fn unpack(u: &mut Unpacker<'_>) -> Self {
        u.get_usize()
    }
}

impl<W: Wire> Wire for [W; 3] {
    fn pack(&self, p: &mut Packer) {
        for v in self {
            v.pack(p);
        }
    }
    fn unpack(u: &mut Unpacker<'_>) -> Self {
        [W::unpack(u), W::unpack(u), W::unpack(u)]
    }
}

impl<W: Wire> Wire for Vec<W> {
    fn pack(&self, p: &mut Packer) {
        p.put_usize(self.len());
        for v in self {
            v.pack(p);
        }
    }
    fn unpack(u: &mut Unpacker<'_>) -> Self {
        let n = u.get_usize();
        (0..n).map(|_| W::unpack(u)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut p = Packer::new();
        p.put_u8(7);
        p.put_u32(0xDEAD_BEEF);
        p.put_i32(-42);
        p.put_u64(u64::MAX - 1);
        p.put_f64(-1.5e300);
        p.put_usize(123_456);
        let bytes = p.finish();
        let mut u = Unpacker::new(&bytes);
        assert_eq!(u.get_u8(), 7);
        assert_eq!(u.get_u32(), 0xDEAD_BEEF);
        assert_eq!(u.get_i32(), -42);
        assert_eq!(u.get_u64(), u64::MAX - 1);
        assert_eq!(u.get_f64(), -1.5e300);
        assert_eq!(u.get_usize(), 123_456);
        assert!(u.is_exhausted());
    }

    #[test]
    fn round_trip_slices_and_arrays() {
        let mut p = Packer::new();
        p.put_f64_slice(&[1.0, 2.5, -3.0]);
        p.put(&[9u32, 8, 7]);
        p.put(&vec![1.0f64, 2.0]);
        let bytes = p.finish();
        let mut u = Unpacker::new(&bytes);
        assert_eq!(u.get_f64_vec(), vec![1.0, 2.5, -3.0]);
        assert_eq!(u.get::<[u32; 3]>(), [9, 8, 7]);
        assert_eq!(u.get::<Vec<f64>>(), vec![1.0, 2.0]);
        assert!(u.is_exhausted());
    }

    #[test]
    fn empty_f64_slice() {
        let mut p = Packer::new();
        p.put_f64_slice(&[]);
        let bytes = p.finish();
        let mut u = Unpacker::new(&bytes);
        assert!(u.get_f64_vec().is_empty());
        assert!(u.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "wire underflow")]
    fn underflow_panics() {
        let bytes = [1u8, 2];
        let mut u = Unpacker::new(&bytes);
        let _ = u.get_u64();
    }

    #[test]
    fn nan_payload_survives() {
        let mut p = Packer::new();
        p.put_f64(f64::NAN);
        let bytes = p.finish();
        let mut u = Unpacker::new(&bytes);
        assert!(u.get_f64().is_nan());
    }
}
