//! Pairwise communication matrices — who talks to whom, and how much.
//!
//! [`crate::stats::CommStats`] answers "how much did this rank move";
//! this module answers "to and from *whom*". The paper's communication
//! analysis (Fig. 12's on-demand volume, Fig. 16's coupled halo
//! pattern) is fundamentally pairwise: a rank exchanges ghosts with its
//! 6 (or 26) Cartesian neighbours, and skew in those flows is what load
//! balancing has to fix. Each [`crate::Comm`] carries a
//! [`MatrixRecorder`]; [`crate::world::RankOutput`] exposes the final
//! per-rank [`CommMatrix`]; [`WorldMatrix`] assembles the world view
//! and validates pairwise send/recv symmetry.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::Rank;

/// Accumulated flow between this rank and one peer, one direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairFlow {
    /// The other rank.
    pub peer: Rank,
    /// Messages (or puts) counted.
    pub msgs: u64,
    /// Payload bytes counted.
    pub bytes: u64,
}

/// One rank's pairwise communication record.
///
/// Two-sided traffic appears twice — in the sender's `sent` and the
/// receiver's `recvd` — which is what makes the world-level symmetry
/// check ([`WorldMatrix::validate_symmetry`]) possible. One-sided puts
/// likewise appear in the originator's `puts_out` and, once fenced, in
/// the window owner's `puts_in`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommMatrix {
    /// The rank this matrix belongs to.
    pub rank: Rank,
    /// Two-sided sends, by destination.
    pub sent: Vec<PairFlow>,
    /// Two-sided receives, by source.
    pub recvd: Vec<PairFlow>,
    /// One-sided puts issued, by destination window.
    pub puts_out: Vec<PairFlow>,
    /// One-sided puts drained from this rank's window, by originator.
    pub puts_in: Vec<PairFlow>,
}

/// Adds `from`'s flows into `into`, summing per peer.
fn merge_flows(into: &mut Vec<PairFlow>, from: &[PairFlow]) {
    for f in from {
        match into.iter_mut().find(|g| g.peer == f.peer) {
            Some(g) => {
                g.msgs += f.msgs;
                g.bytes += f.bytes;
            }
            None => into.push(*f),
        }
    }
    into.sort_unstable_by_key(|f| f.peer);
}

impl CommMatrix {
    /// Folds another record for the *same* rank into this one, summing
    /// per-peer flows. Used when one process runs several worlds (e.g.
    /// a weak-scaling sweep) and a rank id deposits more than once:
    /// each world's flows are pairwise symmetric, so the sum is too.
    pub fn merge(&mut self, other: &CommMatrix) {
        merge_flows(&mut self.sent, &other.sent);
        merge_flows(&mut self.recvd, &other.recvd);
        merge_flows(&mut self.puts_out, &other.puts_out);
        merge_flows(&mut self.puts_in, &other.puts_in);
    }

    /// Total bytes this rank pushed outward (sends + puts).
    pub fn bytes_out(&self) -> u64 {
        self.sent.iter().map(|f| f.bytes).sum::<u64>()
            + self.puts_out.iter().map(|f| f.bytes).sum::<u64>()
    }

    /// Distinct peers this rank pushed data to.
    pub fn out_degree(&self) -> usize {
        let mut peers: Vec<Rank> = self
            .sent
            .iter()
            .chain(&self.puts_out)
            .map(|f| f.peer)
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers.len()
    }
}

/// Mutable accumulator behind a [`crate::Comm`]; keyed maps keep the
/// per-message cost at one `BTreeMap` lookup over a handful of
/// neighbours.
#[derive(Debug, Default)]
pub struct MatrixRecorder {
    sent: BTreeMap<Rank, (u64, u64)>,
    recvd: BTreeMap<Rank, (u64, u64)>,
    puts_out: BTreeMap<Rank, (u64, u64)>,
    puts_in: BTreeMap<Rank, (u64, u64)>,
}

fn bump(m: &mut BTreeMap<Rank, (u64, u64)>, peer: Rank, bytes: u64) {
    let e = m.entry(peer).or_insert((0, 0));
    e.0 += 1;
    e.1 += bytes;
}

fn flows(m: &BTreeMap<Rank, (u64, u64)>) -> Vec<PairFlow> {
    m.iter()
        .map(|(&peer, &(msgs, bytes))| PairFlow { peer, msgs, bytes })
        .collect()
}

impl MatrixRecorder {
    /// Counts one two-sided send of `bytes` to `dst`.
    pub fn record_send(&mut self, dst: Rank, bytes: u64) {
        bump(&mut self.sent, dst, bytes);
    }

    /// Counts one two-sided receive of `bytes` from `src`.
    pub fn record_recv(&mut self, src: Rank, bytes: u64) {
        bump(&mut self.recvd, src, bytes);
    }

    /// Counts one one-sided put of `bytes` into `dst`'s window.
    pub fn record_put(&mut self, dst: Rank, bytes: u64) {
        bump(&mut self.puts_out, dst, bytes);
    }

    /// Counts one fenced put of `bytes` drained from `src`.
    pub fn record_put_in(&mut self, src: Rank, bytes: u64) {
        bump(&mut self.puts_in, src, bytes);
    }

    /// Copies the current state out as a serializable [`CommMatrix`].
    pub fn snapshot(&self, rank: Rank) -> CommMatrix {
        CommMatrix {
            rank,
            sent: flows(&self.sent),
            recvd: flows(&self.recvd),
            puts_out: flows(&self.puts_out),
            puts_in: flows(&self.puts_in),
        }
    }

    /// Clears everything (paired with `Comm::reset_accounting`).
    pub fn reset(&mut self) {
        *self = MatrixRecorder::default();
    }
}

/// Dense world-level view assembled from every rank's [`CommMatrix`].
///
/// Indexing is `[src * n + dst]` throughout.
#[derive(Debug, Clone)]
pub struct WorldMatrix {
    n: usize,
    /// Two-sided bytes as counted by the *sender*.
    pub sent_bytes: Vec<u64>,
    /// Two-sided messages as counted by the sender.
    pub sent_msgs: Vec<u64>,
    /// Two-sided bytes as counted by the *receiver*.
    pub recvd_bytes: Vec<u64>,
    /// Two-sided messages as counted by the receiver.
    pub recvd_msgs: Vec<u64>,
    /// One-sided bytes as counted by the originator.
    pub put_bytes: Vec<u64>,
    /// One-sided bytes as counted by the window owner.
    pub put_in_bytes: Vec<u64>,
}

impl WorldMatrix {
    /// Assembles the dense world matrix from per-rank records. The
    /// slice index is trusted over `m.rank` only for bounds; matrices
    /// must be passed in rank order (as `World::run` returns them).
    pub fn from_ranks(ranks: &[CommMatrix]) -> WorldMatrix {
        let n = ranks.len();
        let mut w = WorldMatrix {
            n,
            sent_bytes: vec![0; n * n],
            sent_msgs: vec![0; n * n],
            recvd_bytes: vec![0; n * n],
            recvd_msgs: vec![0; n * n],
            put_bytes: vec![0; n * n],
            put_in_bytes: vec![0; n * n],
        };
        for (r, m) in ranks.iter().enumerate() {
            for f in &m.sent {
                w.sent_bytes[r * n + f.peer] += f.bytes;
                w.sent_msgs[r * n + f.peer] += f.msgs;
            }
            for f in &m.recvd {
                w.recvd_bytes[f.peer * n + r] += f.bytes;
                w.recvd_msgs[f.peer * n + r] += f.msgs;
            }
            for f in &m.puts_out {
                w.put_bytes[r * n + f.peer] += f.bytes;
            }
            for f in &m.puts_in {
                w.put_in_bytes[f.peer * n + r] += f.bytes;
            }
        }
        w
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n
    }

    /// Bytes moved from `src` to `dst` over both mechanisms, sender's
    /// count.
    pub fn bytes(&self, src: Rank, dst: Rank) -> u64 {
        self.sent_bytes[src * self.n + dst] + self.put_bytes[src * self.n + dst]
    }

    /// Total bytes moved in the world (two-sided + one-sided).
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes.iter().sum::<u64>() + self.put_bytes.iter().sum::<u64>()
    }

    /// Checks pairwise symmetry: for every `(src, dst)` the sender's
    /// count of two-sided messages/bytes must equal the receiver's, and
    /// the put originator's bytes must equal the window owner's drained
    /// bytes. Returns the list of violations (empty = symmetric).
    ///
    /// Asymmetry means either a message was still in flight when the
    /// world ended (a protocol bug) or the accounting itself is wrong.
    pub fn validate_symmetry(&self) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        for src in 0..self.n {
            for dst in 0..self.n {
                let i = src * self.n + dst;
                if self.sent_bytes[i] != self.recvd_bytes[i]
                    || self.sent_msgs[i] != self.recvd_msgs[i]
                {
                    errs.push(format!(
                        "two-sided {src}->{dst}: sent {} msgs/{} B, received {} msgs/{} B",
                        self.sent_msgs[i],
                        self.sent_bytes[i],
                        self.recvd_msgs[i],
                        self.recvd_bytes[i]
                    ));
                }
                if self.put_bytes[i] != self.put_in_bytes[i] {
                    errs.push(format!(
                        "one-sided {src}->{dst}: put {} B, drained {} B",
                        self.put_bytes[i], self.put_in_bytes[i]
                    ));
                }
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Renders the byte matrix as one shaded line per source rank
    /// (`▁▂▃▄▅▆▇█` scaled to the largest pair; `·` = zero), preceded by
    /// a header. Readable up to a few dozen ranks in a terminal.
    pub fn heatline(&self) -> String {
        const SHADES: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = (0..self.n * self.n)
            .map(|i| self.sent_bytes[i] + self.put_bytes[i])
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!(
            "comm matrix ({} ranks, src rows -> dst cols, max pair {} B)\n",
            self.n, max
        ));
        for src in 0..self.n {
            out.push_str(&format!("  r{src:<3} "));
            for dst in 0..self.n {
                let b = self.bytes(src, dst);
                if b == 0 {
                    out.push('·');
                } else if max == 0 {
                    out.push(SHADES[0]);
                } else {
                    let level = ((b as u128 * (SHADES.len() as u128 - 1)) / max as u128) as usize;
                    out.push(SHADES[level]);
                }
            }
            let row: u64 = (0..self.n).map(|d| self.bytes(src, d)).sum();
            out.push_str(&format!("  {row} B out\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrices() -> Vec<CommMatrix> {
        // Rank 0 sends 100 B to 1; rank 1 receives it and puts 40 B to 0.
        let mut r0 = MatrixRecorder::default();
        r0.record_send(1, 100);
        r0.record_put_in(1, 40);
        let mut r1 = MatrixRecorder::default();
        r1.record_recv(0, 100);
        r1.record_put(0, 40);
        vec![r0.snapshot(0), r1.snapshot(1)]
    }

    #[test]
    fn recorder_accumulates_per_peer() {
        let mut rec = MatrixRecorder::default();
        rec.record_send(2, 10);
        rec.record_send(2, 5);
        rec.record_send(1, 7);
        let m = rec.snapshot(0);
        assert_eq!(
            m.sent,
            vec![
                PairFlow {
                    peer: 1,
                    msgs: 1,
                    bytes: 7
                },
                PairFlow {
                    peer: 2,
                    msgs: 2,
                    bytes: 15
                },
            ]
        );
        assert_eq!(m.bytes_out(), 22);
        assert_eq!(m.out_degree(), 2);
        rec.reset();
        assert_eq!(
            rec.snapshot(0),
            CommMatrix {
                rank: 0,
                ..Default::default()
            }
        );
    }

    #[test]
    fn world_matrix_is_symmetric_for_matched_flows() {
        let w = WorldMatrix::from_ranks(&matrices());
        assert_eq!(w.bytes(0, 1), 100);
        assert_eq!(w.bytes(1, 0), 40);
        assert_eq!(w.total_bytes(), 140);
        w.validate_symmetry().expect("matched flows are symmetric");
    }

    #[test]
    fn world_matrix_reports_asymmetry() {
        let mut ms = matrices();
        ms[1].recvd[0].bytes = 99; // receiver under-counts
        let errs = WorldMatrix::from_ranks(&ms)
            .validate_symmetry()
            .unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("0->1"), "{errs:?}");
    }

    #[test]
    fn asymmetric_msg_count_is_a_violation_even_with_equal_bytes() {
        // One 100 B send observed, but the receiver counted it as two
        // 50 B messages — bytes balance, msgs don't.
        let mut ms = matrices();
        ms[1].recvd[0].msgs = 2;
        let errs = WorldMatrix::from_ranks(&ms)
            .validate_symmetry()
            .unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("two-sided 0->1"), "{errs:?}");
        assert!(errs[0].contains("sent 1 msgs"), "{errs:?}");
        assert!(errs[0].contains("received 2 msgs"), "{errs:?}");
    }

    #[test]
    fn unfenced_put_is_a_one_sided_violation() {
        // Rank 1 issued the put but rank 0 never drained it (no fence
        // before the world ended).
        let mut ms = matrices();
        ms[0].puts_in.clear();
        let errs = WorldMatrix::from_ranks(&ms)
            .validate_symmetry()
            .unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("one-sided 1->0"), "{errs:?}");
        assert!(errs[0].contains("put 40 B, drained 0 B"), "{errs:?}");
    }

    #[test]
    fn every_broken_pair_is_reported_not_just_the_first() {
        let mut ms = matrices();
        ms[1].recvd[0].bytes = 99; // two-sided mismatch 0->1
        ms[0].puts_in.clear(); // one-sided mismatch 1->0
        let errs = WorldMatrix::from_ranks(&ms)
            .validate_symmetry()
            .unwrap_err();
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("two-sided 0->1")));
        assert!(errs.iter().any(|e| e.contains("one-sided 1->0")));
    }

    #[test]
    fn heatline_marks_zero_and_max() {
        let w = WorldMatrix::from_ranks(&matrices());
        let h = w.heatline();
        assert!(h.contains('█'), "max pair gets full shade: {h}");
        assert!(h.contains('·'), "zero pairs dotted: {h}");
        assert!(h.contains("100 B out"));
    }

    #[test]
    fn heatline_renders_asymmetric_matrices_from_sender_counts() {
        // An asymmetric (lost-message) matrix must still render — the
        // heatline is a debugging aid precisely when symmetry fails —
        // and it shades from the *sender's* counts, unperturbed by the
        // receiver's missing record.
        let mut ms = matrices();
        ms[1].recvd.clear();
        let w = WorldMatrix::from_ranks(&ms);
        assert!(w.validate_symmetry().is_err());
        let h = w.heatline();
        assert!(h.contains("max pair 100 B"), "{h}");
        assert!(h.contains("100 B out"), "{h}");
        assert!(h.contains("40 B out"), "{h}");
        assert_eq!(h.lines().count(), 3, "{h}");
    }

    #[test]
    fn merge_sums_per_peer_and_keeps_symmetry() {
        // Same rank 0 observed in two "worlds": self-exchange alone,
        // then traffic to rank 1.
        let mut a = MatrixRecorder::default();
        a.record_send(0, 50);
        a.record_recv(0, 50);
        let mut b = MatrixRecorder::default();
        b.record_send(0, 10);
        b.record_send(1, 100);
        let mut m = a.snapshot(0);
        m.merge(&b.snapshot(0));
        assert_eq!(
            m.sent,
            vec![
                PairFlow {
                    peer: 0,
                    msgs: 2,
                    bytes: 60
                },
                PairFlow {
                    peer: 1,
                    msgs: 1,
                    bytes: 100
                },
            ]
        );
        assert_eq!(m.recvd.len(), 1);
        assert_eq!(m.bytes_out(), 160);
    }

    #[test]
    fn comm_matrix_serializes_round_trip() {
        let m = matrices().remove(0);
        let json = serde_json::to_string(&m).unwrap();
        let back: CommMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
