//! Tag-matched point-to-point message queues.
//!
//! Each rank owns one [`Mailbox`]. Senders push [`Envelope`]s; receivers
//! block until a message matching `(source, tag)` is available, exactly
//! like `MPI_Recv`. [`Mailbox::probe`] mirrors `MPI_Probe`: it blocks
//! until a matching message exists and returns its metadata *without*
//! dequeuing it — the mechanism the paper's on-demand KMC exchange uses
//! to discover runtime-determined message sizes (§2.2.1).

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

use crate::{Rank, Tag};

/// Matches either a specific source rank or any source (`MPI_ANY_SOURCE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Match messages from exactly this rank.
    Of(Rank),
    /// Match messages from any rank.
    Any,
}

impl Source {
    fn matches(&self, src: Rank) -> bool {
        match self {
            Source::Of(r) => *r == src,
            Source::Any => true,
        }
    }
}

/// A queued message.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Virtual time at which the sender issued the message.
    pub depart_time: f64,
    /// Per-sender message ordinal: `(src, seq)` is the globally unique
    /// match id joining this send with its receive in a causal trace.
    pub seq: u64,
    /// Sender's Lamport clock at departure; the receiver reconciles to
    /// `max(local, lamport) + 1`.
    pub lamport: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Metadata returned by a probe, mirroring `MPI_Status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgInfo {
    /// Sending rank.
    pub src: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload size in bytes.
    pub len: usize,
}

#[derive(Default)]
struct Queue {
    msgs: VecDeque<Envelope>,
}

impl Queue {
    fn position(&self, source: Source, tag: Tag) -> Option<usize> {
        self.msgs
            .iter()
            .position(|m| source.matches(m.src) && m.tag == tag)
    }
}

/// One rank's incoming message queue.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<Queue>,
    cond: Condvar,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a message (called by the *sending* rank's thread).
    pub fn deliver(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.msgs.push_back(env);
        self.cond.notify_all();
    }

    /// Blocks until a message matching `(source, tag)` arrives, then
    /// dequeues and returns it. Messages between a fixed (src, tag) pair
    /// are delivered in FIFO order.
    pub fn recv(&self, source: Source, tag: Tag) -> Envelope {
        let mut q = self.queue.lock();
        loop {
            if let Some(i) = q.position(source, tag) {
                return q.msgs.remove(i).expect("position was valid");
            }
            self.cond.wait(&mut q);
        }
    }

    /// Blocks until a message matching `(source, tag)` is queued and
    /// returns its metadata without consuming it (`MPI_Probe`).
    pub fn probe(&self, source: Source, tag: Tag) -> MsgInfo {
        let mut q = self.queue.lock();
        loop {
            if let Some(i) = q.position(source, tag) {
                let m = &q.msgs[i];
                return MsgInfo {
                    src: m.src,
                    tag: m.tag,
                    len: m.payload.len(),
                };
            }
            self.cond.wait(&mut q);
        }
    }

    /// Non-blocking probe (`MPI_Iprobe`): returns metadata if a matching
    /// message is already queued.
    pub fn try_probe(&self, source: Source, tag: Tag) -> Option<MsgInfo> {
        let q = self.queue.lock();
        q.position(source, tag).map(|i| {
            let m = &q.msgs[i];
            MsgInfo {
                src: m.src,
                tag: m.tag,
                len: m.payload.len(),
            }
        })
    }

    /// Number of currently queued messages (diagnostics / leak tests).
    pub fn pending(&self) -> usize {
        self.queue.lock().msgs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(src: Rank, tag: Tag, payload: Vec<u8>) -> Envelope {
        Envelope {
            src,
            tag,
            depart_time: 0.0,
            seq: 0,
            lamport: 0,
            payload,
        }
    }

    #[test]
    fn recv_matches_tag_and_source() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 10, vec![1]));
        mb.deliver(env(2, 20, vec![2]));
        mb.deliver(env(1, 20, vec![3]));
        let m = mb.recv(Source::Of(2), 20);
        assert_eq!(m.payload, vec![2]);
        let m = mb.recv(Source::Of(1), 20);
        assert_eq!(m.payload, vec![3]);
        let m = mb.recv(Source::Any, 10);
        assert_eq!(m.payload, vec![1]);
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn fifo_per_source_tag_pair() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 5, vec![1]));
        mb.deliver(env(0, 5, vec![2]));
        mb.deliver(env(0, 5, vec![3]));
        assert_eq!(mb.recv(Source::Of(0), 5).payload, vec![1]);
        assert_eq!(mb.recv(Source::Of(0), 5).payload, vec![2]);
        assert_eq!(mb.recv(Source::Of(0), 5).payload, vec![3]);
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.deliver(env(3, 7, vec![0; 42]));
        let info = mb.probe(Source::Any, 7);
        assert_eq!(
            info,
            MsgInfo {
                src: 3,
                tag: 7,
                len: 42
            }
        );
        assert_eq!(mb.pending(), 1);
        let m = mb.recv(Source::Of(info.src), info.tag);
        assert_eq!(m.payload.len(), 42);
    }

    #[test]
    fn try_probe_none_when_empty() {
        let mb = Mailbox::new();
        assert!(mb.try_probe(Source::Any, 0).is_none());
        mb.deliver(env(0, 1, vec![]));
        assert!(mb.try_probe(Source::Any, 0).is_none());
        assert!(mb.try_probe(Source::Any, 1).is_some());
    }

    #[test]
    fn blocking_recv_wakes_on_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.recv(Source::Any, 9).payload);
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.deliver(env(4, 9, vec![99]));
        assert_eq!(h.join().unwrap(), vec![99]);
    }
}
