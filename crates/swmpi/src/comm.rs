//! The per-rank communicator handle.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use crate::collectives::{Acc, CollectiveHub};
use crate::mailbox::{Envelope, Mailbox, MsgInfo, Source};
use crate::matrix::{CommMatrix, MatrixRecorder};
use crate::model::MachineModel;
use crate::onesided::{PutRecord, WindowHub};
use crate::stats::CommStats;
use crate::trace::{self, CommEvent, CommOp, OpTimer};
use crate::{Rank, Tag};

/// State shared by every rank of one [`crate::World`].
pub(crate) struct Shared {
    pub mailboxes: Vec<Arc<Mailbox>>,
    pub hub: CollectiveHub,
    pub windows: WindowHub,
    pub model: MachineModel,
}

/// A rank's communicator: the analogue of `MPI_COMM_WORLD` plus the
/// rank's virtual clock and accounting.
///
/// `Comm` is deliberately `!Sync` (interior `Cell`s): each rank thread
/// owns exactly one.
pub struct Comm {
    rank: Rank,
    size: usize,
    shared: Arc<Shared>,
    clock: Cell<f64>,
    stats: RefCell<CommStats>,
    matrix: RefCell<MatrixRecorder>,
    /// Lamport clock: bumped on every communication event, stamped
    /// into envelopes/puts, reconciled to the participant maximum by
    /// receives and collectives. Pure metadata — never read by the
    /// physics or the cost model.
    lamport: Cell<u64>,
    /// Per-rank outgoing message ordinal; `(rank, send_seq)` is the
    /// globally unique match id of each send/put.
    send_seq: Cell<u64>,
}

impl Comm {
    pub(crate) fn new(rank: Rank, size: usize, shared: Arc<Shared>) -> Self {
        Self {
            rank,
            size,
            shared,
            clock: Cell::new(0.0),
            stats: RefCell::new(CommStats::default()),
            matrix: RefCell::new(MatrixRecorder::default()),
            lamport: Cell::new(0),
            send_seq: Cell::new(0),
        }
    }

    /// This rank's id, `0..size`.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine model charging virtual time.
    pub fn model(&self) -> &MachineModel {
        &self.shared.model
    }

    /// Current virtual time of this rank (seconds).
    pub fn clock(&self) -> f64 {
        self.clock.get()
    }

    /// Current Lamport clock of this rank.
    pub fn lamport(&self) -> u64 {
        self.lamport.get()
    }

    /// Snapshot of this rank's accounting counters.
    pub fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    /// Snapshot of this rank's pairwise communication matrix.
    pub fn comm_matrix(&self) -> CommMatrix {
        self.matrix.borrow().snapshot(self.rank)
    }

    /// Resets counters, the comm matrix, and clock (e.g. after a
    /// warm-up phase, so a measured window excludes initialisation — as
    /// benchmark papers do).
    pub fn reset_accounting(&self) {
        self.clock.set(0.0);
        *self.stats.borrow_mut() = CommStats::default();
        self.matrix.borrow_mut().reset();
    }

    /// Folds on-demand exchange savings accounting into this rank's
    /// counters. Byte movement is still charged by the send/put calls
    /// themselves — this only records the census and the analytic
    /// full-ghost baseline the protocol avoided.
    pub fn note_exchange_savings(&self, s: crate::stats::ExchangeSavings) {
        let mut stats = self.stats.borrow_mut();
        stats.savings = stats.savings.merge(&s);
    }

    /// Charges `seconds` of computation to the virtual clock.
    pub fn tick_compute(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute charge");
        self.clock.set(self.clock.get() + seconds);
        self.stats.borrow_mut().compute_time += seconds;
    }

    fn advance_comm(&self, to: f64) {
        let now = self.clock.get();
        if to > now {
            self.stats.borrow_mut().comm_time += to - now;
            self.clock.set(to);
        }
    }

    // ------------------------------------------------------------------
    // Two-sided
    // ------------------------------------------------------------------

    /// Sends `payload` to `dst` with `tag` (like `MPI_Send` with eager
    /// buffering: never blocks).
    pub fn send(&self, dst: Rank, tag: Tag, payload: Vec<u8>) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        let timer = OpTimer::start(self.clock.get());
        let overhead = self.shared.model.send_overhead;
        let depart = self.clock.get() + overhead;
        let bytes = payload.len() as u64;
        {
            let mut s = self.stats.borrow_mut();
            s.msgs_sent += 1;
            s.bytes_sent += bytes;
            s.comm_time += overhead;
        }
        self.matrix.borrow_mut().record_send(dst, bytes);
        self.clock.set(depart);
        let seq = self.send_seq.get() + 1;
        self.send_seq.set(seq);
        let lamport = self.lamport.get() + 1;
        self.lamport.set(lamport);
        self.shared.mailboxes[dst].deliver(Envelope {
            src: self.rank,
            tag,
            depart_time: depart,
            seq,
            lamport,
            payload,
        });
        if trace::tracing() {
            trace::emit(&CommEvent {
                op: CommOp::Send,
                rank: self.rank,
                peer: Some(dst),
                tag,
                bytes,
                match_src: Some(self.rank),
                match_seq: seq,
                lamport,
                vt_enter: timer.vt_enter,
                vt_exit: depart,
                wall_ns: timer.elapsed_ns(),
            });
        }
    }

    /// Blocks until a message matching `(src, tag)` arrives and returns
    /// its payload.
    pub fn recv(&self, src: Source, tag: Tag) -> Vec<u8> {
        let timer = OpTimer::start(self.clock.get());
        let env = self.shared.mailboxes[self.rank].recv(src, tag);
        self.finish_recv(env, timer)
    }

    /// Receives from a specific rank (shorthand for `recv(Source::Of(..))`).
    pub fn recv_from(&self, src: Rank, tag: Tag) -> Vec<u8> {
        self.recv(Source::Of(src), tag)
    }

    fn finish_recv(&self, env: Envelope, timer: OpTimer) -> Vec<u8> {
        let arrival = env.depart_time + self.shared.model.p2p_time(env.payload.len(), self.size);
        self.advance_comm(arrival);
        let bytes = env.payload.len() as u64;
        let mut s = self.stats.borrow_mut();
        s.msgs_recv += 1;
        s.bytes_recv += bytes;
        drop(s);
        self.matrix.borrow_mut().record_recv(env.src, bytes);
        let lamport = self.lamport.get().max(env.lamport) + 1;
        self.lamport.set(lamport);
        if trace::tracing() {
            trace::emit(&CommEvent {
                op: CommOp::Recv,
                rank: self.rank,
                peer: Some(env.src),
                tag: env.tag,
                bytes,
                match_src: Some(env.src),
                match_seq: env.seq,
                lamport,
                vt_enter: timer.vt_enter,
                vt_exit: self.clock.get(),
                wall_ns: timer.elapsed_ns(),
            });
        }
        env.payload
    }

    /// Blocks until a matching message is queued; returns metadata
    /// without consuming the message (`MPI_Probe`).
    pub fn probe(&self, src: Source, tag: Tag) -> MsgInfo {
        self.shared.mailboxes[self.rank].probe(src, tag)
    }

    /// Non-blocking probe for any source on `tag`.
    pub fn try_probe_any(&self, tag: Tag) -> Option<MsgInfo> {
        self.shared.mailboxes[self.rank].try_probe(Source::Any, tag)
    }

    /// Messages currently queued for this rank (diagnostics).
    pub fn pending_messages(&self) -> usize {
        self.shared.mailboxes[self.rank].pending()
    }

    /// Paired exchange: sends to `dst` and receives from `src` on the
    /// same tag (`MPI_Sendrecv`) — the halo-exchange workhorse.
    pub fn sendrecv(&self, dst: Rank, src: Rank, tag: Tag, payload: Vec<u8>) -> Vec<u8> {
        self.send(dst, tag, payload);
        self.recv_from(src, tag)
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    fn collective(&self, mine: Acc, cost: f64, op: CommOp, bytes: u64) -> Acc {
        let timer = OpTimer::start(self.clock.get());
        let (acc, clock_max, lamport_max, generation) =
            self.shared
                .hub
                .collect(mine, self.clock.get(), self.lamport.get());
        self.advance_comm(clock_max + cost);
        self.stats.borrow_mut().collectives += 1;
        let lamport = lamport_max + 1;
        self.lamport.set(lamport);
        if trace::tracing() {
            trace::emit(&CommEvent {
                op,
                rank: self.rank,
                peer: None,
                tag: 0,
                bytes,
                match_src: None,
                match_seq: generation,
                lamport,
                vt_enter: timer.vt_enter,
                vt_exit: self.clock.get(),
                wall_ns: timer.elapsed_ns(),
            });
        }
        acc
    }

    /// Global synchronisation point; also reconciles virtual clocks.
    pub fn barrier(&self) {
        let cost = self.shared.model.barrier_time(self.size);
        self.collective(Acc::Barrier, cost, CommOp::Barrier, 0);
    }

    /// Allreduce-sum over one `f64`.
    pub fn allreduce_sum_f64(&self, v: f64) -> f64 {
        let cost = self.shared.model.allreduce_time(8, self.size);
        match self.collective(Acc::SumF64(v), cost, CommOp::Allreduce, 8) {
            Acc::SumF64(s) => s,
            _ => unreachable!(),
        }
    }

    /// Allreduce-min over one `f64` (used for the global KMC time step).
    pub fn allreduce_min_f64(&self, v: f64) -> f64 {
        let cost = self.shared.model.allreduce_time(8, self.size);
        match self.collective(Acc::MinF64(v), cost, CommOp::Allreduce, 8) {
            Acc::MinF64(s) => s,
            _ => unreachable!(),
        }
    }

    /// Allreduce-max over one `f64`.
    pub fn allreduce_max_f64(&self, v: f64) -> f64 {
        let cost = self.shared.model.allreduce_time(8, self.size);
        match self.collective(Acc::MaxF64(v), cost, CommOp::Allreduce, 8) {
            Acc::MaxF64(s) => s,
            _ => unreachable!(),
        }
    }

    /// Allreduce-sum over one `u64`.
    pub fn allreduce_sum_u64(&self, v: u64) -> u64 {
        let cost = self.shared.model.allreduce_time(8, self.size);
        match self.collective(Acc::SumU64(v), cost, CommOp::Allreduce, 8) {
            Acc::SumU64(s) => s,
            _ => unreachable!(),
        }
    }

    /// Allreduce-max over one `u64`.
    pub fn allreduce_max_u64(&self, v: u64) -> u64 {
        let cost = self.shared.model.allreduce_time(8, self.size);
        match self.collective(Acc::MaxU64(v), cost, CommOp::Allreduce, 8) {
            Acc::MaxU64(s) => s,
            _ => unreachable!(),
        }
    }

    /// Allgather of opaque byte buffers; returns one buffer per rank.
    pub fn allgather_bytes(&self, mine: Vec<u8>) -> Vec<Vec<u8>> {
        let len = mine.len();
        let mut slots = vec![None; self.size];
        slots[self.rank] = Some(mine);
        let cost = self.shared.model.allgather_time(len, self.size);
        match self.collective(Acc::Gather(slots), cost, CommOp::Allgather, len as u64) {
            Acc::Gather(slots) => slots
                .into_iter()
                .map(|s| s.expect("every rank contributed"))
                .collect(),
            _ => unreachable!(),
        }
    }

    // ------------------------------------------------------------------
    // One-sided
    // ------------------------------------------------------------------

    /// Deposits `payload` into `dst`'s window under `region`
    /// (`MPI_Put`-style; completion is deferred to the next fence).
    pub fn win_put(&self, dst: Rank, region: u32, payload: Vec<u8>) {
        assert!(dst < self.size, "put to rank {dst} of {}", self.size);
        let timer = OpTimer::start(self.clock.get());
        let overhead = self.shared.model.send_overhead;
        let depart = self.clock.get() + overhead;
        let bytes = payload.len() as u64;
        {
            let mut s = self.stats.borrow_mut();
            s.puts += 1;
            s.bytes_put += bytes;
            s.comm_time += overhead;
        }
        self.matrix.borrow_mut().record_put(dst, bytes);
        self.clock.set(depart);
        let seq = self.send_seq.get() + 1;
        self.send_seq.set(seq);
        let lamport = self.lamport.get() + 1;
        self.lamport.set(lamport);
        self.shared.windows.put(
            dst,
            PutRecord {
                src: self.rank,
                region,
                depart_time: depart,
                seq,
                lamport,
                payload,
            },
        );
        if trace::tracing() {
            trace::emit(&CommEvent {
                op: CommOp::Put,
                rank: self.rank,
                peer: Some(dst),
                tag: region,
                bytes,
                match_src: Some(self.rank),
                match_seq: seq,
                lamport,
                vt_enter: timer.vt_enter,
                vt_exit: depart,
                wall_ns: timer.elapsed_ns(),
            });
        }
    }

    /// Completes the put epoch: global synchronisation, then returns
    /// every record other ranks deposited into this rank's window.
    ///
    /// Two barriers delimit the epoch: the first guarantees every rank's
    /// puts are deposited before any rank drains; the second guarantees
    /// every rank has drained before anyone issues next-epoch puts
    /// (otherwise a fast rank's new puts could leak into a slow rank's
    /// current drain).
    pub fn win_fence(&self) -> Vec<PutRecord> {
        let cost = self.shared.model.barrier_time(self.size);
        self.collective(Acc::Barrier, cost, CommOp::Fence, 0);
        let recs = self.shared.windows.drain(self.rank);
        // Charge arrival bandwidth for what landed in our window.
        let mut latest = self.clock.get();
        {
            let mut m = self.matrix.borrow_mut();
            for r in &recs {
                m.record_put_in(r.src, r.payload.len() as u64);
            }
        }
        for r in &recs {
            let t = r.depart_time + self.shared.model.p2p_time(r.payload.len(), self.size);
            latest = latest.max(t);
        }
        self.advance_comm(latest);
        // One Lamport tick (and, when tracing, one match event) per
        // drained put, completing the (src, seq) pair its originator
        // opened in `win_put`.
        for r in &recs {
            let lamport = self.lamport.get().max(r.lamport) + 1;
            self.lamport.set(lamport);
            if trace::tracing() {
                trace::emit(&CommEvent {
                    op: CommOp::PutIn,
                    rank: self.rank,
                    peer: Some(r.src),
                    tag: r.region,
                    bytes: r.payload.len() as u64,
                    match_src: Some(r.src),
                    match_seq: r.seq,
                    lamport,
                    vt_enter: r.depart_time,
                    vt_exit: r.depart_time + self.shared.model.p2p_time(r.payload.len(), self.size),
                    wall_ns: 0,
                });
            }
        }
        self.collective(Acc::Barrier, 0.0, CommOp::Fence, 0);
        recs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn free_world() -> World {
        World::new(WorldConfig {
            model: MachineModel::free(),
            stack_bytes: 1 << 20,
        })
    }

    #[test]
    fn ring_pass() {
        let out = free_world().run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 0, vec![comm.rank() as u8]);
            let got = comm.recv_from(prev, 0);
            got[0] as usize
        });
        let results: Vec<_> = out.into_iter().map(|r| r.result).collect();
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn sendrecv_halo_style() {
        let out = free_world().run(2, |comm| {
            let other = 1 - comm.rank();

            comm.sendrecv(other, other, 7, vec![comm.rank() as u8; 5])
        });
        assert_eq!(out[0].result, vec![1u8; 5]);
        assert_eq!(out[1].result, vec![0u8; 5]);
    }

    #[test]
    fn allreduce_variants() {
        let out = free_world().run(5, |comm| {
            let s = comm.allreduce_sum_f64(comm.rank() as f64);
            let mn = comm.allreduce_min_f64(comm.rank() as f64 + 1.0);
            let mx = comm.allreduce_max_u64(comm.rank() as u64);
            (s, mn, mx)
        });
        for r in out {
            assert_eq!(r.result, (10.0, 1.0, 4));
        }
    }

    #[test]
    fn allgather_bytes_all_ranks() {
        let out = free_world().run(3, |comm| {
            comm.allgather_bytes(vec![comm.rank() as u8; comm.rank() + 1])
        });
        for r in out {
            assert_eq!(r.result[2], vec![2u8; 3]);
        }
    }

    #[test]
    fn stats_count_bytes_exactly() {
        let out = free_world().run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0; 100]);
                comm.send(1, 0, vec![0; 24]);
            } else {
                comm.recv_from(0, 0);
                comm.recv_from(0, 0);
            }
            comm.barrier();
            comm.stats()
        });
        assert_eq!(out[0].result.bytes_sent, 124);
        assert_eq!(out[0].result.msgs_sent, 2);
        assert_eq!(out[1].result.bytes_recv, 124);
        assert_eq!(out[1].result.msgs_recv, 2);
    }

    #[test]
    fn virtual_clock_advances_with_model() {
        let world = World::new(WorldConfig {
            model: MachineModel::taihulight(),
            stack_bytes: 1 << 20,
        });
        let out = world.run(2, |comm| {
            if comm.rank() == 0 {
                comm.tick_compute(1.0e-3);
                comm.send(1, 0, vec![0; 1 << 20]);
            } else {
                comm.recv_from(0, 0);
            }
            comm.barrier();
            comm.clock()
        });
        // Receiver waited for sender's compute + transfer: clock must
        // exceed 1 ms plus ~175 µs of bandwidth time.
        assert!(out[1].result > 1.1e-3, "clock = {}", out[1].result);
        // Barrier reconciles: clocks equal afterwards (up to identical
        // barrier charge).
        assert!((out[0].result - out[1].result).abs() < 1e-12);
    }

    #[test]
    fn one_sided_put_fence() {
        let out = free_world().run(3, |comm| {
            let dst = (comm.rank() + 1) % 3;
            comm.win_put(dst, 9, vec![comm.rank() as u8]);
            let recs = comm.win_fence();
            (recs.len(), recs[0].src, recs[0].payload.clone())
        });
        assert_eq!(out[0].result, (1, 2, vec![2u8]));
        assert_eq!(out[1].result, (1, 0, vec![0u8]));
    }

    #[test]
    fn probe_then_recv_dynamic_size() {
        let out = free_world().run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, vec![7; 17]);
                0
            } else {
                let info = comm.probe(Source::Any, 3);
                assert_eq!(info.len, 17);
                comm.recv_from(info.src, info.tag).len()
            }
        });
        assert_eq!(out[1].result, 17);
    }

    #[test]
    #[should_panic(expected = "put to rank")]
    fn win_put_to_invalid_rank_panics() {
        free_world().run(1, |comm| {
            comm.win_put(5, 0, vec![1]);
        });
    }

    #[test]
    fn empty_fence_returns_nothing_everywhere() {
        let out = free_world().run(3, |comm| comm.win_fence().len());
        assert!(out.iter().all(|r| r.result == 0));
    }

    #[test]
    fn consecutive_fences_do_not_leak_epochs() {
        let out = free_world().run(2, |comm| {
            let other = 1 - comm.rank();
            comm.win_put(other, 0, vec![comm.rank() as u8]);
            let first = comm.win_fence().len();
            // Nothing put this epoch: the fence must come back empty.
            let second = comm.win_fence().len();
            (first, second)
        });
        assert!(out.iter().all(|r| r.result == (1, 0)));
    }

    #[test]
    fn reset_accounting_clears() {
        let out = free_world().run(2, |comm| {
            comm.tick_compute(5.0);
            comm.barrier();
            comm.reset_accounting();
            (comm.clock(), comm.stats().compute_time)
        });
        assert_eq!(out[0].result, (0.0, 0.0));
    }
}
