//! LogP-style communication cost model and virtual time.
//!
//! The paper reports times measured on Sunway TaihuLight. We cannot run
//! there, so each rank carries a deterministic *virtual clock*: computation
//! advances it by work-derived charges (see `mmds-sunway` and the engine
//! crates), and every communication operation advances it through this
//! model. The constants default to TaihuLight-like values and are
//! calibrated once in `crates/perfmodel`; EXPERIMENTS.md records the
//! substitution per figure.

use serde::{Deserialize, Serialize};

/// Machine constants for the communication time model.
///
/// A point-to-point message of `b` bytes costs
/// `alpha * contention(P) + b * beta`, and a tree collective over `P`
/// ranks costs `ceil(log2 P)` such latency terms (plus bandwidth terms
/// for payload-carrying collectives).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MachineModel {
    /// Point-to-point latency (seconds). TaihuLight MPI ≈ 1–2 µs.
    pub net_alpha: f64,
    /// Inverse network bandwidth (seconds per byte). TaihuLight ≈ 6 GB/s
    /// effective per node pair.
    pub net_beta: f64,
    /// Contention growth coefficient: effective latency is multiplied by
    /// `1 + contention * log2(P)` to model fat-tree/torus congestion at
    /// scale (the paper observes this on 208,000 cores, Fig. 11).
    pub contention: f64,
    /// Fixed software overhead charged to the *sender* per message
    /// (seconds). Models packing + injection.
    pub send_overhead: f64,
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::taihulight()
    }
}

impl MachineModel {
    /// TaihuLight-like constants used throughout the reproduction.
    pub fn taihulight() -> Self {
        Self {
            net_alpha: 1.5e-6,
            net_beta: 1.0 / 6.0e9,
            contention: 0.02,
            send_overhead: 4.0e-7,
        }
    }

    /// A zero-cost model: virtual clocks only advance via explicit compute
    /// charges. Useful in unit tests that assert functional behaviour.
    pub fn free() -> Self {
        Self {
            net_alpha: 0.0,
            net_beta: 0.0,
            contention: 0.0,
            send_overhead: 0.0,
        }
    }

    /// Effective latency for one message when `p` ranks share the fabric.
    pub fn latency(&self, p: usize) -> f64 {
        self.net_alpha * (1.0 + self.contention * log2_ceil(p) as f64)
    }

    /// End-to-end transfer time for a `bytes`-byte point-to-point message
    /// in a world of `p` ranks.
    pub fn p2p_time(&self, bytes: usize, p: usize) -> f64 {
        self.latency(p) + bytes as f64 * self.net_beta
    }

    /// Cost of a barrier over `p` ranks (latency tree up + down).
    pub fn barrier_time(&self, p: usize) -> f64 {
        2.0 * self.latency(p) * log2_ceil(p) as f64
    }

    /// Cost of an allreduce of `bytes` over `p` ranks.
    pub fn allreduce_time(&self, bytes: usize, p: usize) -> f64 {
        self.barrier_time(p) + 2.0 * bytes as f64 * self.net_beta * log2_ceil(p) as f64
    }

    /// Cost of an allgather where each rank contributes `bytes` bytes.
    pub fn allgather_time(&self, bytes: usize, p: usize) -> f64 {
        self.latency(p) * log2_ceil(p) as f64
            + (p.saturating_sub(1)) as f64 * bytes as f64 * self.net_beta
    }
}

/// `ceil(log2(p))`, with `log2_ceil(0) == 0` and `log2_ceil(1) == 0`.
pub fn log2_ceil(p: usize) -> u32 {
    if p <= 1 {
        0
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn p2p_monotone_in_bytes() {
        let m = MachineModel::taihulight();
        assert!(m.p2p_time(10, 16) < m.p2p_time(10_000, 16));
    }

    #[test]
    fn latency_grows_with_ranks() {
        let m = MachineModel::taihulight();
        assert!(m.latency(2) < m.latency(100_000));
    }

    #[test]
    fn free_model_is_zero() {
        let m = MachineModel::free();
        assert_eq!(m.p2p_time(1 << 20, 4096), 0.0);
        assert_eq!(m.barrier_time(4096), 0.0);
        assert_eq!(m.allreduce_time(8, 4096), 0.0);
    }

    #[test]
    fn allgather_monotone_in_bytes() {
        let m = MachineModel::taihulight();
        assert!(m.allgather_time(16, 64) < m.allgather_time(4096, 64));
    }

    #[test]
    fn collective_costs_scale_with_p() {
        let m = MachineModel::taihulight();
        assert!(m.barrier_time(4) < m.barrier_time(1024));
        assert!(m.allgather_time(64, 4) < m.allgather_time(64, 1024));
    }
}
