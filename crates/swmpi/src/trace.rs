//! Causal communication tracing: per-op events with logical clocks.
//!
//! Every [`crate::Comm`] primitive maintains two pieces of logical
//! state regardless of whether tracing is on (both are plain `Cell`
//! bumps, invisible to the physics):
//!
//! * a **Lamport clock** — incremented on every communication event,
//!   stamped into each [`crate::mailbox::Envelope`] /
//!   [`crate::onesided::PutRecord`], and reconciled to
//!   `max(local, incoming) + 1` on receipt (collectives reconcile to
//!   the participant maximum through the hub);
//! * **match ids** — each send/put stamps `(src, seq)` from a per-rank
//!   message counter, and each collective call carries the rank-local
//!   collective ordinal (which equals the hub generation, since all
//!   ranks pass through collectives in lockstep). The receive side
//!   reads the id back out of the envelope, so a cross-rank consumer
//!   can join both halves of every message without guessing.
//!
//! When a [`CommTracer`] is installed (see [`install_tracer`]), each
//! primitive additionally emits one [`CommEvent`] per operation —
//! enter/exit virtual clock, wall-clock duration, Lamport clock and
//! match id. The tracer is a process-global observer so the telemetry
//! crate (which depends on this one — the dependency cannot point the
//! other way) can forward events into its own sink. Emission happens
//! *after* all clock/accounting updates; a tracer cannot perturb them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::{Rank, Tag};

/// The kind of communication operation a [`CommEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// Eager two-sided send (`Comm::send`, including the send half of
    /// `Comm::sendrecv`).
    Send,
    /// Blocking two-sided receive.
    Recv,
    /// Barrier collective.
    Barrier,
    /// Allreduce collective (any reduction variant).
    Allreduce,
    /// Allgather collective.
    Allgather,
    /// One-sided put deposited into a remote window.
    Put,
    /// A put drained from this rank's own window at a fence.
    PutIn,
    /// A fence epoch boundary (each `win_fence` emits two: open and
    /// close barriers of the epoch).
    Fence,
}

impl CommOp {
    /// Stable lowercase name used in serialized traces.
    pub fn name(self) -> &'static str {
        match self {
            CommOp::Send => "send",
            CommOp::Recv => "recv",
            CommOp::Barrier => "barrier",
            CommOp::Allreduce => "allreduce",
            CommOp::Allgather => "allgather",
            CommOp::Put => "put",
            CommOp::PutIn => "put_in",
            CommOp::Fence => "fence",
        }
    }

    /// Parses a serialized [`CommOp::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "send" => CommOp::Send,
            "recv" => CommOp::Recv,
            "barrier" => CommOp::Barrier,
            "allreduce" => CommOp::Allreduce,
            "allgather" => CommOp::Allgather,
            "put" => CommOp::Put,
            "put_in" => CommOp::PutIn,
            "fence" => CommOp::Fence,
            _ => return None,
        })
    }

    /// True for the collective kinds, whose match ids live in the
    /// per-world epoch space rather than a sender's sequence space.
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            CommOp::Barrier | CommOp::Allreduce | CommOp::Allgather | CommOp::Fence
        )
    }
}

/// One traced communication operation, reported at operation exit.
#[derive(Debug, Clone)]
pub struct CommEvent {
    /// Operation kind.
    pub op: CommOp,
    /// The rank that executed the operation.
    pub rank: Rank,
    /// Peer rank: destination for send/put, source for recv/put-in,
    /// `None` for collectives.
    pub peer: Option<Rank>,
    /// Message tag (0 for collectives and puts-by-region).
    pub tag: Tag,
    /// Payload bytes moved by this operation (0 for pure barriers).
    pub bytes: u64,
    /// Match id, sender half: the originating rank for p2p/put pairs,
    /// `None` for collectives (whose id space is the epoch counter).
    pub match_src: Option<Rank>,
    /// Match id, sequence half: per-sender message ordinal for
    /// p2p/put, hub generation (== rank-local collective ordinal) for
    /// collectives.
    pub match_seq: u64,
    /// This rank's Lamport clock *after* the operation.
    pub lamport: u64,
    /// Virtual clock (s) when the operation was entered.
    pub vt_enter: f64,
    /// Virtual clock (s) when the operation completed.
    pub vt_exit: f64,
    /// Wall-clock nanoseconds the operation blocked this thread.
    pub wall_ns: u64,
}

/// A process-global observer of [`CommEvent`]s.
///
/// Implementations must be pure observers: they see each event after
/// the communicator has fully updated its own state, and nothing they
/// do can flow back into clocks, stats, or payloads.
pub trait CommTracer: Send + Sync {
    /// Called once per completed communication operation, on the
    /// executing rank's thread.
    fn on_comm(&self, ev: &CommEvent);
}

static TRACING: AtomicBool = AtomicBool::new(false);

fn tracer_slot() -> &'static RwLock<Option<Arc<dyn CommTracer>>> {
    static SLOT: std::sync::OnceLock<RwLock<Option<Arc<dyn CommTracer>>>> =
        std::sync::OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs the process-global tracer and enables event emission.
/// Replaces any previous tracer.
pub fn install_tracer(t: Arc<dyn CommTracer>) {
    *tracer_slot().write().unwrap() = Some(t);
    TRACING.store(true, Ordering::Release);
}

/// Removes the tracer and disables event emission.
pub fn clear_tracer() {
    TRACING.store(false, Ordering::Release);
    *tracer_slot().write().unwrap() = None;
}

/// Whether a tracer is installed. The hot-path guard: a single relaxed
/// atomic load when tracing is off.
#[inline]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Forwards `ev` to the installed tracer, if any.
pub(crate) fn emit(ev: &CommEvent) {
    if let Some(t) = tracer_slot().read().unwrap().as_ref() {
        t.on_comm(ev);
    }
}

/// Wall-clock stopwatch armed only while tracing, so the untraced path
/// never touches `Instant`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpTimer {
    start: Option<Instant>,
    pub vt_enter: f64,
}

impl OpTimer {
    pub(crate) fn start(vt_enter: f64) -> Self {
        Self {
            start: tracing().then(Instant::now),
            vt_enter,
        }
    }

    pub(crate) fn elapsed_ns(&self) -> u64 {
        self.start
            .map(|s| s.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Collect(Mutex<Vec<CommEvent>>);
    impl CommTracer for Collect {
        fn on_comm(&self, ev: &CommEvent) {
            self.0.lock().unwrap().push(ev.clone());
        }
    }

    #[test]
    fn op_names_round_trip() {
        for op in [
            CommOp::Send,
            CommOp::Recv,
            CommOp::Barrier,
            CommOp::Allreduce,
            CommOp::Allgather,
            CommOp::Put,
            CommOp::PutIn,
            CommOp::Fence,
        ] {
            assert_eq!(CommOp::parse(op.name()), Some(op));
        }
        assert_eq!(CommOp::parse("bogus"), None);
    }

    #[test]
    fn install_emit_clear() {
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        assert!(!tracing());
        install_tracer(sink.clone());
        assert!(tracing());
        emit(&CommEvent {
            op: CommOp::Send,
            rank: 0,
            peer: Some(1),
            tag: 7,
            bytes: 16,
            match_src: Some(0),
            match_seq: 1,
            lamport: 1,
            vt_enter: 0.0,
            vt_exit: 0.0,
            wall_ns: 0,
        });
        clear_tracer();
        assert!(!tracing());
        // Other tests in this binary may run worlds concurrently while
        // the tracer was briefly installed; look only for our event.
        let got = sink.0.lock().unwrap();
        let ours: Vec<_> = got.iter().filter(|e| e.tag == 7).collect();
        assert_eq!(ours.len(), 1);
        assert_eq!(ours[0].op, CommOp::Send);
        assert_eq!(ours[0].match_seq, 1);
    }
}
