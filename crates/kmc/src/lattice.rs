//! On-lattice site states for AKMC.
//!
//! "AKMC uses an on-lattice approximation method to map each atom or
//! vacancy to a lattice point, and the atoms and vacancies are
//! uniformly named as 'sites'" (§2.2). We reuse the BCC grid machinery
//! of `mmds-lattice`; states are one byte per site.

use std::collections::BTreeSet;

use mmds_lattice::neighbor_offsets::NeighborOffsets;
use mmds_lattice::LocalGrid;
use serde::{Deserialize, Serialize};

/// What occupies a lattice site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum SiteState {
    /// An iron atom.
    Fe = 0,
    /// A copper atom (alloy runs).
    Cu = 1,
    /// A vacancy.
    Vacancy = 2,
}

impl SiteState {
    /// True for any atom.
    pub fn is_atom(&self) -> bool {
        !matches!(self, SiteState::Vacancy)
    }

    /// Wire encoding.
    pub fn to_u8(self) -> u8 {
        self as u8
    }

    /// Wire decoding.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => SiteState::Fe,
            1 => SiteState::Cu,
            2 => SiteState::Vacancy,
            _ => panic!("invalid site state {v}"),
        }
    }
}

/// Ghost width (in cells) a KMC lattice needs: rate evaluation swaps a
/// vacancy with a (possibly ghost) 1NN partner and recomputes the
/// energy of every site within the cutoff of either, each of which
/// scans its own cutoff neighbourhood — three reaches deep in the worst
/// case.
pub fn required_ghost(a0: f64, rate_cutoff: f64) -> usize {
    3 * NeighborOffsets::generate(a0, rate_cutoff).max_cell_reach()
}

/// A rank's KMC lattice: states + ghost shell + vacancy index.
#[derive(Debug, Clone)]
pub struct KmcLattice {
    /// The local grid (owned cells + ghost shell).
    pub grid: LocalGrid,
    /// Neighbour offsets within the rate cutoff.
    pub offsets: NeighborOffsets,
    /// Flat-index deltas per basis (rate cutoff).
    pub deltas: [Vec<isize>; 2],
    /// Flat-index deltas per basis, 1NN only (the event directions).
    pub nn1_deltas: [Vec<isize>; 2],
    /// Per-site state (ghosts included).
    pub state: Vec<SiteState>,
    /// Owned vacancies (sorted for deterministic iteration).
    vacancies: BTreeSet<usize>,
}

impl KmcLattice {
    /// All-iron lattice.
    pub fn all_fe(grid: LocalGrid, rate_cutoff: f64) -> Self {
        let offsets = NeighborOffsets::generate(grid.global.a0, rate_cutoff);
        grid.validate_ghost(&offsets);
        let deltas = [
            grid.flat_deltas(&offsets.basis0, 0),
            grid.flat_deltas(&offsets.basis1, 1),
        ];
        let nn1_deltas = [
            grid.flat_deltas(&offsets.first_shell(0), 0),
            grid.flat_deltas(&offsets.first_shell(1), 1),
        ];
        let n = grid.n_sites();
        Self {
            grid,
            offsets,
            deltas,
            nn1_deltas,
            state: vec![SiteState::Fe; n],
            vacancies: BTreeSet::new(),
        }
    }

    /// Number of stored sites.
    pub fn n_sites(&self) -> usize {
        self.state.len()
    }

    /// Owned sites.
    pub fn n_owned(&self) -> usize {
        self.grid.n_owned_sites()
    }

    /// Is this site's *local cell* interior (owned)?
    #[inline]
    pub fn is_owned(&self, s: usize) -> bool {
        let (i, j, k, _) = self.grid.decode(s);
        self.grid.is_interior(i, j, k)
    }

    /// Sets a site's state, maintaining the owned-vacancy index.
    pub fn set_state(&mut self, s: usize, st: SiteState) {
        self.state[s] = st;
        if self.is_owned(s) {
            if st == SiteState::Vacancy {
                self.vacancies.insert(s);
            } else {
                self.vacancies.remove(&s);
            }
        }
    }

    /// Owned vacancies in deterministic (sorted) order.
    pub fn vacancies(&self) -> impl Iterator<Item = usize> + '_ {
        self.vacancies.iter().copied()
    }

    /// Owned vacancy count.
    pub fn n_vacancies(&self) -> usize {
        self.vacancies.len()
    }

    /// Seeds `n` vacancies at deterministic pseudo-random owned sites.
    pub fn seed_vacancies(&mut self, n: usize, seed: u64) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut owned: Vec<usize> = self.grid.interior_ids().collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        owned.shuffle(&mut rng);
        for &s in owned.iter().take(n) {
            self.set_state(s, SiteState::Vacancy);
        }
    }

    /// Seeds `n_total` vacancies at deterministic pseudo-random *global*
    /// sites; every rank calls this with the same `seed` and places the
    /// ones it owns, so the configuration is independent of the
    /// decomposition (fixed-box strong scaling compares identical
    /// systems at every rank count).
    pub fn seed_vacancies_global(&mut self, n_total: usize, seed: u64) -> usize {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dims = [
            self.grid.global.nx,
            self.grid.global.ny,
            self.grid.global.nz,
        ];
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < n_total.min(self.grid.global.n_sites()) {
            let g = [
                rng.random_range(0..dims[0]),
                rng.random_range(0..dims[1]),
                rng.random_range(0..dims[2]),
            ];
            let b = rng.random_range(0..2usize);
            chosen.insert((g, b));
        }
        let mut placed = 0;
        for (g, b) in chosen {
            if let Some(s) = self.global_to_local(g, b) {
                if self.is_owned(s) {
                    self.set_state(s, SiteState::Vacancy);
                    placed += 1;
                }
            }
        }
        placed
    }

    /// Seeds `n_total` substitutional Cu solutes at deterministic
    /// pseudo-random global sites (skipping non-Fe sites), same-seed
    /// consistent across ranks like [`Self::seed_vacancies_global`].
    pub fn seed_solutes_global(&mut self, n_total: usize, seed: u64) -> usize {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dims = [
            self.grid.global.nx,
            self.grid.global.ny,
            self.grid.global.nz,
        ];
        let mut chosen = std::collections::BTreeSet::new();
        let mut guard = 0;
        while chosen.len() < n_total.min(self.grid.global.n_sites()) && guard < 100 * n_total + 100
        {
            guard += 1;
            let g = [
                rng.random_range(0..dims[0]),
                rng.random_range(0..dims[1]),
                rng.random_range(0..dims[2]),
            ];
            let b = rng.random_range(0..2usize);
            chosen.insert((g, b));
        }
        let mut placed = 0;
        for (g, b) in chosen {
            if let Some(s) = self.global_to_local(g, b) {
                if self.is_owned(s) && self.state[s] == SiteState::Fe {
                    self.set_state(s, SiteState::Cu);
                    placed += 1;
                }
            }
        }
        placed
    }

    /// Places vacancies at the given owned sites (e.g. from MD output).
    pub fn set_vacancies(&mut self, sites: &[usize]) {
        for &s in sites {
            self.set_state(s, SiteState::Vacancy);
        }
    }

    /// The 8 first-neighbour site ids of `s`.
    #[inline]
    pub fn nn1(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        self.nn1_deltas[s & 1]
            .iter()
            .map(move |&d| (s as isize + d) as usize)
    }

    /// All rate-cutoff neighbour site ids of `s`.
    #[inline]
    pub fn neighbors(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        self.deltas[s & 1]
            .iter()
            .map(move |&d| (s as isize + d) as usize)
    }

    /// Maps a *global* site (canonical cell + basis) to local storage
    /// coordinates if it lies within the stored region (owned or ghost),
    /// taking periodic wrap into account.
    pub fn global_to_local(&self, gcell: [usize; 3], basis: usize) -> Option<usize> {
        let dims = self.grid.dims();
        let global_dims = [
            self.grid.global.nx,
            self.grid.global.ny,
            self.grid.global.nz,
        ];
        let mut local = [0usize; 3];
        for ax in 0..3 {
            let raw = gcell[ax] as i64 - self.grid.start[ax] as i64 + self.grid.ghost as i64;
            // Try the three periodic images; exactly one can be in range
            // for subdomains larger than the ghost width.
            let candidates = [
                raw,
                raw + global_dims[ax] as i64,
                raw - global_dims[ax] as i64,
            ];
            let hit = candidates
                .into_iter()
                .find(|&c| c >= 0 && (c as usize) < dims[ax])?;
            local[ax] = hit as usize;
        }
        Some(self.grid.site_id(local[0], local[1], local[2], basis))
    }

    /// Inverse of [`Self::global_to_local`]: the canonical global cell
    /// and basis of a stored site.
    pub fn local_to_global(&self, s: usize) -> ([usize; 3], usize) {
        let (i, j, k, b) = self.grid.decode(s);
        (self.grid.global_cell(i, j, k), b)
    }

    /// Position of a site (lattice point, Å; ghost images unwrapped).
    pub fn position(&self, s: usize) -> [f64; 3] {
        let (i, j, k, b) = self.grid.decode(s);
        self.grid.site_position(i, j, k, b)
    }

    /// Vacancy concentration among owned sites.
    pub fn vacancy_concentration(&self) -> f64 {
        self.n_vacancies() as f64 / self.n_owned() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_lattice::BccGeometry;

    fn lat() -> KmcLattice {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(6), 2);
        KmcLattice::all_fe(grid, 3.0)
    }

    #[test]
    fn starts_all_iron() {
        let l = lat();
        assert_eq!(l.n_vacancies(), 0);
        assert!(l.state.iter().all(|s| *s == SiteState::Fe));
    }

    #[test]
    fn state_round_trip() {
        for v in [SiteState::Fe, SiteState::Cu, SiteState::Vacancy] {
            assert_eq!(SiteState::from_u8(v.to_u8()), v);
        }
    }

    #[test]
    fn vacancy_index_tracks_set_state() {
        let mut l = lat();
        let s = l.grid.site_id(3, 3, 3, 0);
        l.set_state(s, SiteState::Vacancy);
        assert_eq!(l.n_vacancies(), 1);
        assert_eq!(l.vacancies().next(), Some(s));
        l.set_state(s, SiteState::Fe);
        assert_eq!(l.n_vacancies(), 0);
    }

    #[test]
    fn ghost_vacancies_not_indexed() {
        let mut l = lat();
        let ghost = l.grid.site_id(0, 3, 3, 0);
        l.set_state(ghost, SiteState::Vacancy);
        assert_eq!(l.n_vacancies(), 0);
        assert_eq!(l.state[ghost], SiteState::Vacancy);
    }

    #[test]
    fn nn1_has_8_entries() {
        let l = lat();
        let s = l.grid.site_id(3, 3, 3, 1);
        assert_eq!(l.nn1(s).count(), 8);
        // 1NN+2NN within 3.0 Å: 8 + 6 = 14.
        assert_eq!(l.neighbors(s).count(), 14);
    }

    #[test]
    fn seed_vacancies_deterministic() {
        let mut a = lat();
        let mut b = lat();
        a.seed_vacancies(10, 42);
        b.seed_vacancies(10, 42);
        assert_eq!(
            a.vacancies().collect::<Vec<_>>(),
            b.vacancies().collect::<Vec<_>>()
        );
        assert_eq!(a.n_vacancies(), 10);
        assert!((a.vacancy_concentration() - 10.0 / 432.0).abs() < 1e-12);
    }

    #[test]
    fn global_local_round_trip() {
        let l = lat();
        for s in [
            l.grid.site_id(2, 2, 2, 0),
            l.grid.site_id(5, 3, 4, 1),
            l.grid.site_id(0, 0, 0, 0), // ghost corner
            l.grid.site_id(9, 9, 9, 1), // ghost corner
        ] {
            let (g, b) = l.local_to_global(s);
            let back = l.global_to_local(g, b).unwrap();
            // Ghost corners map to their canonical interior image, which
            // for a whole-box grid is the interior site, not the ghost.
            let (gi, gb) = l.local_to_global(back);
            assert_eq!((gi, gb), (g, b));
        }
    }
}
