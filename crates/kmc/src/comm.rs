//! Communication backends for the KMC exchange strategies.
//!
//! Three primitives are needed (paper §2.2.1):
//! * staged slab `shift`s for the traditional full-ghost get/put;
//! * tagged two-sided `neighbor_exchange` (probe + receive, including
//!   the zero-size messages the paper calls out) for on-demand mode;
//! * one-sided `put_fence` (window put + global fence) for the
//!   zero-message-free on-demand variant.

use mmds_swmpi::mailbox::Source;
use mmds_swmpi::topology::CartGrid;
use mmds_swmpi::{Comm, Rank};

/// Communication backend used by the KMC engine.
pub trait KmcTransport {
    /// This rank's id.
    fn rank(&self) -> Rank;
    /// Sends a slab toward `axis`/`toward_high`, returning the slab from
    /// the opposite neighbour.
    fn shift(&mut self, axis: usize, toward_high: bool, payload: Vec<u8>) -> Vec<u8>;
    /// For each direction `dirs[i]`, sends `msgs[i]` to the neighbour at
    /// `+dirs[i]` — *always*, even when empty (two-sided matching) — and
    /// returns the message arriving from the neighbour at `−dirs[i]` for
    /// each slot.
    fn neighbor_exchange(&mut self, dirs: &[[i64; 3]], msgs: Vec<Vec<u8>>) -> Vec<Vec<u8>>;
    /// One-sided variant: puts only the non-empty messages, fences, and
    /// returns everything deposited into this rank's window.
    fn put_fence(&mut self, dirs: &[[i64; 3]], msgs: Vec<Vec<u8>>) -> Vec<Vec<u8>>;
    /// Max-reduction over ranks (for the global time step).
    fn allreduce_max(&mut self, v: f64) -> f64;
    /// Sum-reduction over ranks.
    fn allreduce_sum_u64(&mut self, v: u64) -> u64;
    /// Charges modelled compute seconds to this rank's clock.
    fn tick_compute(&mut self, seconds: f64);
    /// Folds on-demand exchange savings into this rank's comm
    /// accounting. Default: discarded (backends with no stats).
    fn record_savings(&mut self, _savings: mmds_swmpi::ExchangeSavings) {}
}

/// Single-rank backend: every neighbour is this rank (periodic).
#[derive(Default)]
pub struct LoopbackK;

impl KmcTransport for LoopbackK {
    fn rank(&self) -> Rank {
        0
    }
    fn shift(&mut self, _axis: usize, _toward_high: bool, payload: Vec<u8>) -> Vec<u8> {
        payload
    }
    fn neighbor_exchange(&mut self, _dirs: &[[i64; 3]], msgs: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        msgs
    }
    fn put_fence(&mut self, _dirs: &[[i64; 3]], msgs: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        msgs
    }
    fn allreduce_max(&mut self, v: f64) -> f64 {
        v
    }
    fn allreduce_sum_u64(&mut self, v: u64) -> u64 {
        v
    }
    fn tick_compute(&mut self, _seconds: f64) {}
}

/// Backend over a `mmds-swmpi` world with a Cartesian rank grid.
pub struct CommK<'a> {
    comm: &'a Comm,
    grid: CartGrid,
    tag_seq: u32,
    charge_compute: bool,
}

impl<'a> CommK<'a> {
    /// Creates a backend; `grid.len()` must equal the world size.
    pub fn new(comm: &'a Comm, grid: CartGrid) -> Self {
        assert_eq!(grid.len(), comm.size());
        Self {
            comm,
            grid,
            tag_seq: 0x4B4D_0000, // 'KM'
            charge_compute: true,
        }
    }

    /// A backend that ignores compute charges, so per-rank clocks stay
    /// aligned and the measured communication time isolates the
    /// exchange itself (used by the Fig. 13 harness, which compares
    /// communication strategies rather than whole runs).
    pub fn without_compute_charge(comm: &'a Comm, grid: CartGrid) -> Self {
        Self {
            charge_compute: false,
            ..Self::new(comm, grid)
        }
    }

    fn next_tag(&mut self) -> u32 {
        let t = self.tag_seq;
        self.tag_seq = self.tag_seq.wrapping_add(1);
        t
    }
}

impl KmcTransport for CommK<'_> {
    fn rank(&self) -> Rank {
        self.comm.rank()
    }

    fn shift(&mut self, axis: usize, toward_high: bool, payload: Vec<u8>) -> Vec<u8> {
        let mut d = [0i64; 3];
        d[axis] = if toward_high { 1 } else { -1 };
        let dst = self.grid.neighbor(self.comm.rank(), d);
        let mut back = d;
        back[axis] = -d[axis];
        let src = self.grid.neighbor(self.comm.rank(), back);
        let tag = self.next_tag();
        self.comm.sendrecv(dst, src, tag, payload)
    }

    fn neighbor_exchange(&mut self, dirs: &[[i64; 3]], msgs: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(dirs.len(), msgs.len());
        let me = self.comm.rank();
        let tag = self.next_tag();
        for (d, m) in dirs.iter().zip(msgs) {
            // Two-sided semantics: a message goes out for every
            // direction, zero-size included (the paper's observation).
            self.comm.send(self.grid.neighbor(me, *d), tag, m);
        }
        dirs.iter()
            .map(|d| {
                let src = self.grid.neighbor(me, [-d[0], -d[1], -d[2]]);
                // Faithful to the paper: probe for the (runtime-sized)
                // message first, then receive it.
                let info = self.comm.probe(Source::Of(src), tag);
                debug_assert_eq!(info.src, src);
                self.comm.recv_from(src, tag)
            })
            .collect()
    }

    fn put_fence(&mut self, dirs: &[[i64; 3]], msgs: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(dirs.len(), msgs.len());
        let me = self.comm.rank();
        for (i, (d, m)) in dirs.iter().zip(msgs).enumerate() {
            if !m.is_empty() {
                self.comm.win_put(self.grid.neighbor(me, *d), i as u32, m);
            }
        }
        self.comm
            .win_fence()
            .into_iter()
            .map(|rec| rec.payload)
            .collect()
    }

    fn allreduce_max(&mut self, v: f64) -> f64 {
        self.comm.allreduce_max_f64(v)
    }

    fn allreduce_sum_u64(&mut self, v: u64) -> u64 {
        self.comm.allreduce_sum_u64(v)
    }

    fn tick_compute(&mut self, seconds: f64) {
        if self.charge_compute {
            self.comm.tick_compute(seconds);
        }
    }

    fn record_savings(&mut self, savings: mmds_swmpi::ExchangeSavings) {
        self.comm.note_exchange_savings(savings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_swmpi::{MachineModel, World, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            model: MachineModel::free(),
            ..Default::default()
        })
    }

    #[test]
    fn loopback_echoes() {
        let mut t = LoopbackK;
        assert_eq!(t.shift(0, true, vec![1, 2]), vec![1, 2]);
        let out = t.neighbor_exchange(&[[1, 0, 0]], vec![vec![9]]);
        assert_eq!(out, vec![vec![9]]);
        assert_eq!(t.allreduce_max(3.0), 3.0);
    }

    #[test]
    fn comm_neighbor_exchange_routes_by_direction() {
        let out = world().run(4, |comm| {
            let grid = CartGrid::new([4, 1, 1]);
            let mut t = CommK::new(comm, grid);
            let dirs = [[1i64, 0, 0], [-1, 0, 0]];
            let msgs = vec![vec![comm.rank() as u8, 1], vec![comm.rank() as u8, 2]];
            t.neighbor_exchange(&dirs, msgs)
        });
        // Rank 1's slot 0 (dir +x) receives from rank 0's +x message.
        assert_eq!(out[1].result[0], vec![0u8, 1]);
        // Rank 1's slot 1 (dir −x) receives from rank 2's −x message.
        assert_eq!(out[1].result[1], vec![2u8, 2]);
    }

    #[test]
    fn comm_put_fence_drops_empty_messages() {
        let out = world().run(2, |comm| {
            let grid = CartGrid::new([2, 1, 1]);
            let mut t = CommK::new(comm, grid);
            let dirs = [[1i64, 0, 0]];
            let msg = if comm.rank() == 0 {
                vec![vec![7u8]]
            } else {
                vec![vec![]] // nothing to say: no message at all
            };
            let got = t.put_fence(&dirs, msg);
            (got.len(), comm.stats().puts)
        });
        assert_eq!(out[1].result.0, 1, "rank 1 received rank 0's put");
        assert_eq!(out[0].result.0, 0, "rank 0 received nothing");
        assert_eq!(out[1].result.1, 0, "rank 1 sent zero puts");
    }

    #[test]
    fn zero_size_messages_still_flow_two_sided() {
        let out = world().run(2, |comm| {
            let grid = CartGrid::new([2, 1, 1]);
            let mut t = CommK::new(comm, grid);
            let got = t.neighbor_exchange(&[[1i64, 0, 0]], vec![vec![]]);
            (got[0].len(), comm.stats().msgs_sent)
        });
        // Both ranks sent a zero-size message — the overhead the
        // one-sided variant eliminates.
        assert_eq!(out[0].result, (0, 1));
        assert_eq!(out[1].result, (0, 1));
    }
}
