//! KMC configuration.

use serde::{Deserialize, Serialize};

/// Parameters of a KMC run. Defaults follow the paper's §3 setup:
/// Fe at 600 K, a₀ = 2.855 Å.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KmcConfig {
    /// Lattice constant (Å).
    pub a0: f64,
    /// Temperature (K).
    pub temperature: f64,
    /// Attempt frequency ν (1/s).
    pub nu: f64,
    /// Base migration barrier E_m⁰ (eV) in the Kang–Weinberg form
    /// `E_m = max(E_min, E_m⁰ + ΔE/2)`.
    pub e_mig0: f64,
    /// Barrier floor (eV) keeping rates finite for downhill moves.
    pub e_mig_floor: f64,
    /// Interaction cutoff for on-lattice energy differences (Å).
    /// 3.0 Å covers the 1NN + 2NN shells that dominate vacancy binding.
    pub rate_cutoff: f64,
    /// Monte-Carlo time threshold (in units of the paper's t_threshold,
    /// i.e. dimensionless KMC seconds).
    pub t_threshold: f64,
    /// Expected hops per vacancy per synchronisation cycle (sets the
    /// quantum `dt = events_per_cycle / reference_rate`).
    pub events_per_cycle: f64,
    /// Interpolation-table knots.
    pub table_knots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KmcConfig {
    fn default() -> Self {
        Self {
            a0: 2.855,
            temperature: 600.0,
            nu: 1.0e13,
            e_mig0: 0.65,
            e_mig_floor: 0.05,
            rate_cutoff: 3.0,
            t_threshold: 2.0e-4,
            events_per_cycle: 1.0,
            table_knots: 5000,
            seed: 0x5EED_0002,
        }
    }
}

impl KmcConfig {
    /// Per-rank RNG seed.
    pub fn rank_seed(&self, rank: usize) -> u64 {
        self.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// k_B·T (eV).
    pub fn kbt(&self) -> f64 {
        mmds_eam::units::KB * self.temperature
    }

    /// The reference hop rate ν·exp(−E_m⁰/k_B T) (1/s).
    pub fn reference_rate(&self) -> f64 {
        self.nu * (-self.e_mig0 / self.kbt()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = KmcConfig::default();
        assert_eq!(c.temperature, 600.0);
        assert_eq!(c.a0, 2.855);
        assert_eq!(c.t_threshold, 2.0e-4);
    }

    #[test]
    fn reference_rate_is_physical() {
        let c = KmcConfig::default();
        // ν=1e13, E=0.65 eV, T=600K ⇒ k ≈ 1e13·exp(−12.57) ≈ 3.5e7/s.
        let k = c.reference_rate();
        assert!((1.0e7..1.0e8).contains(&k), "k = {k:e}");
    }

    #[test]
    fn rank_seeds_differ() {
        let c = KmcConfig::default();
        assert_ne!(c.rank_seed(1), c.rank_seed(2));
    }
}
