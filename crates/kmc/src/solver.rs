//! Rejection-free (BKL) event execution within one sector.
//!
//! Paper Fig. 7, boxes #4–#5: compute the rates of every possible event
//! in the sector, select one proportionally to rate, advance the local
//! clock by an exponential deviate, repeat until the synchronisation
//! quantum `dt` is exhausted.

use rand::Rng;

use crate::lattice::{KmcLattice, SiteState};
use crate::model::{EnergyModel, RateStats};

/// What one sector sweep produced.
#[derive(Debug, Clone, Default)]
pub struct SectorOutcome {
    /// Events executed.
    pub events: u64,
    /// Sites whose state changed (each swap dirties two).
    pub dirty: Vec<usize>,
}

/// Sector half-extent check: is owned site `s` inside sector
/// `sec` (each component 0 = low half, 1 = high half)?
pub fn in_sector(lat: &KmcLattice, s: usize, sec: [usize; 3]) -> bool {
    let g = lat.grid.ghost;
    let len = lat.grid.len;
    let (i, j, k, _) = lat.grid.decode(s);
    let c = [i, j, k];
    (0..3).all(|ax| {
        let half = len[ax] / 2;
        let lo = g + sec[ax] * half;
        // The high sector absorbs the odd cell when len is odd.
        let hi = if sec[ax] == 0 { lo + half } else { g + len[ax] };
        (lo..hi).contains(&c[ax])
    })
}

/// The 8 sectors in processing order.
pub fn sectors() -> [[usize; 3]; 8] {
    [
        [0, 0, 0],
        [1, 0, 0],
        [0, 1, 0],
        [1, 1, 0],
        [0, 0, 1],
        [1, 0, 1],
        [0, 1, 1],
        [1, 1, 1],
    ]
}

/// Runs BKL dynamics in one sector for a time quantum `dt` (in KMC
/// seconds). Vacancies may hop onto ghost sites (the sublattice method
/// guarantees the owner is not concurrently active there).
pub fn run_sector(
    lat: &mut KmcLattice,
    model: &EnergyModel,
    sec: [usize; 3],
    dt: f64,
    rng: &mut impl Rng,
    stats: &mut RateStats,
) -> SectorOutcome {
    let _span = mmds_telemetry::span!("kmc.sector");
    let mut out = SectorOutcome::default();
    let mut t_local = 0.0;
    loop {
        // Active vacancies: owned, inside the sector.
        let active: Vec<usize> = lat
            .vacancies()
            .filter(|&v| in_sector(lat, v, sec))
            .collect();
        if active.is_empty() {
            break;
        }
        // Enumerate events (vacancy, 1NN atom partner) with rates.
        let mut events: Vec<(usize, usize, f64)> = Vec::with_capacity(active.len() * 8);
        let mut total = 0.0;
        for &v in &active {
            let partners: Vec<usize> = lat.nn1(v).collect();
            for n in partners {
                if lat.state[n].is_atom() {
                    let k = model.rate(lat, v, n, stats);
                    total += k;
                    events.push((v, n, k));
                }
            }
        }
        if total <= 0.0 {
            break;
        }
        // Advance the clock first; if we overshoot the quantum, the
        // event does not happen in this cycle.
        let u: f64 = rng.random::<f64>().max(1e-300);
        t_local += -u.ln() / total;
        if t_local > dt {
            break;
        }
        // Select the event proportionally to rate.
        let mut pick = rng.random::<f64>() * total;
        let mut chosen = events.len() - 1;
        for (i, &(_, _, k)) in events.iter().enumerate() {
            pick -= k;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        let (v, n, _) = events[chosen];
        let atom = lat.state[n];
        lat.set_state(v, atom);
        lat.set_state(n, SiteState::Vacancy);
        out.dirty.push(v);
        out.dirty.push(n);
        out.events += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KmcConfig;
    use mmds_lattice::{BccGeometry, LocalGrid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (KmcLattice, EnergyModel) {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(8), 3);
        let lat = KmcLattice::all_fe(grid, 3.0);
        let cfg = KmcConfig {
            table_knots: 800,
            ..Default::default()
        };
        let model = EnergyModel::new(&cfg, &lat);
        (lat, model)
    }

    #[test]
    fn sector_membership_partitions_interior() {
        let (lat, _) = setup();
        for s in lat.grid.interior_ids() {
            let n = sectors()
                .iter()
                .filter(|&&sec| in_sector(&lat, s, sec))
                .count();
            assert_eq!(n, 1, "site {s} must be in exactly one sector");
        }
    }

    #[test]
    fn empty_sector_does_nothing() {
        let (mut lat, model) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = RateStats::default();
        let out = run_sector(&mut lat, &model, [0, 0, 0], 1.0, &mut rng, &mut stats);
        assert_eq!(out.events, 0);
        assert!(out.dirty.is_empty());
        assert_eq!(stats.rate_evals, 0);
    }

    #[test]
    fn events_fire_with_generous_quantum() {
        let (mut lat, model) = setup();
        // A vacancy deep inside sector (0,0,0): cells [2,6) → pick (3,3,3).
        let v = lat.grid.site_id(3, 3, 3, 0);
        lat.set_state(v, SiteState::Vacancy);
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = RateStats::default();
        // Reference rate ≈ 3e7/s ⇒ dt of 1e-5 s guarantees many hops.
        let out = run_sector(&mut lat, &model, [0, 0, 0], 1.0e-5, &mut rng, &mut stats);
        // The vacancy random-walks until it leaves the sector, so at
        // least one hop must fire with this generous quantum.
        assert!(out.events >= 1, "events = {}", out.events);
        assert_eq!(out.dirty.len() as u64, 2 * out.events);
        // Exactly one vacancy still exists (it moved around).
        assert_eq!(
            lat.state
                .iter()
                .filter(|&&s| s == SiteState::Vacancy)
                .count(),
            1
        );
    }

    #[test]
    fn tiny_quantum_blocks_events() {
        let (mut lat, model) = setup();
        let v = lat.grid.site_id(3, 3, 3, 0);
        lat.set_state(v, SiteState::Vacancy);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = RateStats::default();
        let out = run_sector(&mut lat, &model, [0, 0, 0], 1.0e-12, &mut rng, &mut stats);
        assert_eq!(out.events, 0, "quantum far below 1/rate");
    }

    #[test]
    fn vacancy_outside_sector_is_inactive() {
        let (mut lat, model) = setup();
        let v = lat.grid.site_id(7, 7, 7, 0); // sector (1,1,1)
        lat.set_state(v, SiteState::Vacancy);
        let mut rng = StdRng::seed_from_u64(4);
        let mut stats = RateStats::default();
        let out = run_sector(&mut lat, &model, [0, 0, 0], 1.0, &mut rng, &mut stats);
        assert_eq!(out.events, 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let (mut lat, model) = setup();
            lat.seed_vacancies(5, 99);
            let mut rng = StdRng::seed_from_u64(5);
            let mut stats = RateStats::default();
            let out = run_sector(&mut lat, &model, [0, 0, 0], 3.0e-8, &mut rng, &mut stats);
            (out.events, out.dirty, lat.state)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }
}
