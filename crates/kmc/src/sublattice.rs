//! The semirigorous synchronous sublattice driver (paper Fig. 7).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::comm::KmcTransport;
use crate::config::KmcConfig;
use crate::exchange::{full_exchange, post_sector, pre_sector, ExchangeStrategy};
use crate::lattice::KmcLattice;
use crate::model::{EnergyModel, RateStats};
use crate::solver::{run_sector, sectors};

/// Modelled MPE seconds per patch-site energy evaluation (the dominant
/// KMC compute kernel: a 14-neighbour occupancy scan plus one embedding
/// table interpolation).
pub const SITE_EVAL_SECONDS: f64 = 6.0e-8;

/// Cumulative run statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Events executed.
    pub events: u64,
    /// Synchronisation cycles completed.
    pub cycles: u64,
    /// Rate-evaluation counters.
    pub rate: RateStats,
}

/// One rank's KMC simulation.
pub struct KmcSimulation {
    /// Configuration.
    pub cfg: KmcConfig,
    /// The site lattice.
    pub lat: KmcLattice,
    /// EAM energetics.
    pub model: EnergyModel,
    /// Simulated KMC time (s).
    pub time: f64,
    /// Statistics.
    pub stats: RunStats,
    rng: StdRng,
}

impl KmcSimulation {
    /// Builds a simulation on a local grid.
    pub fn new(cfg: KmcConfig, grid: mmds_lattice::LocalGrid) -> Self {
        for ax in 0..3 {
            assert!(
                grid.len[ax] / 2 >= grid.ghost,
                "sector half-width must cover the ghost shell (axis {ax})"
            );
        }
        let lat = KmcLattice::all_fe(grid, cfg.rate_cutoff);
        let model = EnergyModel::new(&cfg, &lat);
        Self {
            cfg,
            lat,
            model,
            time: 0.0,
            stats: RunStats::default(),
            rng: StdRng::seed_from_u64(cfg.seed),
        }
    }

    /// Initial ghost fill; must run once after seeding vacancies.
    pub fn initialize(&mut self, t: &mut impl KmcTransport) {
        let _span = mmds_telemetry::span!("kmc.init");
        full_exchange(&mut self.lat, t);
    }

    /// Synchronisation quantum: the paper's box #1, "compute dt for the
    /// subdomain", followed by the global reduction that keeps all ranks
    /// on the same quantum. The quantum is *physics*-determined (about
    /// `events_per_cycle` hops per vacancy per cycle at the reference
    /// rate), so it is independent of the domain decomposition; the
    /// reduction doubles as the per-cycle time synchronisation whose
    /// cost Fig. 15 attributes the weak-scaling loss to. Returns 0 when
    /// no vacancies exist anywhere.
    pub fn compute_dt(&mut self, t: &mut impl KmcTransport) -> f64 {
        let _span = mmds_telemetry::span!("kmc.sync_dt");
        let global_vacancies = t.allreduce_sum_u64(self.lat.n_vacancies() as u64);
        if global_vacancies == 0 {
            return 0.0;
        }
        let dt_local = self.cfg.events_per_cycle / self.cfg.reference_rate();
        t.allreduce_max(dt_local)
    }

    /// One synchronisation cycle: the 8 sectors in order, with the
    /// chosen exchange strategy around each. Returns events executed.
    pub fn cycle(&mut self, strategy: ExchangeStrategy, t: &mut impl KmcTransport) -> u64 {
        let _span = mmds_telemetry::span!("kmc.cycle");
        let dt = self.compute_dt(t);
        if dt <= 0.0 {
            // No vacancies anywhere: time still advances by a full
            // threshold so callers terminate.
            self.time = self.cfg.t_threshold;
            return 0;
        }
        let evals_before = self.stats.rate.site_evals;
        let vac_before = self.lat.n_vacancies() as u64;
        let mut events = 0;
        let mut ghost_bytes = 0u64;
        let mut baseline_bytes = 0u64;
        let mut dirty_sites = 0u64;
        let mut candidate_sites = 0u64;
        let mut last_sector = 0u8;
        for (si, sec) in sectors().into_iter().enumerate() {
            ghost_bytes += pre_sector(strategy, &mut self.lat, sec, t);
            let out = run_sector(
                &mut self.lat,
                &self.model,
                sec,
                dt,
                &mut self.rng,
                &mut self.stats.rate,
            );
            events += out.events;
            let xfer = post_sector(strategy, &mut self.lat, sec, &out.dirty, t);
            ghost_bytes += xfer.bytes;
            baseline_bytes += xfer.baseline_bytes;
            dirty_sites += xfer.dirty_sites;
            candidate_sites += xfer.candidate_sites;
            last_sector = si as u8;
        }
        self.stats.events += events;
        self.stats.cycles += 1;
        self.time += dt;
        let evals = self.stats.rate.site_evals - evals_before;
        t.tick_compute(evals as f64 * SITE_EVAL_SECONDS);
        if mmds_telemetry::enabled() {
            let vac_after = self.lat.n_vacancies() as u64;
            let sample = mmds_telemetry::KmcCycleSample {
                cycle: self.stats.cycles,
                events,
                dirty_ghost_bytes: ghost_bytes,
                sector: last_sector,
                vacancies: vac_after,
                vacancy_delta: vac_after as i64 - vac_before as i64,
            };
            mmds_telemetry::global().counters().push_kmc(sample);
            mmds_telemetry::emit(mmds_telemetry::Event::Kmc(sample));
            mmds_telemetry::add_counter("kmc.ghost_bytes", ghost_bytes as f64);
            // Comm-savings accounting vs. the analytic full-ghost
            // baseline (paper Fig. 12), per cycle and cumulative.
            let cycle = self.stats.cycles;
            mmds_telemetry::emit_series("kmc.exchange.bytes", cycle, ghost_bytes as f64);
            mmds_telemetry::emit_series(
                "kmc.exchange.baseline_bytes",
                cycle,
                baseline_bytes as f64,
            );
            if candidate_sites > 0 {
                mmds_telemetry::emit_series(
                    "kmc.exchange.dirty_fraction",
                    cycle,
                    dirty_sites as f64 / candidate_sites as f64,
                );
            }
            mmds_telemetry::add_counter("kmc.exchange.baseline_bytes", baseline_bytes as f64);
            mmds_telemetry::add_counter("kmc.exchange.dirty_sites", dirty_sites as f64);
            mmds_telemetry::add_counter("kmc.exchange.candidate_sites", candidate_sites as f64);
            mmds_telemetry::emit_heartbeat("kmc.heartbeat", self.stats.cycles, 0);
        }
        events
    }

    /// Runs `cycles` synchronisation cycles.
    pub fn run_cycles(
        &mut self,
        strategy: ExchangeStrategy,
        t: &mut impl KmcTransport,
        cycles: usize,
    ) -> u64 {
        (0..cycles).map(|_| self.cycle(strategy, t)).sum()
    }

    /// Runs until the configured `t_threshold` (paper Fig. 7's loop).
    pub fn run_until_threshold(
        &mut self,
        strategy: ExchangeStrategy,
        t: &mut impl KmcTransport,
        max_cycles: usize,
    ) -> u64 {
        let mut events = 0;
        let mut n = 0;
        while self.time < self.cfg.t_threshold && n < max_cycles {
            events += self.cycle(strategy, t);
            n += 1;
        }
        events
    }
}

/// Declared communication skeleton of [`KmcSimulation::compute_dt`]
/// (span `kmc.sync_dt`): the vacancy-count sum, then the dt maximum —
/// the latter skipped on a predicate every rank computes from the
/// *globally summed* count, so the skip is provably rank-uniform.
pub fn sync_dt_plan() -> mmds_swmpi::CommPlan {
    use mmds_swmpi::{ByteSpec, CommPlan, SkelOp};
    CommPlan::new(
        "kmc.sync_dt",
        "crates/kmc/src/sublattice.rs",
        vec![
            SkelOp::Allreduce {
                bytes: ByteSpec::Exact(8),
                uniform_skip: None,
            },
            SkelOp::Allreduce {
                bytes: ByteSpec::Exact(8),
                uniform_skip: Some(
                    "skipped when the globally-summed vacancy count is zero — \
                     a value every rank agrees on"
                        .into(),
                ),
            },
        ],
        "per cycle: global vacancy census, then the Fig. 15 dt reduction",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::LoopbackK;
    use crate::exchange::OnDemandMode;
    use crate::lattice::SiteState;
    use mmds_lattice::{BccGeometry, LocalGrid};

    fn sim(n_vac: usize) -> KmcSimulation {
        let cfg = KmcConfig {
            table_knots: 800,
            events_per_cycle: 2.0,
            ..Default::default()
        };
        let grid = LocalGrid::whole(BccGeometry::fe_cube(8), 3);
        let mut s = KmcSimulation::new(cfg, grid);
        s.lat.seed_vacancies(n_vac, 7);
        s.initialize(&mut LoopbackK);
        s
    }

    #[test]
    fn vacancy_count_is_conserved() {
        let mut s = sim(6);
        s.run_cycles(ExchangeStrategy::Traditional, &mut LoopbackK, 20);
        assert_eq!(s.lat.n_vacancies(), 6);
        assert!(s.stats.events > 0, "something should have hopped");
        assert!(s.time > 0.0);
    }

    #[test]
    fn strategies_produce_identical_evolution() {
        // The on-demand strategy is an optimisation, not an
        // approximation: with the same seed the trajectory of *owned*
        // sites must be identical to the traditional exchange. (Ghost
        // copies may differ transiently: traditional refreshes them
        // lazily at the next relevant pre-sector get, on-demand keeps
        // them eagerly fresh.)
        let run = |strategy: ExchangeStrategy| {
            let mut s = sim(8);
            s.run_cycles(strategy, &mut LoopbackK, 15);
            let owned: Vec<_> = s.lat.grid.interior_ids().map(|i| s.lat.state[i]).collect();
            (s.stats.events, owned)
        };
        let trad = run(ExchangeStrategy::Traditional);
        let od2 = run(ExchangeStrategy::OnDemand(OnDemandMode::TwoSided));
        let od1 = run(ExchangeStrategy::OnDemand(OnDemandMode::OneSided));
        assert_eq!(trad.0, od2.0, "event counts differ");
        assert_eq!(trad.1, od2.1, "owned states differ (two-sided)");
        assert_eq!(trad.1, od1.1, "owned states differ (one-sided)");
    }

    #[test]
    fn time_advances_by_dt_per_cycle() {
        let mut s = sim(4);
        let dt = s.compute_dt(&mut LoopbackK);
        assert!(dt > 0.0);
        s.cycle(ExchangeStrategy::Traditional, &mut LoopbackK);
        assert!((s.time - dt).abs() < 1e-18);
    }

    #[test]
    fn no_vacancies_terminates_immediately() {
        let mut s = sim(0);
        let ev = s.run_until_threshold(ExchangeStrategy::Traditional, &mut LoopbackK, 100);
        assert_eq!(ev, 0);
        assert!(s.time >= s.cfg.t_threshold);
        assert_eq!(s.stats.cycles, 0);
    }

    #[test]
    fn ghost_images_stay_consistent() {
        let mut s = sim(10);
        s.run_cycles(
            ExchangeStrategy::OnDemand(OnDemandMode::TwoSided),
            &mut LoopbackK,
            10,
        );
        // Every ghost site must equal its canonical interior image.
        let dims = s.lat.grid.dims();
        for k in 0..dims[2] {
            for j in 0..dims[1] {
                for i in 0..dims[0] {
                    if s.lat.grid.is_interior(i, j, k) {
                        continue;
                    }
                    for b in 0..2 {
                        let ghost = s.lat.grid.site_id(i, j, k, b);
                        let g = s.lat.grid.global_cell(i, j, k);
                        let gh = s.lat.grid.ghost;
                        let own = s.lat.grid.site_id(g[0] + gh, g[1] + gh, g[2] + gh, b);
                        assert_eq!(
                            s.lat.state[ghost], s.lat.state[own],
                            "ghost ({i},{j},{k},{b}) diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hops_do_happen_across_the_periodic_boundary() {
        let mut s = sim(0);
        // Vacancy at the very edge of the box: some of its 8 partners
        // are ghost sites.
        let edge = s.lat.grid.site_id(3, 3, 3, 0);
        s.lat.set_state(edge, SiteState::Vacancy);
        s.initialize(&mut LoopbackK);
        s.run_cycles(ExchangeStrategy::Traditional, &mut LoopbackK, 25);
        assert_eq!(s.lat.n_vacancies(), 1, "vacancy neither lost nor copied");
    }
}
