//! Ghost-site exchange strategies (paper §2.2.1, Fig. 8).
//!
//! **Traditional** (SPPARKS \[23\], KMCLib \[14\]): before a sector, *get*
//! the full ghost slabs adjacent to it (Fig. 8 b); after the sector,
//! *put* those full slabs back (Fig. 8 c). "All the sites in the ghost
//! region have to be transferred regardless of whether all the sites
//! are updated or not."
//!
//! **On-demand** (the paper's contribution #3, Fig. 8 d): a single
//! after-sector transfer of only the *affected* sites, addressed by
//! global lattice coordinates, to each neighbour that stores them.
//! Implemented over two-sided messaging (probe + receive, zero-size
//! messages included) and over one-sided puts + fence (which eliminates
//! the zero-size messages).

use serde::{Deserialize, Serialize};

use mmds_swmpi::{Packer, Unpacker};

use crate::comm::KmcTransport;
use crate::lattice::{KmcLattice, SiteState};

/// Which transport primitive carries on-demand updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnDemandMode {
    /// `MPI_Probe` + `MPI_Recv`, with zero-size messages for matching.
    TwoSided,
    /// Window put + fence; no zero-size messages.
    OneSided,
}

/// The exchange strategy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExchangeStrategy {
    /// Full ghost slabs, get before + put after each sector.
    Traditional,
    /// Only affected sites, once after each sector.
    OnDemand(OnDemandMode),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Low,
    High,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    OwnedEdge,
    Ghost,
}

/// Slab ranges along each axis for one (axis, side, role) combination.
/// `done_axes_full` marks axes whose staging has already completed and
/// therefore span the full storage extent.
fn ranges(
    lat: &KmcLattice,
    axis: usize,
    side: Side,
    role: Role,
    width: usize,
    full: impl Fn(usize) -> bool,
) -> [std::ops::Range<usize>; 3] {
    let g = lat.grid.ghost;
    let len = lat.grid.len;
    let dims = lat.grid.dims();
    assert!(width <= g);
    let mut r: [std::ops::Range<usize>; 3] = [0..0, 0..0, 0..0];
    for b in 0..3 {
        r[b] = if b == axis {
            // Slabs hug the owned/ghost boundary `width` cells deep.
            match (role, side) {
                (Role::OwnedEdge, Side::Low) => g..g + width,
                (Role::OwnedEdge, Side::High) => g + len[b] - width..g + len[b],
                (Role::Ghost, Side::Low) => g - width..g,
                (Role::Ghost, Side::High) => g + len[b]..g + len[b] + width,
            }
        } else if full(b) {
            0..dims[b]
        } else {
            g..g + len[b]
        };
    }
    r
}

/// How far (in cells) one event can write beyond the sector: the cell
/// reach of a 1NN hop.
fn event_reach(lat: &KmcLattice) -> usize {
    lat.offsets
        .first_shell(0)
        .iter()
        .chain(lat.offsets.first_shell(1).iter())
        .flat_map(|o| {
            [
                o.di.unsigned_abs(),
                o.dj.unsigned_abs(),
                o.dk.unsigned_abs(),
            ]
        })
        .max()
        .unwrap_or(1) as usize
}

/// Bytes of one traditional SPPARKS-style slab record (u64 global id +
/// f64 state — see [`pack_states`]).
const SLAB_SITE_BYTES: u64 = 16;

/// Bytes of one on-demand dirty-site record (3×u32 coords + u8 basis +
/// u8 state — see [`on_demand_put`]).
const DIRTY_SITE_BYTES: u64 = 14;

/// Sites in one exchange slab of `width` cells along `axis` (both basis
/// sites counted). Slab sizes are side- and sector-independent; only
/// the position changes with the sector corner.
fn slab_sites(lat: &KmcLattice, axis: usize, width: usize) -> u64 {
    let r = ranges(lat, axis, Side::Low, Role::OwnedEdge, width, |b| b < axis);
    r.iter().map(|r| r.len() as u64).product::<u64>() * 2
}

/// Payload bytes [`traditional_get`] sends for any one sector —
/// computed analytically from the slab geometry, without sending.
pub fn traditional_get_bytes(lat: &KmcLattice) -> u64 {
    (0..3)
        .map(|axis| slab_sites(lat, axis, lat.grid.ghost) * SLAB_SITE_BYTES)
        .sum()
}

/// Payload bytes [`traditional_put`] sends for any one sector.
pub fn traditional_put_bytes(lat: &KmcLattice) -> u64 {
    let w = event_reach(lat);
    (0..3)
        .map(|axis| slab_sites(lat, axis, w) * SLAB_SITE_BYTES)
        .sum()
}

/// Sites the traditional post-sector put ships — the denominator of the
/// dirty-site fraction (the put slabs are exactly the sites a sector's
/// events *could* have touched near the boundary).
pub fn put_candidate_sites(lat: &KmcLattice) -> u64 {
    traditional_put_bytes(lat) / SLAB_SITE_BYTES
}

/// The full-ghost baseline for one sector: everything [`Traditional`]
/// (get + put) would have sent. This is what the paper's Fig. 12
/// compares the on-demand dirty traffic against.
///
/// [`Traditional`]: ExchangeStrategy::Traditional
pub fn full_ghost_baseline_bytes(lat: &KmcLattice) -> u64 {
    traditional_get_bytes(lat) + traditional_put_bytes(lat)
}

/// Unique dirty sites the on-demand protocol ships to at least one of
/// the sector's 7 neighbour directions.
pub fn shipped_site_count(lat: &KmcLattice, sec: [usize; 3], dirty: &[usize]) -> u64 {
    let dirs = sector_dirs(sec);
    let mut unique: Vec<usize> = dirty.to_vec();
    unique.sort_unstable();
    unique.dedup();
    unique
        .iter()
        .filter(|&&s| {
            let (i, j, k, _) = lat.grid.decode(s);
            dirs.iter().any(|d| relevant_to(lat, [i, j, k], *d))
        })
        .count() as u64
}

/// Byte accounting of one sector's post-exchange, alongside the
/// analytic full-ghost baseline and dirty-site census that the
/// comm-savings counters aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectorExchange {
    /// Payload bytes actually sent by the post-sector hook.
    pub bytes: u64,
    /// Bytes the full-ghost get+put would have sent for this sector.
    pub baseline_bytes: u64,
    /// Unique dirty sites shipped (equals `candidate_sites` under the
    /// traditional strategy, which ships the full slabs).
    pub dirty_sites: u64,
    /// Sites the full-ghost put would have shipped.
    pub candidate_sites: u64,
}

/// Canonical global id of a stored site (used as the SPPARKS-style
/// record key and as an alignment check on unpack).
fn global_id(lat: &KmcLattice, s: usize) -> u64 {
    let (g, b) = lat.local_to_global(s);
    let nx = lat.grid.global.nx as u64;
    let ny = lat.grid.global.ny as u64;
    (((g[2] as u64 * ny + g[1] as u64) * nx + g[0] as u64) * 2) + b as u64
}

/// Traditional slabs carry SPPARKS-style site records — integer site id
/// plus a double-width value (16 B/site) — matching the baseline codes
/// the paper compares against ("used in the KMC software, such as
/// SPPARKS and KMCLib"). The id doubles as a hard check that sender and
/// receiver slabs are globally aligned.
fn pack_states(lat: &KmcLattice, r: &[std::ops::Range<usize>; 3]) -> Vec<u8> {
    let mut p = Packer::new();
    for k in r[2].clone() {
        for j in r[1].clone() {
            for i in r[0].clone() {
                for b in 0..2 {
                    let s = lat.grid.site_id(i, j, k, b);
                    p.put_u64(global_id(lat, s));
                    p.put_f64(lat.state[s].to_u8() as f64);
                }
            }
        }
    }
    p.finish()
}

fn unpack_states(lat: &mut KmcLattice, r: &[std::ops::Range<usize>; 3], bytes: &[u8]) {
    let mut u = Unpacker::new(bytes);
    for k in r[2].clone() {
        for j in r[1].clone() {
            for i in r[0].clone() {
                for b in 0..2 {
                    let s = lat.grid.site_id(i, j, k, b);
                    let gid = u.get_u64();
                    debug_assert_eq!(
                        gid,
                        global_id(lat, s),
                        "slab misaligned at local ({i},{j},{k},{b})"
                    );
                    lat.set_state(s, SiteState::from_u8(u.get_f64() as u8));
                }
            }
        }
    }
    assert!(u.is_exhausted(), "state slab size mismatch");
}

/// Full 6-direction ghost fill (initialisation; also used by tests).
/// Returns payload bytes sent.
pub fn full_exchange(lat: &mut KmcLattice, t: &mut impl KmcTransport) -> u64 {
    let _span = mmds_telemetry::span!("kmc.exchange.full");
    let mut bytes = 0;
    for axis in 0..3 {
        for (toward_high, recv_side) in [(true, Side::Low), (false, Side::High)] {
            let send_side = match recv_side {
                Side::Low => Side::High,
                Side::High => Side::Low,
            };
            let g = lat.grid.ghost;
            let send = ranges(lat, axis, send_side, Role::OwnedEdge, g, |b| b < axis);
            let payload = pack_states(lat, &send);
            bytes += payload.len() as u64;
            let got = t.shift(axis, toward_high, payload);
            let recv = ranges(lat, axis, recv_side, Role::Ghost, g, |b| b < axis);
            unpack_states(lat, &recv, &got);
        }
    }
    bytes
}

/// Traditional pre-sector *get* (Fig. 8 b): refresh the ghost slabs on
/// the sector-adjacent sides.
/// Returns payload bytes sent.
pub fn traditional_get(lat: &mut KmcLattice, sec: [usize; 3], t: &mut impl KmcTransport) -> u64 {
    let _span = mmds_telemetry::span!("kmc.exchange.get");
    let mut bytes = 0;
    for axis in 0..3 {
        let recv_side = if sec[axis] == 0 {
            Side::Low
        } else {
            Side::High
        };
        let toward_high = sec[axis] == 0;
        let send_side = match recv_side {
            Side::Low => Side::High,
            Side::High => Side::Low,
        };
        let g = lat.grid.ghost;
        let send = ranges(lat, axis, send_side, Role::OwnedEdge, g, |b| b < axis);
        let payload = pack_states(lat, &send);
        bytes += payload.len() as u64;
        let got = t.shift(axis, toward_high, payload);
        let recv = ranges(lat, axis, recv_side, Role::Ghost, g, |b| b < axis);
        unpack_states(lat, &recv, &got);
    }
    bytes
}

/// Traditional post-sector *put* (Fig. 8 c): push the same slabs back
/// to their owners. Staged in reverse axis order so corner updates are
/// forwarded through intermediate ranks.
/// Returns payload bytes sent.
pub fn traditional_put(lat: &mut KmcLattice, sec: [usize; 3], t: &mut impl KmcTransport) -> u64 {
    let _span = mmds_telemetry::span!("kmc.exchange.put");
    let mut bytes = 0;
    // Staged in *descending* axis order with full extent on the axes
    // processed after the current one, so a corner update first rides a
    // high-axis slab into an intermediate rank's ghost region and is
    // then forwarded by that rank's lower-axis stage (the time reversal
    // of the get staging).
    // Only the inner ring of the ghost shell (one event reach deep) can
    // have been modified by the sector's events, and correspondingly
    // only that ring of the receiver's owned edge may be overwritten —
    // the receiver's *own* boundary hops live just inside it.
    let w = event_reach(lat);
    for axis in (0..3).rev() {
        let ghost_side = if sec[axis] == 0 {
            Side::Low
        } else {
            Side::High
        };
        // My low ghost flows to the −axis owner.
        let toward_high = sec[axis] != 0;
        let send = ranges(lat, axis, ghost_side, Role::Ghost, w, |b| b < axis);
        let payload = pack_states(lat, &send);
        bytes += payload.len() as u64;
        let got = t.shift(axis, toward_high, payload);
        let recv_side = match ghost_side {
            Side::Low => Side::High,
            Side::High => Side::Low,
        };
        let recv = ranges(lat, axis, recv_side, Role::OwnedEdge, w, |b| b < axis);
        unpack_states(lat, &recv, &got);
    }
    bytes
}

/// The 7 neighbour directions touched by a sector's corner.
pub fn sector_dirs(sec: [usize; 3]) -> Vec<[i64; 3]> {
    let sign = |ax: usize| if sec[ax] == 0 { -1i64 } else { 1 };
    let mut dirs = Vec::with_capacity(7);
    for mx in 0..2 {
        for my in 0..2 {
            for mz in 0..2 {
                if mx + my + mz == 0 {
                    continue;
                }
                dirs.push([
                    mx as i64 * sign(0),
                    my as i64 * sign(1),
                    mz as i64 * sign(2),
                ]);
            }
        }
    }
    dirs
}

/// True if stored-cell coords `c` fall inside the storage region of the
/// neighbour at offset `d` (equal-size subdomains).
fn relevant_to(lat: &KmcLattice, c: [usize; 3], d: [i64; 3]) -> bool {
    let len = lat.grid.len;
    let dims = lat.grid.dims();
    (0..3).all(|ax| {
        let shifted = c[ax] as i64 - d[ax] * len[ax] as i64;
        shifted >= 0 && shifted < dims[ax] as i64
    })
}

/// Applies one encoded site update to every stored image of the global
/// site (a subdomain covering the whole box stores up to 3 images per
/// axis).
pub fn apply_global_update(lat: &mut KmcLattice, gcell: [usize; 3], basis: usize, st: SiteState) {
    let dims = lat.grid.dims();
    let global_dims = [lat.grid.global.nx, lat.grid.global.ny, lat.grid.global.nz];
    let mut per_axis: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for ax in 0..3 {
        let raw = gcell[ax] as i64 - lat.grid.start[ax] as i64 + lat.grid.ghost as i64;
        for cand in [
            raw,
            raw + global_dims[ax] as i64,
            raw - global_dims[ax] as i64,
        ] {
            if cand >= 0 && (cand as usize) < dims[ax] && !per_axis[ax].contains(&(cand as usize)) {
                per_axis[ax].push(cand as usize);
            }
        }
    }
    for &i in &per_axis[0] {
        for &j in &per_axis[1] {
            for &k in &per_axis[2] {
                let s = lat.grid.site_id(i, j, k, basis);
                lat.set_state(s, st);
            }
        }
    }
}

/// On-demand post-sector transfer (Fig. 8 d): sends each affected site
/// to every neighbour that stores it; applies what arrives. Returns
/// payload bytes sent (the "dirty ghost" traffic Fig. 12 measures).
pub fn on_demand_put(
    lat: &mut KmcLattice,
    sec: [usize; 3],
    dirty: &[usize],
    mode: OnDemandMode,
    t: &mut impl KmcTransport,
) -> u64 {
    let _span = mmds_telemetry::span!("kmc.exchange.dirty");
    let dirs = sector_dirs(sec);
    let mut unique: Vec<usize> = dirty.to_vec();
    unique.sort_unstable();
    unique.dedup();
    let mut msgs: Vec<Packer> = (0..dirs.len()).map(|_| Packer::new()).collect();
    for &s in &unique {
        let (i, j, k, b) = lat.grid.decode(s);
        let (g, _) = (lat.grid.global_cell(i, j, k), b);
        for (di, d) in dirs.iter().enumerate() {
            if relevant_to(lat, [i, j, k], *d) {
                let p = &mut msgs[di];
                p.put_u32(g[0] as u32);
                p.put_u32(g[1] as u32);
                p.put_u32(g[2] as u32);
                p.put_u8(b as u8);
                p.put_u8(lat.state[s].to_u8());
            }
        }
    }
    let payloads: Vec<Vec<u8>> = msgs.into_iter().map(|p| p.finish()).collect();
    let bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
    debug_assert_eq!(bytes % DIRTY_SITE_BYTES, 0, "dirty records are 14 B");
    let received = match mode {
        OnDemandMode::TwoSided => t.neighbor_exchange(&dirs, payloads),
        OnDemandMode::OneSided => t.put_fence(&dirs, payloads),
    };
    let me = t.rank();
    for bytes in received {
        let mut u = Unpacker::new(&bytes);
        while !u.is_exhausted() {
            let g = [
                u.get_u32() as usize,
                u.get_u32() as usize,
                u.get_u32() as usize,
            ];
            let b = u.get_u8() as usize;
            let st = SiteState::from_u8(u.get_u8());
            apply_global_update(lat, g, b, st);
        }
        let _ = me;
    }
    // In loopback mode the sent updates double as the received ones; in
    // multi-rank mode the local images of *our own* dirty ghost writes
    // are already stored locally (we wrote them), so nothing else to do.
    bytes
}

/// Strategy dispatcher: pre-sector hook. Returns payload bytes sent.
pub fn pre_sector(
    strategy: ExchangeStrategy,
    lat: &mut KmcLattice,
    sec: [usize; 3],
    t: &mut impl KmcTransport,
) -> u64 {
    if strategy == ExchangeStrategy::Traditional {
        traditional_get(lat, sec, t)
    } else {
        0
    }
}

/// Strategy dispatcher: post-sector hook. Returns the sector's byte
/// accounting; under on-demand the savings census is also folded into
/// the transport's [`mmds_swmpi::CommStats`] (per-rank Fig. 12 view).
pub fn post_sector(
    strategy: ExchangeStrategy,
    lat: &mut KmcLattice,
    sec: [usize; 3],
    dirty: &[usize],
    t: &mut impl KmcTransport,
) -> SectorExchange {
    let candidate_sites = put_candidate_sites(lat);
    let baseline_bytes = full_ghost_baseline_bytes(lat);
    match strategy {
        ExchangeStrategy::Traditional => SectorExchange {
            bytes: traditional_put(lat, sec, t),
            baseline_bytes,
            dirty_sites: candidate_sites,
            candidate_sites,
        },
        ExchangeStrategy::OnDemand(mode) => {
            let dirty_sites = shipped_site_count(lat, sec, dirty);
            let bytes = on_demand_put(lat, sec, dirty, mode, t);
            let out = SectorExchange {
                bytes,
                baseline_bytes,
                dirty_sites,
                candidate_sites,
            };
            t.record_savings(mmds_swmpi::ExchangeSavings {
                bytes_on_demand: out.bytes,
                bytes_full_ghost: out.baseline_bytes,
                dirty_sites: out.dirty_sites,
                candidate_sites: out.candidate_sites,
            });
            out
        }
    }
}

/// Declared communication skeletons of the KMC exchange phases under
/// `strategy` (the `mmds-audit` protocol pass proves and reconciles
/// these against traced runs — keep them in lock-step with the
/// exchange functions above).
///
/// Traditional slabs are exactly [`SLAB_SITE_BYTES`] per site and
/// on-demand records exactly [`DIRTY_SITE_BYTES`] per site, but the
/// site *counts* depend on the subdomain geometry, so both are
/// `Records` specs. The sector-parameterised phases cycle through 8
/// variants in [`sectors`](crate::solver::sectors) order — instance
/// `k` of a phase runs variant `k % 8`.
pub fn exchange_plans(strategy: ExchangeStrategy) -> Vec<mmds_swmpi::CommPlan> {
    use mmds_swmpi::{ByteSpec, CommPlan, SkelOp};
    let here = "crates/kmc/src/exchange.rs";
    let slab = ByteSpec::Records {
        header: 0,
        record: SLAB_SITE_BYTES,
    };
    let dirty = ByteSpec::Records {
        header: 0,
        record: DIRTY_SITE_BYTES,
    };
    // full_exchange: axis 0..3, toward_high true then false.
    let mut full = Vec::new();
    for axis in 0..3 {
        for toward_high in [true, false] {
            full.extend(SkelOp::shift(axis, toward_high, slab));
        }
    }
    let mut plans = vec![CommPlan::new(
        "kmc.exchange.full",
        here,
        full,
        "initial 6-direction ghost fill (kmc.init)",
    )];
    let sectors = crate::solver::sectors();
    match strategy {
        ExchangeStrategy::Traditional => {
            // traditional_get: ascending axes, toward the sector corner.
            let get = sectors
                .iter()
                .map(|sec| {
                    (0..3)
                        .flat_map(|axis| SkelOp::shift(axis, sec[axis] == 0, slab))
                        .collect()
                })
                .collect();
            // traditional_put: descending axes, the time reversal.
            let put = sectors
                .iter()
                .map(|sec| {
                    (0..3)
                        .rev()
                        .flat_map(|axis| SkelOp::shift(axis, sec[axis] != 0, slab))
                        .collect()
                })
                .collect();
            plans.push(CommPlan::cycled(
                "kmc.exchange.get",
                here,
                get,
                "pre-sector full-slab refresh, one variant per sector",
            ));
            plans.push(CommPlan::cycled(
                "kmc.exchange.put",
                here,
                put,
                "post-sector slab write-back (event-reach deep), one variant per sector",
            ));
        }
        ExchangeStrategy::OnDemand(OnDemandMode::TwoSided) => {
            // neighbor_exchange: 7 eager sends (zero-size included),
            // then 7 probed receives, in sector_dirs order.
            let variants = sectors
                .iter()
                .map(|&sec| {
                    let dirs = sector_dirs(sec);
                    let mut ops: Vec<SkelOp> = dirs
                        .iter()
                        .map(|&d| SkelOp::Send {
                            to: d,
                            bytes: dirty,
                        })
                        .collect();
                    ops.extend(dirs.iter().map(|&d| SkelOp::Recv {
                        from: [-d[0], -d[1], -d[2]],
                        bytes: dirty,
                    }));
                    ops
                })
                .collect();
            plans.push(CommPlan::cycled(
                "kmc.exchange.dirty",
                here,
                variants,
                "post-sector on-demand updates, two-sided (zero-size messages flow)",
            ));
        }
        ExchangeStrategy::OnDemand(OnDemandMode::OneSided) => {
            // put_fence: puts only for non-empty payloads, then one
            // fence epoch drains every deposit.
            let variants = sectors
                .iter()
                .map(|&sec| {
                    let mut ops: Vec<SkelOp> = sector_dirs(sec)
                        .iter()
                        .map(|&d| SkelOp::WinPut {
                            to: d,
                            bytes: dirty,
                            optional: true,
                        })
                        .collect();
                    ops.push(SkelOp::WinFence);
                    ops
                })
                .collect();
            plans.push(CommPlan::cycled(
                "kmc.exchange.dirty",
                here,
                variants,
                "post-sector on-demand updates, one-sided (no zero-size messages)",
            ));
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::LoopbackK;
    use mmds_lattice::{BccGeometry, LocalGrid};

    fn lat() -> KmcLattice {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(6), 2);
        KmcLattice::all_fe(grid, 3.0)
    }

    #[test]
    fn full_exchange_mirrors_periodically() {
        let mut l = lat();
        let s = l.grid.site_id(2, 4, 4, 0); // global (0,2,2)
        l.set_state(s, SiteState::Vacancy);
        full_exchange(&mut l, &mut LoopbackK);
        let ghost = l.grid.site_id(8, 4, 4, 0); // global (6,2,2) ≡ (0,2,2)
        assert_eq!(l.state[ghost], SiteState::Vacancy);
        // Corner propagation too.
        let c = l.grid.site_id(2, 2, 2, 1);
        let mut l2 = lat();
        l2.set_state(c, SiteState::Vacancy);
        full_exchange(&mut l2, &mut LoopbackK);
        assert_eq!(l2.state[l2.grid.site_id(8, 8, 8, 1)], SiteState::Vacancy);
    }

    #[test]
    fn sector_dirs_are_seven() {
        let d = sector_dirs([0, 0, 0]);
        assert_eq!(d.len(), 7);
        assert!(d.contains(&[-1, -1, -1]));
        assert!(d.contains(&[-1, 0, 0]));
        let d2 = sector_dirs([1, 0, 1]);
        assert!(d2.contains(&[1, 0, 0]));
        assert!(d2.contains(&[1, -1, 1]));
    }

    #[test]
    fn traditional_get_refreshes_sector_ghosts() {
        let mut l = lat();
        // Owned site near the high-x edge; sector (1,0,0)'s get must
        // bring its image into the high-x ghost.
        let s = l.grid.site_id(7, 4, 4, 0); // global (5,2,2)
        l.set_state(s, SiteState::Vacancy);
        traditional_get(&mut l, [1, 0, 0], &mut LoopbackK);
        // high ghost image of global (5,2,2): hmm — the high-x ghost
        // covers global cells 0..2; cell 5 mirrors into the LOW ghost.
        // The get for sector (1,0,0) fills the high ghost from the low
        // owned edge instead:
        let low_owned = l.grid.site_id(2, 4, 4, 0); // global (0,2,2)
        l.set_state(low_owned, SiteState::Vacancy);
        traditional_get(&mut l, [1, 0, 0], &mut LoopbackK);
        let high_ghost = l.grid.site_id(8, 4, 4, 0); // global (6,2,2)≡(0,2,2)
        assert_eq!(l.state[high_ghost], SiteState::Vacancy);
    }

    #[test]
    fn traditional_put_returns_ghost_changes_to_owner() {
        let mut l = lat();
        full_exchange(&mut l, &mut LoopbackK);
        // Simulate a sector event that moved a vacancy into the low-x
        // ghost: global (5,2,2) seen at storage (1,4,4).
        let ghost = l.grid.site_id(1, 4, 4, 0);
        l.set_state(ghost, SiteState::Vacancy);
        traditional_put(&mut l, [0, 0, 0], &mut LoopbackK);
        let owner = l.grid.site_id(7, 4, 4, 0); // global (5,2,2)
        assert_eq!(l.state[owner], SiteState::Vacancy);
        assert_eq!(l.n_vacancies(), 1, "owned vacancy registered");
    }

    #[test]
    fn on_demand_applies_updates_to_all_images() {
        let mut l = lat();
        full_exchange(&mut l, &mut LoopbackK);
        // Dirty an owned site at the very low edge; on-demand must
        // update its high-side ghost image through the message cycle.
        let s = l.grid.site_id(2, 3, 3, 0); // global (0,1,1)
        l.set_state(s, SiteState::Vacancy);
        on_demand_put(
            &mut l,
            [0, 0, 0],
            &[s],
            OnDemandMode::TwoSided,
            &mut LoopbackK,
        );
        let ghost = l.grid.site_id(8, 3, 3, 0); // global (6,1,1)≡(0,1,1)
        assert_eq!(l.state[ghost], SiteState::Vacancy);
    }

    #[test]
    fn on_demand_ghost_write_reaches_owner() {
        let mut l = lat();
        full_exchange(&mut l, &mut LoopbackK);
        // Event moved a vacancy into the low-x ghost (global (5,3,3)).
        let ghost = l.grid.site_id(1, 3, 3, 1);
        l.set_state(ghost, SiteState::Vacancy);
        on_demand_put(
            &mut l,
            [0, 0, 0],
            &[ghost],
            OnDemandMode::OneSided,
            &mut LoopbackK,
        );
        let owner = l.grid.site_id(7, 3, 3, 1);
        assert_eq!(l.state[owner], SiteState::Vacancy);
        assert_eq!(l.n_vacancies(), 1);
    }

    #[test]
    fn analytic_baseline_matches_measured_traditional_traffic() {
        let mut l = lat();
        full_exchange(&mut l, &mut LoopbackK);
        let get = traditional_get(&mut l, [0, 0, 0], &mut LoopbackK);
        let put = traditional_put(&mut l, [1, 0, 1], &mut LoopbackK);
        assert_eq!(get, traditional_get_bytes(&l), "get baseline is exact");
        assert_eq!(put, traditional_put_bytes(&l), "put baseline is exact");
        assert_eq!(get + put, full_ghost_baseline_bytes(&l));
        assert_eq!(put_candidate_sites(&l) * 16, put, "16 B per slab site");
    }

    #[test]
    fn post_sector_accounts_on_demand_savings() {
        let mut l = lat();
        full_exchange(&mut l, &mut LoopbackK);
        // One dirty site at the sector corner edge, one deep interior.
        let edge = l.grid.site_id(2, 3, 3, 0);
        let deep = l.grid.site_id(4, 4, 4, 0);
        l.set_state(edge, SiteState::Vacancy);
        let xfer = post_sector(
            ExchangeStrategy::OnDemand(OnDemandMode::TwoSided),
            &mut l,
            [0, 0, 0],
            &[edge, deep, edge],
            &mut LoopbackK,
        );
        assert_eq!(xfer.dirty_sites, 1, "deep site not shipped, edge deduped");
        assert!(xfer.bytes <= xfer.baseline_bytes);
        assert!(xfer.dirty_sites < xfer.candidate_sites);
        assert_eq!(xfer.baseline_bytes, full_ghost_baseline_bytes(&l));
        // Traditional ships every candidate: dirty fraction is 1.
        let mut l2 = lat();
        full_exchange(&mut l2, &mut LoopbackK);
        let trad = post_sector(
            ExchangeStrategy::Traditional,
            &mut l2,
            [0, 0, 0],
            &[],
            &mut LoopbackK,
        );
        assert_eq!(trad.dirty_sites, trad.candidate_sites);
    }

    #[test]
    fn interior_dirty_site_far_from_edges_sends_nothing() {
        let mut l = lat();
        let s = l.grid.site_id(4, 4, 4, 0); // deep interior
        l.set_state(s, SiteState::Vacancy);
        let (i, j, k, _) = l.grid.decode(s);
        for d in sector_dirs([0, 0, 0]) {
            assert!(
                !relevant_to(&l, [i, j, k], d),
                "deep-interior site must not be shipped (dir {d:?})"
            );
        }
    }
}
