//! Checkpoint/restart for KMC runs.
//!
//! A [`KmcCheckpoint`] captures the site states, clock and statistics.
//! The RNG is reseeded from `(seed, cycles)` on restore, so a restarted
//! run is *statistically* a valid continuation (every trajectory drawn
//! is a legal KMC trajectory of the restored state) but not bitwise
//! identical to the uninterrupted one — the standard contract for
//! stochastic-simulation restarts.

use mmds_lattice::LocalGrid;
use serde::{Deserialize, Serialize};

use crate::config::KmcConfig;
use crate::lattice::SiteState;
use crate::sublattice::{KmcSimulation, RunStats};

/// Serializable snapshot of one rank's KMC state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KmcCheckpoint {
    /// Configuration (energy tables rebuilt on restore).
    pub cfg: KmcConfig,
    /// The local grid.
    pub grid: LocalGrid,
    /// Site states, wire-encoded.
    pub states: Vec<u8>,
    /// Simulated KMC time (s).
    pub time: f64,
    /// Statistics.
    pub stats: RunStats,
}

impl KmcSimulation {
    /// Captures a restartable snapshot.
    pub fn checkpoint(&self) -> KmcCheckpoint {
        KmcCheckpoint {
            cfg: self.cfg,
            grid: self.lat.grid,
            states: self.lat.state.iter().map(|s| s.to_u8()).collect(),
            time: self.time,
            stats: self.stats,
        }
    }

    /// Rebuilds a simulation from a snapshot (RNG reseeded from the
    /// seed and completed cycle count).
    pub fn restore(ck: KmcCheckpoint) -> Self {
        let mut cfg = ck.cfg;
        cfg.seed = ck.cfg.seed.wrapping_add(ck.stats.cycles);
        let mut sim = KmcSimulation::new(cfg, ck.grid);
        sim.cfg = ck.cfg;
        assert_eq!(
            sim.lat.state.len(),
            ck.states.len(),
            "checkpoint grid mismatch"
        );
        for (s, &v) in ck.states.iter().enumerate() {
            sim.lat.set_state(s, SiteState::from_u8(v));
        }
        sim.time = ck.time;
        sim.stats = ck.stats;
        sim
    }

    /// Writes a checkpoint as JSON.
    pub fn save_checkpoint(&self, path: &std::path::Path) -> std::io::Result<()> {
        let s = serde_json::to_string(&self.checkpoint()).expect("state is serializable");
        std::fs::write(path, s)
    }

    /// Reads a checkpoint written by [`Self::save_checkpoint`].
    pub fn load_checkpoint(path: &std::path::Path) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        let ck: KmcCheckpoint =
            serde_json::from_str(&s).map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(Self::restore(ck))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::LoopbackK;
    use crate::exchange::ExchangeStrategy;
    use crate::lattice::required_ghost;
    use mmds_lattice::BccGeometry;

    fn sim() -> KmcSimulation {
        let cfg = KmcConfig {
            table_knots: 600,
            events_per_cycle: 1.0,
            ..Default::default()
        };
        let ghost = required_ghost(cfg.a0, cfg.rate_cutoff);
        let grid = LocalGrid::whole(BccGeometry::fe_cube(8), ghost);
        let mut s = KmcSimulation::new(cfg, grid);
        s.lat.seed_vacancies_global(6, 3);
        s.initialize(&mut LoopbackK);
        s
    }

    #[test]
    fn restore_preserves_state_and_clock() {
        let mut s = sim();
        s.run_cycles(ExchangeStrategy::Traditional, &mut LoopbackK, 5);
        let r = KmcSimulation::restore(s.checkpoint());
        assert_eq!(r.lat.state, s.lat.state);
        assert_eq!(r.time, s.time);
        assert_eq!(r.stats.events, s.stats.events);
        assert_eq!(r.lat.n_vacancies(), s.lat.n_vacancies());
    }

    #[test]
    fn restored_run_continues_validly() {
        let mut s = sim();
        s.run_cycles(ExchangeStrategy::Traditional, &mut LoopbackK, 4);
        let n_vac = s.lat.n_vacancies();
        let mut r = KmcSimulation::restore(s.checkpoint());
        let events = r.run_cycles(ExchangeStrategy::Traditional, &mut LoopbackK, 6);
        assert!(events > 0, "dynamics must continue");
        assert_eq!(r.lat.n_vacancies(), n_vac, "conservation across restart");
        assert!(r.time > s.time);
    }

    #[test]
    fn json_round_trip() {
        let mut s = sim();
        s.run_cycles(ExchangeStrategy::Traditional, &mut LoopbackK, 2);
        let dir = std::env::temp_dir().join("mmds_kmc_ck");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kmc.ckpt.json");
        s.save_checkpoint(&path).unwrap();
        let r = KmcSimulation::load_checkpoint(&path).unwrap();
        assert_eq!(r.lat.state, s.lat.state);
        assert_eq!(r.stats.cycles, s.stats.cycles);
    }
}
