//! On-lattice EAM energetics and transition rates (Eq. 4).
//!
//! "KMC uses the EAM potential to calculate the probability of the
//! vacancy transition. ... We use the interpolation method to calculate
//! the EAM potential, which is the same as MD" (§2.2). On a rigid
//! lattice every neighbour sits at a shell-ideal distance, so the
//! interpolation tables are sampled once per offset at construction and
//! the inner loop reduces to occupancy sums. The embedding term is
//! still evaluated through the (compacted) table at run time.
//!
//! Alloys are supported end to end: the paper's Fe–Cu case (§2.1.2)
//! uses one pair/density table per species pair and one embedding
//! table per species — exactly the sampled-shell tables held here.

use mmds_eam::analytic::{AnalyticEam, Species};
use mmds_eam::compact::CompactTable;
use mmds_eam::potential::{RHO_MAX, R_MIN};
use serde::{Deserialize, Serialize};

use crate::config::KmcConfig;
use crate::lattice::{KmcLattice, SiteState};

/// Species-pair index: Fe-Fe = 0, Cu-Cu = 1, Fe-Cu = 2.
#[inline]
fn pair_idx(a: SiteState, b: SiteState) -> usize {
    match (a, b) {
        (SiteState::Fe, SiteState::Fe) => 0,
        (SiteState::Cu, SiteState::Cu) => 1,
        _ => 2,
    }
}

/// Table-sampled pair/density values per neighbour offset, per species
/// pair, plus per-species embedding tables.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    /// φ(r_ideal) per `[pair][basis][offset]`.
    pub phi: [[Vec<f64>; 2]; 3],
    /// f(r_ideal) per `[pair][basis][offset]`.
    pub f: [[Vec<f64>; 2]; 3],
    /// Compacted embedding tables per species (Fe, Cu).
    pub embed: [CompactTable; 2],
    /// k_B·T (eV).
    pub kbt: f64,
    /// Attempt frequency (1/s).
    pub nu: f64,
    /// Kang–Weinberg base barrier (eV).
    pub e_mig0: f64,
    /// Barrier floor (eV).
    pub e_floor: f64,
}

/// Statistics of rate evaluations (feeds the compute-time model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RateStats {
    /// Rate evaluations performed.
    pub rate_evals: u64,
    /// Patch-energy site evaluations performed.
    pub site_evals: u64,
}

impl EnergyModel {
    /// Builds the full Fe/Cu/Fe-Cu model from a config. Pure-Fe systems
    /// simply never index the Cu tables.
    pub fn new(cfg: &KmcConfig, lat: &KmcLattice) -> Self {
        let n = cfg.table_knots;
        let pair_params = [
            AnalyticEam::for_pair(Species::Fe, Species::Fe),
            AnalyticEam::for_pair(Species::Cu, Species::Cu),
            AnalyticEam::for_pair(Species::Fe, Species::Cu),
        ];
        // Sample the pair/density *tables* at the shell-ideal distances
        // (the tables are the paper's machinery; building them from the
        // compacted form keeps KMC and MD numerically aligned).
        let mut phi: [[Vec<f64>; 2]; 3] = Default::default();
        let mut f: [[Vec<f64>; 2]; 3] = Default::default();
        for (pi, p) in pair_params.iter().enumerate() {
            let t_phi = CompactTable::build(|r| p.phi(r), R_MIN, p.r_cut, n);
            let t_f = CompactTable::build(|r| p.density(r), R_MIN, p.r_cut, n);
            for b in 0..2 {
                let offs = lat.offsets.for_basis(b);
                phi[pi][b] = offs.iter().map(|o| t_phi.eval(o.r_ideal)).collect();
                f[pi][b] = offs.iter().map(|o| t_f.eval(o.r_ideal)).collect();
            }
        }
        let embed_of = |s: Species| {
            let p = AnalyticEam::for_pair(s, s);
            CompactTable::build(move |rho| p.embed(rho), 0.0, RHO_MAX, n)
        };
        Self {
            phi,
            f,
            embed: [embed_of(Species::Fe), embed_of(Species::Cu)],
            kbt: cfg.kbt(),
            nu: cfg.nu,
            e_mig0: cfg.e_mig0,
            e_floor: cfg.e_mig_floor,
        }
    }

    /// Embedding energy of a `species` atom at density `rho`.
    #[inline]
    fn embed_energy(&self, species: SiteState, rho: f64) -> f64 {
        let idx = match species {
            SiteState::Fe => 0,
            SiteState::Cu => 1,
            SiteState::Vacancy => return 0.0,
        };
        self.embed[idx].eval(rho)
    }

    /// Energy of one site given current occupancies:
    /// `F_s(ρ_s) + ½ Σ_j φ_{s,s_j}(r_sj)` (zero for a vacancy).
    pub fn site_energy(&self, lat: &KmcLattice, s: usize, stats: &mut RateStats) -> f64 {
        stats.site_evals += 1;
        let me = lat.state[s];
        if me == SiteState::Vacancy {
            return 0.0;
        }
        let b = s & 1;
        let mut rho = 0.0;
        let mut pair = 0.0;
        for (idx, &d) in lat.deltas[b].iter().enumerate() {
            let n = (s as isize + d) as usize;
            let them = lat.state[n];
            if them.is_atom() {
                let pi = pair_idx(me, them);
                rho += self.f[pi][b][idx];
                pair += self.phi[pi][b][idx];
            }
        }
        self.embed_energy(me, rho) + 0.5 * pair
    }

    /// Energy of the patch affected by swapping `v` (vacancy) and `n`
    /// (atom): the two sites plus every neighbour of either.
    fn patch_energy(&self, lat: &KmcLattice, patch: &[usize], stats: &mut RateStats) -> f64 {
        patch.iter().map(|&s| self.site_energy(lat, s, stats)).sum()
    }

    /// Builds the affected patch for an exchange.
    pub fn patch(&self, lat: &KmcLattice, v: usize, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = Vec::with_capacity(32);
        p.push(v);
        p.push(n);
        p.extend(lat.neighbors(v));
        p.extend(lat.neighbors(n));
        p.sort_unstable();
        p.dedup();
        p
    }

    /// ΔE of exchanging the vacancy at `v` with the atom at `n`
    /// (positive = final state higher).
    pub fn delta_e(&self, lat: &mut KmcLattice, v: usize, n: usize, stats: &mut RateStats) -> f64 {
        debug_assert_eq!(lat.state[v], SiteState::Vacancy);
        debug_assert!(lat.state[n].is_atom());
        let patch = self.patch(lat, v, n);
        let before = self.patch_energy(lat, &patch, stats);
        let atom = lat.state[n];
        lat.state[n] = SiteState::Vacancy;
        lat.state[v] = atom;
        let after = self.patch_energy(lat, &patch, stats);
        lat.state[v] = SiteState::Vacancy;
        lat.state[n] = atom;
        after - before
    }

    /// Transition rate `k = ν exp(−E_m/k_B T)` with the Kang–Weinberg
    /// barrier `E_m = max(floor, E_m⁰ + ΔE/2)`.
    pub fn rate(&self, lat: &mut KmcLattice, v: usize, n: usize, stats: &mut RateStats) -> f64 {
        stats.rate_evals += 1;
        let de = self.delta_e(lat, v, n, stats);
        let barrier = (self.e_mig0 + 0.5 * de).max(self.e_floor);
        self.nu * (-barrier / self.kbt).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_lattice::{BccGeometry, LocalGrid};

    fn setup() -> (KmcLattice, EnergyModel, RateStats) {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(6), 2);
        let lat = KmcLattice::all_fe(grid, 3.0);
        let cfg = KmcConfig {
            table_knots: 1000,
            ..Default::default()
        };
        let model = EnergyModel::new(&cfg, &lat);
        (lat, model, RateStats::default())
    }

    #[test]
    fn shell_samples_match_analytic() {
        let (lat, m, _) = setup();
        let p = AnalyticEam::fe();
        for (idx, o) in lat.offsets.basis0.iter().enumerate() {
            assert!((m.phi[0][0][idx] - p.phi(o.r_ideal)).abs() < 1e-6);
            assert!((m.f[0][0][idx] - p.density(o.r_ideal)).abs() < 1e-6);
        }
    }

    #[test]
    fn isolated_vacancy_hops_are_symmetric() {
        let (mut lat, m, mut st) = setup();
        let v = lat.grid.site_id(4, 4, 4, 0);
        lat.set_state(v, SiteState::Vacancy);
        let nns: Vec<usize> = lat.nn1(v).collect();
        let rates: Vec<f64> = nns
            .iter()
            .map(|&n| m.rate(&mut lat, v, n, &mut st))
            .collect();
        // All 8 hops of an isolated vacancy are equivalent by symmetry.
        for w in rates.windows(2) {
            assert!((w[0] - w[1]).abs() / w[0] < 1e-9, "{rates:?}");
        }
        // ΔE ≈ 0 for a symmetric exchange ⇒ k ≈ reference rate.
        let k_ref = m.nu * (-m.e_mig0 / m.kbt).exp();
        assert!(
            (rates[0] - k_ref).abs() / k_ref < 0.05,
            "{} vs {k_ref}",
            rates[0]
        );
        assert!(st.rate_evals == 8);
    }

    #[test]
    fn delta_e_antisymmetric() {
        let (mut lat, m, mut st) = setup();
        let v = lat.grid.site_id(4, 4, 4, 0);
        let n = lat.grid.site_id(4, 4, 4, 1);
        // Add a second vacancy nearby to break symmetry.
        let v2 = lat.grid.site_id(5, 4, 4, 0);
        lat.set_state(v, SiteState::Vacancy);
        lat.set_state(v2, SiteState::Vacancy);
        let de_fwd = m.delta_e(&mut lat, v, n, &mut st);
        let atom = lat.state[n];
        lat.set_state(n, SiteState::Vacancy);
        lat.set_state(v, atom);
        let de_bwd = m.delta_e(&mut lat, n, v, &mut st);
        assert!((de_fwd + de_bwd).abs() < 1e-9, "{de_fwd} vs {de_bwd}");
    }

    #[test]
    fn divacancy_binding_is_attractive() {
        // Separating a bound 1NN divacancy must cost energy — the
        // clustering driver of Fig. 17.
        let (mut lat, m, mut st) = setup();
        let v1 = lat.grid.site_id(4, 4, 4, 0);
        let v2 = lat.grid.site_id(4, 4, 4, 1); // 1NN pair
        lat.set_state(v1, SiteState::Vacancy);
        lat.set_state(v2, SiteState::Vacancy);
        let far = lat.grid.site_id(3, 3, 3, 1);
        assert!(lat.nn1(v1).any(|x| x == far));
        let de_separate = m.delta_e(&mut lat, v1, far, &mut st);
        assert!(
            de_separate > 0.05,
            "separation must cost energy: {de_separate}"
        );
    }

    #[test]
    fn swap_restores_state() {
        let (mut lat, m, mut st) = setup();
        let v = lat.grid.site_id(3, 3, 3, 0);
        lat.set_state(v, SiteState::Vacancy);
        let n = lat.nn1(v).next().unwrap();
        let before = lat.state.clone();
        let _ = m.rate(&mut lat, v, n, &mut st);
        assert_eq!(lat.state, before, "rate evaluation must not mutate");
    }

    /// 8-cell lattice where all probe sites sit ≥ 2 cells inside the
    /// interior, so no energy evaluation reads (stale, all-Fe) ghosts.
    fn deep_setup() -> (KmcLattice, EnergyModel, RateStats) {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(8), 2);
        let lat = KmcLattice::all_fe(grid, 3.0);
        let cfg = KmcConfig {
            table_knots: 1000,
            ..Default::default()
        };
        let model = EnergyModel::new(&cfg, &lat);
        (lat, model, RateStats::default())
    }

    #[test]
    fn cu_impurity_changes_energetics() {
        // A lone V–Cu swap is symmetric (ΔE = 0, same rate as Fe), so
        // break the symmetry with a second Cu: hopping the vacancy
        // toward vs away from the Cu pair must differ.
        let (mut lat, m, mut st) = deep_setup();
        let v = lat.grid.site_id(5, 5, 5, 0);
        lat.set_state(v, SiteState::Vacancy);
        lat.set_state(lat.grid.site_id(6, 6, 6, 0), SiteState::Cu);
        let partners: Vec<usize> = lat.nn1(v).collect();
        let rates: Vec<f64> = partners
            .iter()
            .map(|&n| m.rate(&mut lat, v, n, &mut st))
            .collect();
        let spread = rates.iter().fold(f64::MIN, |a, &b| a.max(b))
            / rates.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(spread > 1.0 + 1e-6, "Cu must bias the hop rates: {rates:?}");
    }

    #[test]
    fn cu_vacancy_exchange_is_not_frozen() {
        // The vacancy-mediated Cu transport mechanism: the barrier for a
        // V–Cu exchange must be of the same order as the Fe one (the
        // Kang–Weinberg form keeps lone-pair exchanges symmetric).
        let (mut lat, m, mut st) = deep_setup();
        let v = lat.grid.site_id(5, 5, 5, 0);
        lat.set_state(v, SiteState::Vacancy);
        let n = lat.nn1(v).next().unwrap();
        let k_fe = m.rate(&mut lat, v, n, &mut st);
        lat.set_state(n, SiteState::Cu);
        let k_cu = m.rate(&mut lat, v, n, &mut st);
        assert!(
            k_cu > 0.05 * k_fe && k_cu < 20.0 * k_fe,
            "V-Cu exchange rate out of range: {k_cu} vs {k_fe}"
        );
    }

    #[test]
    fn cu_pair_binding_drives_demixing() {
        // Positive heat of mixing: two adjacent Cu atoms are lower in
        // energy than two separated ones — the precipitation driver.
        let (mut lat, m, mut st) = deep_setup();
        let owned: Vec<usize> = lat.grid.interior_ids().collect();
        let a = lat.grid.site_id(5, 5, 5, 0);
        let b_near = lat.grid.site_id(5, 5, 5, 1); // 1NN
        let b_far = lat.grid.site_id(8, 8, 8, 1);
        lat.set_state(a, SiteState::Cu);
        lat.set_state(b_near, SiteState::Cu);
        let e_pair: f64 = owned.iter().map(|&s| m.site_energy(&lat, s, &mut st)).sum();
        lat.set_state(b_near, SiteState::Fe);
        lat.set_state(b_far, SiteState::Cu);
        let e_sep: f64 = owned.iter().map(|&s| m.site_energy(&lat, s, &mut st)).sum();
        assert!(
            e_pair < e_sep,
            "Cu-Cu binding must be attractive: pair {e_pair} vs separated {e_sep}"
        );
    }

    #[test]
    fn pair_index_symmetric() {
        assert_eq!(pair_idx(SiteState::Fe, SiteState::Cu), 2);
        assert_eq!(pair_idx(SiteState::Cu, SiteState::Fe), 2);
        assert_eq!(pair_idx(SiteState::Fe, SiteState::Fe), 0);
        assert_eq!(pair_idx(SiteState::Cu, SiteState::Cu), 1);
    }
}
