//! Multi-rank KMC runs over a `mmds-swmpi` world (Figs. 12–15).

use mmds_lattice::{BccGeometry, LocalGrid};
use mmds_swmpi::topology::CartGrid;
use mmds_swmpi::world::RankOutput;
use mmds_swmpi::World;
use serde::{Deserialize, Serialize};

use crate::comm::CommK;
use crate::config::KmcConfig;
use crate::exchange::ExchangeStrategy;
use crate::sublattice::KmcSimulation;

/// Parameters of a parallel KMC run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ParallelKmcParams {
    /// KMC configuration.
    pub kmc: KmcConfig,
    /// Global box in BCC cells per axis (must divide over the rank grid).
    pub global_cells: [usize; 3],
    /// Vacancy concentration (fraction of sites).
    pub vacancy_concentration: f64,
    /// Synchronisation cycles to run.
    pub cycles: usize,
    /// Exchange strategy.
    pub strategy: ExchangeStrategy,
    /// Charge modelled compute time to rank clocks (disable to isolate
    /// communication time, Fig. 13).
    pub charge_compute: bool,
}

/// Per-rank outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KmcRankSummary {
    /// Events executed by this rank.
    pub events: u64,
    /// Final owned vacancies.
    pub vacancies: usize,
    /// Owned sites.
    pub sites: usize,
    /// Simulated KMC time (s).
    pub time: f64,
    /// Global cells (canonical) of the final owned vacancies, with basis.
    pub vacancy_cells: Vec<([u32; 3], u8)>,
}

/// Builds a rank's local grid.
pub fn kmc_rank_grid(
    cfg: &KmcConfig,
    global_cells: [usize; 3],
    grid3: CartGrid,
    rank: usize,
) -> LocalGrid {
    let geom = BccGeometry::new(cfg.a0, global_cells[0], global_cells[1], global_cells[2]);
    let (start, len) = grid3.subdomain(global_cells, rank);
    for ax in 0..3 {
        assert_eq!(
            global_cells[ax] % grid3.dims[ax],
            0,
            "global cells must divide evenly over ranks (axis {ax})"
        );
    }
    let ghost = crate::lattice::required_ghost(cfg.a0, cfg.rate_cutoff);
    LocalGrid::new(geom, start, len, ghost)
}

/// Runs domain-decomposed KMC on `ranks` ranks.
pub fn run_parallel_kmc(
    world: &World,
    ranks: usize,
    params: &ParallelKmcParams,
) -> Vec<RankOutput<KmcRankSummary>> {
    let grid3 = CartGrid::for_ranks(ranks);
    let out = world.run(ranks, |comm| {
        let _rank_tag = mmds_telemetry::rank_scope(comm.rank() as u32);
        let mut cfg = params.kmc;
        cfg.seed = params.kmc.rank_seed(comm.rank());
        let grid = kmc_rank_grid(&cfg, params.global_cells, grid3, comm.rank());
        let mut sim = KmcSimulation::new(cfg, grid);
        let total_sites =
            2 * params.global_cells[0] * params.global_cells[1] * params.global_cells[2];
        let n_vac = (params.vacancy_concentration * total_sites as f64).round() as usize;
        // Same seed on every rank: the vacancy configuration is a
        // property of the *system*, not of the decomposition.
        sim.lat
            .seed_vacancies_global(n_vac, params.kmc.seed ^ 0xACE1);
        let mut t = if params.charge_compute {
            CommK::new(comm, grid3)
        } else {
            CommK::without_compute_charge(comm, grid3)
        };
        sim.initialize(&mut t);
        comm.reset_accounting();
        let events = sim.run_cycles(params.strategy, &mut t, params.cycles);
        comm.barrier();
        let vacancy_cells = sim
            .lat
            .vacancies()
            .map(|s| {
                let (g, b) = sim.lat.local_to_global(s);
                ([g[0] as u32, g[1] as u32, g[2] as u32], b as u8)
            })
            .collect();
        KmcRankSummary {
            events,
            vacancies: sim.lat.n_vacancies(),
            sites: sim.lat.n_owned(),
            time: sim.time,
            vacancy_cells,
        }
    });
    if mmds_telemetry::enabled() {
        for (rank, r) in out.iter().enumerate() {
            mmds_telemetry::absorb_comm_rank(rank as u32, &r.stats, Some(&r.matrix));
        }
        // Defect-conservation health gate: vacancies only migrate, so
        // the world total must still equal what was seeded.
        let total_sites =
            2 * params.global_cells[0] * params.global_cells[1] * params.global_cells[2];
        let seeded = (params.vacancy_concentration * total_sites as f64).round() as usize;
        let total_vac: usize = out.iter().map(|r| r.result.vacancies).sum();
        if total_vac != seeded {
            mmds_telemetry::add_counter("kmc.health.conservation_warn", 1.0);
            eprintln!(
                "[telemetry] KMC vacancy conservation violated: seeded {seeded}, final {total_vac}"
            );
        }
    }
    out
}

/// Aggregates: total bytes sent by all ranks (the Fig. 12 metric).
pub fn total_bytes_sent<T>(out: &[RankOutput<T>]) -> u64 {
    out.iter()
        .map(|r| r.stats.bytes_sent + r.stats.bytes_put)
        .sum()
}

/// Aggregates: maximum per-rank communication time (the Fig. 13 metric).
pub fn max_comm_time<T>(out: &[RankOutput<T>]) -> f64 {
    out.iter().map(|r| r.stats.comm_time).fold(0.0, f64::max)
}

/// Aggregates: maximum per-rank total virtual time (runtime proxy).
pub fn max_total_time<T>(out: &[RankOutput<T>]) -> f64 {
    out.iter().map(|r| r.clock).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::OnDemandMode;
    use mmds_swmpi::{MachineModel, WorldConfig};

    fn params(cells: usize, cycles: usize, strategy: ExchangeStrategy) -> ParallelKmcParams {
        ParallelKmcParams {
            kmc: KmcConfig {
                table_knots: 800,
                events_per_cycle: 1.0,
                ..Default::default()
            },
            global_cells: [cells; 3],
            vacancy_concentration: 0.002,
            cycles,
            strategy,
            charge_compute: true,
        }
    }

    fn free_world() -> World {
        World::new(WorldConfig {
            model: MachineModel::free(),
            ..Default::default()
        })
    }

    #[test]
    fn vacancies_conserved_across_ranks() {
        let world = free_world();
        let p = params(12, 10, ExchangeStrategy::Traditional);
        let out = run_parallel_kmc(&world, 8, &p);
        let total_vac: usize = out.iter().map(|r| r.result.vacancies).sum();
        let total_sites: usize = out.iter().map(|r| r.result.sites).sum();
        let expected = (0.002f64 * total_sites as f64).round() as usize;
        assert_eq!(total_vac, expected, "vacancy count must be conserved");
        let events: u64 = out.iter().map(|r| r.result.events).sum();
        assert!(events > 0);
    }

    #[test]
    fn on_demand_volume_is_much_smaller() {
        let world = free_world();
        let trad = run_parallel_kmc(&world, 8, &params(12, 6, ExchangeStrategy::Traditional));
        let od = run_parallel_kmc(
            &world,
            8,
            &params(12, 6, ExchangeStrategy::OnDemand(OnDemandMode::TwoSided)),
        );
        let vt = total_bytes_sent(&trad);
        let vo = total_bytes_sent(&od);
        assert!(
            (vo as f64) < 0.2 * vt as f64,
            "on-demand {vo} should be ≪ traditional {vt}"
        );
    }

    #[test]
    fn strategies_agree_across_ranks() {
        let world = free_world();
        let a = run_parallel_kmc(&world, 8, &params(12, 8, ExchangeStrategy::Traditional));
        let b = run_parallel_kmc(
            &world,
            8,
            &params(12, 8, ExchangeStrategy::OnDemand(OnDemandMode::TwoSided)),
        );
        let c = run_parallel_kmc(
            &world,
            8,
            &params(12, 8, ExchangeStrategy::OnDemand(OnDemandMode::OneSided)),
        );
        for r in 0..8 {
            let mut va = a[r].result.vacancy_cells.clone();
            let mut vb = b[r].result.vacancy_cells.clone();
            let mut vc = c[r].result.vacancy_cells.clone();
            va.sort();
            vb.sort();
            vc.sort();
            assert_eq!(va, vb, "rank {r}: two-sided differs from traditional");
            assert_eq!(va, vc, "rank {r}: one-sided differs from traditional");
        }
    }

    #[test]
    fn one_sided_sends_fewer_messages() {
        let world = free_world();
        let two = run_parallel_kmc(
            &world,
            8,
            &params(12, 6, ExchangeStrategy::OnDemand(OnDemandMode::TwoSided)),
        );
        let one = run_parallel_kmc(
            &world,
            8,
            &params(12, 6, ExchangeStrategy::OnDemand(OnDemandMode::OneSided)),
        );
        let m2: u64 = two.iter().map(|r| r.stats.msgs_sent).sum();
        let m1: u64 = one.iter().map(|r| r.stats.puts).sum();
        assert!(
            m1 < m2,
            "one-sided ({m1} puts) must beat two-sided ({m2} msgs, incl. zero-size)"
        );
    }
}
