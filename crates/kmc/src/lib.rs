//! # mmds-kmc — Atomistic Kinetic Monte Carlo
//!
//! KMC "simulates the defect evolution and vacancies clustering" (§2.2)
//! on the time scales MD cannot reach. This crate implements the
//! paper's AKMC side in full:
//!
//! * **On-lattice sites** ([`lattice::KmcLattice`]): every atom or
//!   vacancy maps to a BCC lattice point; events are vacancy/atom
//!   position exchanges with the 8 first nearest neighbours.
//! * **EAM-based rates** ([`model`], Eq. 4): `k = ν·exp(−ΔE/k_B T)`
//!   with the migration barrier from the EAM energy difference of the
//!   exchange (Kang–Weinberg form), evaluated through the same
//!   interpolation-table machinery as MD.
//! * **Semirigorous synchronous sublattice method** ([`sublattice`],
//!   Shim & Amar \[26\], paper Fig. 7): each subdomain is divided into 8
//!   sectors processed sequentially; all ranks work on the same sector
//!   index simultaneously, so concurrently active regions never touch.
//! * **Ghost exchange strategies** ([`exchange`]): the traditional
//!   full-ghost-layer get/put of SPPARKS/KMCLib (Fig. 8 b–c), and the
//!   paper's **on-demand** strategy (Fig. 8 d) in both two-sided
//!   (probe + zero-size messages) and one-sided (window put + fence)
//!   variants, reducing communication volume to the few sites actually
//!   affected — the headline result of Figs. 12–13.

#![forbid(unsafe_code)]
// Fixed-axis coordinate math reads clearest as `for ax in 0..3`.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod comm;
pub mod config;
pub mod exchange;
pub mod lattice;
pub mod model;
pub mod parallel;
pub mod solver;
pub mod sublattice;

pub use config::KmcConfig;
pub use exchange::{ExchangeStrategy, OnDemandMode};
pub use lattice::{KmcLattice, SiteState};
pub use model::EnergyModel;
pub use sublattice::KmcSimulation;

/// Every communication skeleton the KMC engine declares under
/// `strategy`: the exchange phases plus the per-cycle dt reduction.
pub fn comm_plans(strategy: ExchangeStrategy) -> Vec<mmds_swmpi::CommPlan> {
    let mut plans = exchange::exchange_plans(strategy);
    plans.push(sublattice::sync_dt_plan());
    plans
}
