//! Lint fixture (never compiled): the deterministic rewrite of
//! `hashmap_in_force.rs` — per-species partials in a dense `Vec`
//! indexed by species id, accumulated and drained in index order. The
//! linter must report nothing here.

pub fn accumulate_forces(species: &[usize], contrib: &[f64], force: &mut [f64]) {
    let n_species = species.iter().copied().max().map_or(0, |m| m + 1);
    let mut by_species = vec![0.0f64; n_species];
    for (&s, &c) in species.iter().zip(contrib) {
        by_species[s] += c;
    }
    for (s, partial) in by_species.iter().enumerate() {
        force[s % force.len()] += partial;
    }
}
