//! Lint fixture (never compiled): genuine hazards confined to
//! telemetry output, allowlisted with the attribute and comment
//! markers — the linter must suppress both.

use std::collections::HashMap;
use std::time::Instant;

#[mmds_attrs::nondeterministic_ok]
pub fn histogram_total(samples: &HashMap<String, u64>) -> u64 {
    // Integer sum over an unordered map: order-independent, and the
    // result only feeds a telemetry line, never physics state.
    let mut total = 0;
    for (_k, v) in samples.iter() {
        total += v;
    }
    total
}

// mmds: nondeterministic_ok
pub fn stamp() -> Instant {
    Instant::now()
}
