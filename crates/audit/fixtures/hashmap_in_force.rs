//! Lint fixture (never compiled): a force pass that accumulates
//! per-species partials in a `HashMap` and iterates it into the force
//! array — iteration order feeds physics state, the exact hazard the
//! determinism linter must catch.

use std::collections::HashMap;

pub fn accumulate_forces(species: &[usize], contrib: &[f64], force: &mut [f64]) {
    let mut by_species: HashMap<usize, f64> = HashMap::new();
    for (&s, &c) in species.iter().zip(contrib) {
        *by_species.entry(s).or_insert(0.0) += c;
    }
    // BUG: map iteration order is randomized per process; the float
    // additions below land in a different order every run.
    for (s, partial) in by_species.iter() {
        force[*s % force.len()] += partial;
    }
}
