//! Communication-protocol verifier.
//!
//! The exchange code in `md`, `kmc` and `coupled` *declares* its
//! communication skeleton as [`mmds_swmpi::CommPlan`]s: per-phase
//! symbolic op sequences over rank-offset expressions on the periodic
//! 3-D decomposition, with symbolic byte counts (see
//! `mmds_swmpi::skeleton`). This pass proves every declared plan
//! well-formed without running anything:
//!
//! * **match closure** — every symbolic send has a matching receive on
//!   the image rank, and vice versa (no orphan sends/recvs);
//! * **deadlock freedom** — no variant orders a blocking receive ahead
//!   of the send that feeds it;
//! * **fence enclosure** — every one-sided `win_put` is closed by a
//!   later `win_fence` epoch;
//! * **concrete execution** — each symbolically clean plan also runs to
//!   completion on the lock-step oracle
//!   ([`mmds_swmpi::skeleton::simulate`]) at P = 8 and P = 27, the
//!   smallest non-degenerate periodic grids.
//!
//! A lexical half guards the property the IR cannot express: rank
//! uniformity. Collective invocations (`barrier` / `allreduce` /
//! `allgather` / `win_fence`) lexically inside rank-dependent control
//! flow deadlock the real machine when only some ranks reach them, and
//! a `win_put` with no later `win_fence` in its enclosing function
//! leaves deposits invisible. Sites where the divergence is provably
//! rank-uniform opt out with `// mmds: collective_uniform_ok` plus a
//! justification.
//!
//! The dynamic half of the same contract lives in
//! `mmds-bench::reconcile`: the causal-smoke driver replays a traced
//! 8-rank coupled run against these same declared plans and fails CI
//! unless every traced op, payload and match id reconciles.

use std::path::Path;

use mmds_swmpi::skeleton;
use mmds_swmpi::{CartGrid, CommPlan};

use crate::findings::{Finding, Pass};
use crate::workspace::{self, SourceFile};

/// Directories whose live code invokes communication primitives and is
/// therefore subject to the rank-uniformity lint. `swmpi` itself is
/// exempt: it *implements* the primitives.
const COMM_DIRS: [&str; 3] = ["crates/md/src", "crates/kmc/src", "crates/coupled/src"];

/// Every communication skeleton the workspace declares: the MD ghost /
/// offload halo plans, the KMC exchange plans under all three
/// strategies (the on-demand dirty plans differ per mode), and the
/// coupled driver's phase barriers.
pub fn collect_plans() -> Vec<CommPlan> {
    use mmds_kmc::{ExchangeStrategy, OnDemandMode};
    let mut plans = mmds_md::domain::comm_plans();
    plans.extend(mmds_kmc::comm_plans(ExchangeStrategy::Traditional));
    for mode in [OnDemandMode::TwoSided, OnDemandMode::OneSided] {
        plans.extend(
            mmds_kmc::exchange::exchange_plans(ExchangeStrategy::OnDemand(mode))
                .into_iter()
                .filter(|p| p.phase == "kmc.exchange.dirty"),
        );
    }
    plans.extend(mmds_coupled::parallel::comm_plans());
    plans
}

/// Runs the protocol pass: proves the declared plans and lints the
/// communication call sites under `root`. Returns the rendered
/// skeleton table and all findings.
pub fn run(root: &Path) -> (String, Vec<Finding>) {
    let plans = collect_plans();
    let table = skeleton::render_skeleton_table(&plans);
    let mut findings = prove_plans(&plans);
    for file in workspace::load_sources(root, &COMM_DIRS) {
        findings.extend(lint_file(&file));
    }
    (table, findings)
}

/// Proves each plan symbolically (match closure, deadlock freedom,
/// fence enclosure), then executes the symbolically clean ones on the
/// lock-step oracle at P = 8 and P = 27.
pub fn prove_plans(plans: &[CommPlan]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for plan in plans {
        let violations = skeleton::verify_plan(plan);
        let symbolic_clean = violations.is_empty();
        for v in violations {
            findings.push(Finding::at(
                Pass::Protocol,
                plan.declared_in.clone(),
                0,
                v.to_string(),
            ));
        }
        if !symbolic_clean {
            continue;
        }
        for ranks in [8usize, 27] {
            let grid = CartGrid::for_ranks(ranks);
            let instances = 2 * plan.variants.len().max(1);
            if let Err(v) = skeleton::simulate(plan, &grid, instances) {
                findings.push(Finding::at(
                    Pass::Protocol,
                    plan.declared_in.clone(),
                    0,
                    format!("lock-step execution at P={ranks}: {v}"),
                ));
            }
        }
    }
    findings
}

/// Lints one source file for rank-guarded collectives and unfenced
/// puts. Findings inside `#[cfg(test)]` items or under a
/// `collective_uniform_ok` marker are suppressed.
pub fn lint_file(file: &SourceFile) -> Vec<Finding> {
    let live = workspace::strip_test_blocks(&file.scrubbed);
    let suppressed = workspace::marker_ranges(file, "collective_uniform_ok");
    let mut findings = Vec::new();

    rank_guarded_collectives(file, &live, &mut findings);
    unfenced_puts(file, &live, &mut findings);

    findings.retain(|f| !suppressed.iter().any(|&(a, b)| (a..=b).contains(&f.line)));
    findings.sort_by_key(|f| f.line);
    findings.dedup();
    findings
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whole-word containment: `rank` matches `comm.rank()` but not
/// `ranks` or `rank_of`.
fn has_word(text: &str, word: &str) -> bool {
    let b = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        from = at + word.len();
        let pre = at == 0 || !is_ident(b[at - 1]);
        let end = at + word.len();
        let post = end >= b.len() || !is_ident(b[end]);
        if pre && post {
            return true;
        }
    }
    false
}

fn is_control(header: &str) -> bool {
    ["if", "match", "while", "for"]
        .iter()
        .any(|w| has_word(header, w))
}

/// Flags collective invocations lexically inside rank-dependent
/// control flow. A block is rank-guarded when its header (the text
/// between the previous `;`/`{`/`}` and its `{`) is a control
/// construct mentioning the word `rank`, or an `else` whose `if`
/// closed as rank-guarded; guardedness propagates to nested blocks.
fn rank_guarded_collectives(file: &SourceFile, live: &str, findings: &mut Vec<Finding>) {
    const COLLECTIVES: [(&str, &str); 4] = [
        (".barrier(", "barrier"),
        (".allreduce", "allreduce"),
        (".allgather", "allgather"),
        (".win_fence(", "win_fence"),
    ];
    struct Blk {
        guarded: bool,
        own_guard: bool,
    }
    let bytes = live.as_bytes();
    let mut stack: Vec<Blk> = Vec::new();
    let mut last_break = 0usize;
    let mut last_closed_guard = false;
    let mut i = 0;
    while i < bytes.len() {
        if stack.last().is_some_and(|b| b.guarded) {
            for (needle, name) in COLLECTIVES {
                if live[i..].starts_with(needle) {
                    findings.push(Finding::at(
                        Pass::Protocol,
                        file.rel.clone(),
                        file.line_of(i),
                        format!(
                            "rank-guarded collective: `{name}` inside rank-dependent \
                             control flow — a collective some ranks never reach deadlocks; \
                             hoist it out or mark the site // mmds: collective_uniform_ok \
                             with a justification"
                        ),
                    ));
                }
            }
        }
        match bytes[i] {
            b';' => {
                last_break = i + 1;
                last_closed_guard = false;
            }
            b'{' => {
                let header = &live[last_break..i];
                let parent = stack.last().is_some_and(|b| b.guarded);
                let own = (is_control(header) && has_word(header, "rank"))
                    || (has_word(header, "else") && last_closed_guard);
                stack.push(Blk {
                    guarded: parent || own,
                    own_guard: own,
                });
                last_break = i + 1;
                last_closed_guard = false;
            }
            b'}' => {
                last_closed_guard = stack.pop().is_some_and(|b| b.own_guard);
                last_break = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Flags `win_put` calls with no later `win_fence` inside the same
/// enclosing `fn` block (the epoch that makes the deposit visible).
fn unfenced_puts(file: &SourceFile, live: &str, findings: &mut Vec<Finding>) {
    let bytes = live.as_bytes();
    // Matching close position for every open brace.
    let mut close_of: std::collections::BTreeMap<usize, usize> = Default::default();
    let mut opens = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'{' => opens.push(i),
            b'}' => {
                if let Some(o) = opens.pop() {
                    close_of.insert(o, i);
                }
            }
            _ => {}
        }
    }
    // Walk again tracking which open braces start `fn` bodies.
    let mut stack: Vec<(usize, bool)> = Vec::new();
    let mut last_break = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        if live[i..].starts_with(".win_put(") {
            let end = stack
                .iter()
                .rev()
                .find(|&&(_, is_fn)| is_fn)
                .and_then(|&(o, _)| close_of.get(&o).copied())
                .unwrap_or(live.len());
            if !live[i..end].contains(".win_fence(") {
                findings.push(Finding::at(
                    Pass::Protocol,
                    file.rel.clone(),
                    file.line_of(i),
                    "unfenced put: `win_put` has no later `win_fence` in the enclosing \
                     function — one-sided deposits are only visible after the closing \
                     fence epoch"
                        .to_string(),
                ));
            }
        }
        match bytes[i] {
            b';' => last_break = i + 1,
            b'{' => {
                let header = &live[last_break..i];
                stack.push((i, has_word(header, "fn")));
                last_break = i + 1;
            }
            b'}' => {
                stack.pop();
                last_break = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_swmpi::{ByteSpec, SkelOp};

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel: "crates/kmc/src/fake.rs".into(),
            raw: src.to_string(),
            scrubbed: workspace::scrub(src),
        }
    }

    #[test]
    fn declared_plans_prove_clean() {
        let findings = prove_plans(&collect_plans());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn orphan_send_plan_is_reported() {
        let plan = CommPlan::new(
            "bad.phase",
            "nowhere.rs",
            vec![SkelOp::Send {
                to: [1, 0, 0],
                bytes: ByteSpec::Exact(8),
            }],
            "",
        );
        let findings = prove_plans(&[plan]);
        assert!(!findings.is_empty());
        assert!(findings[0].message.contains("orphan send"), "{findings:?}");
    }

    #[test]
    fn rank_guarded_collective_is_flagged() {
        let src =
            "fn f(comm: &Comm) {\n    if comm.rank() == 0 {\n        comm.barrier();\n    }\n}\n";
        let findings = lint_file(&file(src));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("rank-guarded collective"));
    }

    #[test]
    fn uniform_collective_is_clean() {
        let src = "fn f(comm: &Comm) {\n    comm.barrier();\n    if comm.rank() == 0 {\n        log_something();\n    }\n}\n";
        assert!(lint_file(&file(src)).is_empty());
    }

    #[test]
    fn else_branch_inherits_the_guard() {
        let src = "fn f(c: &Comm) {\n    if c.rank() == 0 {\n        a();\n    } else {\n        c.allreduce(&mut x);\n    }\n}\n";
        let findings = lint_file(&file(src));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn marker_suppresses_the_finding() {
        let src = "fn f(c: &Comm) {\n    // mmds: collective_uniform_ok — every rank computes the same flag\n    if c.rank() == flag {\n        c.barrier();\n    }\n}\n";
        assert!(lint_file(&file(src)).is_empty());
    }

    #[test]
    fn unfenced_put_is_flagged_fenced_is_clean() {
        let bad = "fn f(c: &Comm) {\n    c.win_put(1, 0, &data);\n}\n";
        let findings = lint_file(&file(bad));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("unfenced put"));

        let ok = "fn f(c: &Comm) {\n    c.win_put(1, 0, &data);\n    c.win_fence();\n}\n";
        assert!(lint_file(&file(ok)).is_empty());

        let split = "fn f(c: &Comm) {\n    c.win_put(1, 0, &data);\n}\nfn g(c: &Comm) {\n    c.win_fence();\n}\n";
        assert_eq!(
            lint_file(&file(split)).len(),
            1,
            "a fence in another fn does not close the epoch"
        );
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t(c: &Comm) { if c.rank() == 0 { c.barrier(); } }\n}\n";
        assert!(lint_file(&file(src)).is_empty());
    }
}
