//! Unsafe audit.
//!
//! The whole workspace is a *simulation* of the Sunway machine — no
//! FFI, no athread runtime, no MMIO — so there is no reason for
//! `unsafe` anywhere, and every crate root carries
//! `#![forbid(unsafe_code)]` to keep it that way. This pass verifies
//! both halves so the guarantee survives refactors:
//!
//! 1. every crate root (`crates/*/src/lib.rs` and the facade
//!    `src/lib.rs`) still declares `#![forbid(unsafe_code)]`;
//! 2. no `unsafe` keyword appears in any source under `crates/`,
//!    `src/` or `shims/` (the forbid attribute alone would not cover
//!    proc-macro expansion or a crate that silently dropped the
//!    attribute — the token scan is the belt to the attribute's
//!    braces).

use std::path::Path;

use crate::findings::{Finding, Pass};
use crate::workspace::{self, rel};

/// The attribute every crate root must carry.
const FORBID: &str = "#![forbid(unsafe_code)]";

/// Runs the unsafe audit against the workspace at `root`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();

    // 1. Every crate root keeps the forbid attribute.
    let mut roots = vec![root.join("src/lib.rs")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let lib = dir.join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    for lib in roots {
        let display = rel(root, &lib);
        match std::fs::read_to_string(&lib) {
            Ok(raw) if raw.contains(FORBID) => {}
            Ok(_) => findings.push(Finding::at(
                Pass::UnsafeAudit,
                display,
                0,
                format!("crate root lacks `{FORBID}`"),
            )),
            Err(_) => findings.push(Finding::at(
                Pass::UnsafeAudit,
                display,
                0,
                "crate root unreadable",
            )),
        }
    }

    // 2. No `unsafe` keyword anywhere (comments/strings excluded).
    for file in workspace::load_sources(root, &["crates", "src", "shims"]) {
        let bytes = file.scrubbed.as_bytes();
        let mut from = 0;
        while let Some(pos) = file.scrubbed[from..].find("unsafe") {
            let at = from + pos;
            from = at + "unsafe".len();
            let end = at + "unsafe".len();
            let bounded =
                (at == 0 || !ident(bytes[at - 1])) && (end >= bytes.len() || !ident(bytes[end]));
            if bounded {
                findings.push(Finding::at(
                    Pass::UnsafeAudit,
                    file.rel.clone(),
                    file.line_of(at),
                    "`unsafe` keyword in a forbid(unsafe_code) workspace",
                ));
            }
        }
    }

    findings
}

fn ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_is_unsafe_free() {
        let findings = run(&crate::built_workspace_root());
        assert!(
            findings.is_empty(),
            "{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn missing_forbid_and_unsafe_token_are_flagged() {
        let dir = std::env::temp_dir().join("mmds_audit_unsafe_test");
        let src = dir.join("crates/fake/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::write(
            dir.join("src/lib.rs"),
            "#![forbid(unsafe_code)]\npub fn ok() {}\n",
        )
        .unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        )
        .unwrap();
        let findings = run(&dir);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("lacks")));
        assert!(findings.iter().any(|f| f.message.contains("keyword")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
