//! # mmds-audit — workspace static-analysis passes
//!
//! The paper's two hardest correctness constraints are invisible at
//! runtime until they break: every CPE kernel's tables, block buffers
//! and ghost-reuse margin must fit the 64 KB local store (§2.1.2 —
//! the whole reason compacted tables exist), and the parallel MD sweeps
//! promise bitwise determinism at any thread count. This crate proves
//! both statically on every CI run (`mmds-audit --all`), plus two
//! guardrails that keep the perf model and the safety posture honest:
//!
//! 1. [`ldm`] — **LDM budget prover**: walks every registered CPE
//!    kernel plan ([`mmds_md::offload::OffloadConfig::ldm_plans`], the
//!    Fe–Cu alloy placement, the register-mesh distributed slice) and
//!    checks each worst-case simultaneous-live footprint — computed
//!    symbolically from the declared plan constants — against
//!    [`mmds_sunway::SwModel::sw26010`]`.ldm_bytes`, emitting a
//!    per-kernel budget table. Also flags hard-coded `65536`/`64 *
//!    1024` literals outside the single source of truth
//!    (`sunway/src/arch.rs`).
//! 2. [`determinism`] — **determinism linter**: a lexical source scan
//!    of `md`, `kmc`, `coupled` for nondeterminism hazards in
//!    physics-facing code: iteration over `HashMap`/`HashSet`,
//!    wall-clock / thread-identity / address-derived values, and
//!    unordered parallel float reductions. Telemetry-only paths opt
//!    out with `#[mmds_attrs::nondeterministic_ok]` (or the comment
//!    form `// mmds: nondeterministic_ok`).
//! 3. [`flops`] — **flop-ledger cross-checker**: verifies the
//!    `LOCATE_FLOPS` / `SEG_EVAL_FLOPS` / `RECON_EXTRA_FLOPS`
//!    constants charged through `CpeCtx::charge_table_access` against
//!    machine-readable `// flops:` markers on the actual eval kernels
//!    in `eam`, and rejects call sites that charge raw numeric
//!    literals instead of the named constants.
//! 4. [`unsafe_audit`] — **unsafe audit**: every workspace crate must
//!    keep `#![forbid(unsafe_code)]` in its root, and no `unsafe`
//!    token may appear anywhere in `crates/`, `src/`, or `shims/`
//!    (real unsafe, if ever needed, is confined to shims with
//!    `#[deny(unsafe_op_in_unsafe_fn)]` and an explicit allowlist
//!    entry here).
//! 5. [`counters`] — **counter-manifest cross-checker**: every
//!    telemetry counter/series name charged from live code in `md`,
//!    `kmc`, `coupled` must have a row in the checked-in registry
//!    manifest (`TELEMETRY_MANIFEST.md`), and every manifest row must
//!    still be charged somewhere (no typo'd names silently dropping
//!    observatory data, no stale documentation).
//! 6. [`protocol`] — **communication-protocol verifier**: the exchange
//!    code declares its per-phase communication skeletons as
//!    `mmds_swmpi::CommPlan`s (symbolic op sequences over rank-offset
//!    expressions); this pass proves match closure, deadlock freedom
//!    and fence enclosure for every declared plan, executes each on
//!    the lock-step oracle at P = 8 and 27, and lexically rejects
//!    rank-guarded collectives and unfenced `win_put`s in `md`, `kmc`,
//!    `coupled` (opt-out: `// mmds: collective_uniform_ok`). The
//!    dynamic half — reconciling the declared skeletons against a real
//!    traced 8-rank run — lives in `mmds-bench::reconcile`.
//!
//! The seventh check is dynamic but exhaustive: [`interleave`] is a
//! loom-style scheduler that enumerates *every* interleaving of a set
//! of modelled threads; `tests/model_checks.rs` (behind the
//! `model-checks` feature) uses it to check the swmpi window
//! fence/put protocol, the telemetry span-registry `(rank, path)`
//! keying, and the JSONL sink sequence counter under all schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod determinism;
pub mod findings;
pub mod flops;
pub mod interleave;
pub mod ldm;
pub mod protocol;
pub mod unsafe_audit;
pub mod workspace;

pub use findings::Finding;

/// Runs every pass against the workspace at `root`, returning the
/// rendered budget table and all findings (empty = audit passed).
pub fn run_all(root: &std::path::Path) -> (String, Vec<Finding>) {
    let mut findings = Vec::new();
    let (mut table, f) = ldm::run(root);
    findings.extend(f);
    findings.extend(determinism::run(root));
    findings.extend(flops::run(root));
    findings.extend(unsafe_audit::run(root));
    findings.extend(counters::run(root));
    let (skeletons, f) = protocol::run(root);
    findings.extend(f);
    table.push('\n');
    table.push_str(&skeletons);
    (table, findings)
}

/// The workspace root this crate was built in — the default audit
/// target for tests and for `mmds-audit` run from inside the tree.
pub fn built_workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/audit sits two levels under the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_passes_its_own_audit() {
        let root = built_workspace_root();
        let (table, findings) = run_all(&root);
        assert!(
            findings.is_empty(),
            "audit found {} violation(s):\n{}",
            findings.len(),
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(table.contains("md.offload"), "budget table lists kernels");
    }
}
