//! Telemetry counter-manifest cross-checker.
//!
//! The observability layer is only trustworthy if every counter and
//! series name the physics crates charge is *known*: dashboards, the
//! `mmds-inspect timeline` views and the bench artefacts all key on
//! these strings, so a typo'd or drive-by name silently drops data.
//! This pass keeps the names honest against the checked-in registry
//! manifest (`TELEMETRY_MANIFEST.md` at the workspace root):
//!
//! 1. every name charged from live (non-test) code in `crates/md`,
//!    `crates/kmc`, `crates/coupled`, `crates/telemetry`,
//!    `crates/bench` — via
//!    `mmds_telemetry::add_counter(…)`, `emit_series(…)`,
//!    `add_named(…)`, `emit_heartbeat(…)` or `emit_phase_heartbeat(…)`,
//!    or spelled in a `const …_SERIES` / `const …_COUNTERS` name array
//!    — must appear in the manifest;
//! 2. every manifest entry must still be charged somewhere (no stale
//!    rows that make readers look for data that never arrives).
//!
//! Like the other lexical passes, the scan runs over scrubbed text, so
//! names mentioned in comments or test modules don't count as charges;
//! the literal itself is recovered from the raw line (scrubbing blanks
//! string contents but preserves per-line character positions).

use std::collections::BTreeSet;
use std::path::Path;

use crate::findings::{Finding, Pass};
use crate::workspace::{self, SourceFile};

/// The checked-in registry manifest, relative to the workspace root.
pub const MANIFEST: &str = "TELEMETRY_MANIFEST.md";

/// The crates whose charges the manifest must cover. `crates/bench`
/// joined when the run archive started charging `archive.*` counters.
const CHARGED_DIRS: [&str; 5] = [
    "crates/md",
    "crates/kmc",
    "crates/coupled",
    "crates/telemetry",
    "crates/bench",
];

/// Call tokens that charge a name as their first argument.
const CALL_TOKENS: [&str; 5] = [
    "add_counter(",
    "emit_series(",
    "add_named(",
    "emit_heartbeat(",
    "emit_phase_heartbeat(",
];

/// One charged telemetry name found in live code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Charge {
    /// The dotted counter/series name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the name literal.
    pub line: usize,
}

/// Extracts the backticked dotted names from manifest text.
pub fn parse_manifest(text: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for piece in text.split('`').skip(1).step_by(2) {
        if piece.contains('.')
            && !piece.is_empty()
            && !piece.ends_with(".rs") // file paths in prose, not names
            && piece
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
        {
            names.insert(piece.to_string());
        }
    }
    names
}

/// Scans one file's live (non-test) code for charged names.
///
/// Works line-by-line on scrubbed text (so comments and test modules
/// never match) and recovers each literal from the raw line at the
/// same character position — scrubbing preserves per-line character
/// counts, so the indices line up even in files with non-ASCII
/// comments.
pub fn charged_names(file: &SourceFile) -> Vec<Charge> {
    let live = workspace::strip_test_blocks(&file.scrubbed);
    let live_lines: Vec<&str> = live.lines().collect();
    let raw_lines: Vec<&str> = file.raw.lines().collect();
    let mut out = Vec::new();

    // Call sites: the name is the first string literal inside the
    // argument list (possibly wrapped onto a following line); calls
    // passing a variable instead (e.g. a loop over a name array) have
    // no literal before the closing paren and are skipped here — the
    // array scan below picks their names up.
    for (ln, line) in live_lines.iter().enumerate() {
        for token in CALL_TOKENS {
            let mut from = 0;
            while let Some(p) = line[from..].find(token) {
                let at = from + p;
                from = at + token.len();
                if line[..at].trim_end().ends_with("fn") {
                    continue; // the definition, not a charge
                }
                if let Some(c) = literal_in_call(&live_lines, &raw_lines, ln, at + token.len()) {
                    out.push(Charge {
                        name: c.0,
                        file: file.rel.clone(),
                        line: c.1,
                    });
                }
            }
        }
    }

    // Name arrays: `const FOO_SERIES: … = [ "a.b", … ];` (and
    // `…_COUNTERS`) declare names charged indirectly through loops.
    for (ln, line) in live_lines.iter().enumerate() {
        let is_decl =
            line.trim_start().starts_with("pub const") || line.trim_start().starts_with("const");
        // `&str` keeps numeric consts like `MAX_SERIES_ROWS: usize`
        // from dragging unrelated string literals into the scan.
        if is_decl
            && (line.contains("_SERIES") || line.contains("_COUNTERS"))
            && line.contains("&str")
        {
            out.extend(array_literals(&live_lines, &raw_lines, ln).into_iter().map(
                |(name, line)| Charge {
                    name,
                    file: file.rel.clone(),
                    line,
                },
            ));
        }
    }

    out.retain(|c| c.name.contains('.'));
    out
}

/// From the character just after a call token's `(`, finds the first
/// string literal before the call's closing paren. Returns the literal
/// (read from the raw lines) and its 1-based line.
fn literal_in_call(
    live: &[&str],
    raw: &[&str],
    start_line: usize,
    start_col: usize,
) -> Option<(String, usize)> {
    let mut depth = 1usize;
    for (off, line) in live[start_line..].iter().enumerate() {
        let col0 = if off == 0 { start_col } else { 0 };
        for (col, ch) in line.chars().enumerate().skip(col0) {
            match ch {
                '"' => {
                    let ln = start_line + off;
                    return Some((read_literal(raw[ln], col), ln + 1));
                }
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return None; // no literal argument (variable)
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Collects every string literal between the `=` of an array
/// declaration at `start_line` and the bracket that closes it.
fn array_literals(live: &[&str], raw: &[&str], start_line: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut seen_open = false;
    let eq = live[start_line].find('=').map(|p| p + 1).unwrap_or(0);
    for (off, line) in live[start_line..].iter().enumerate() {
        let col0 = if off == 0 { eq } else { 0 };
        let mut in_str = false;
        for (col, ch) in line.chars().enumerate().skip(col0) {
            match ch {
                '"' => {
                    if !in_str {
                        let ln = start_line + off;
                        out.push((read_literal(raw[ln], col), ln + 1));
                    }
                    in_str = !in_str;
                }
                '[' if !in_str => {
                    depth += 1;
                    seen_open = true;
                }
                ']' if !in_str => {
                    depth = depth.saturating_sub(1);
                    if seen_open && depth == 0 {
                        return out;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Reads the string literal opening at character position `col` of a
/// raw line (the position found in the scrubbed twin).
fn read_literal(raw_line: &str, col: usize) -> String {
    raw_line
        .chars()
        .skip(col + 1)
        .take_while(|&c| c != '"')
        .collect()
}

/// Runs the manifest cross-checker against the workspace at `root`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let manifest_path = root.join(MANIFEST);
    let Ok(manifest_text) = std::fs::read_to_string(&manifest_path) else {
        findings.push(Finding::at(
            Pass::CounterManifest,
            MANIFEST,
            0,
            "registry manifest missing — every charged telemetry name must be checked in",
        ));
        return findings;
    };
    let manifest = parse_manifest(&manifest_text);

    let mut charged: Vec<Charge> = Vec::new();
    for dir in CHARGED_DIRS {
        for file in workspace::load_sources(root, &[dir]) {
            charged.extend(charged_names(&file));
        }
    }

    for c in &charged {
        if !manifest.contains(&c.name) {
            findings.push(Finding::at(
                Pass::CounterManifest,
                c.file.clone(),
                c.line,
                format!(
                    "telemetry name `{}` is not in {MANIFEST} — add a row",
                    c.name
                ),
            ));
        }
    }

    let charged_set: BTreeSet<&str> = charged.iter().map(|c| c.name.as_str()).collect();
    for name in &manifest {
        if !charged_set.contains(name.as_str()) {
            findings.push(Finding::at(
                Pass::CounterManifest,
                MANIFEST,
                0,
                format!(
                    "manifest entry `{name}` is charged nowhere in \
                     md/kmc/coupled/telemetry/bench — stale row"
                ),
            ));
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel: "crates/fake/src/x.rs".into(),
            raw: src.into(),
            scrubbed: workspace::scrub(src),
        }
    }

    #[test]
    fn manifest_names_parse() {
        let text = "| `kmc.ghost_bytes` | counter |\nprose with `NotAName` and `md.health.x`\n";
        let names = parse_manifest(text);
        assert!(names.contains("kmc.ghost_bytes"));
        assert!(names.contains("md.health.x"));
        assert!(!names.contains("NotAName"));
    }

    #[test]
    fn call_sites_yield_names_even_wrapped() {
        let src = "fn f() {\n    mmds_telemetry::add_counter(\"a.b\", 1.0);\n    mmds_telemetry::emit_series(\n        \"c.d.e\",\n        t,\n        v,\n    );\n}\n";
        let names: Vec<String> = charged_names(&file(src))
            .into_iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(names, vec!["a.b".to_string(), "c.d.e".to_string()]);
    }

    #[test]
    fn variable_calls_and_comments_are_skipped() {
        let src = "fn f(name: &str) {\n    // add_counter(\"ghost.name\", 1.0) in a comment\n    mmds_telemetry::emit_series(name, t, v);\n}\n";
        assert!(charged_names(&file(src)).is_empty());
    }

    #[test]
    fn test_modules_do_not_charge() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { mmds_telemetry::add_counter(\"only.in.test\", 1.0); }\n}\n";
        assert!(charged_names(&file(src)).is_empty());
    }

    #[test]
    fn series_arrays_are_collected() {
        let src = "pub const HIST_SERIES: [&str; 2] = [\n    \"census.h.b1\",\n    \"census.h.b2\",\n];\nconst OTHER: [&str; 1] = [\"not.collected\"];\nconst MAX_SERIES_ROWS: usize = 12;\nfn g() { let x = [\"fake.name\"]; }\n";
        let names: Vec<String> = charged_names(&file(src))
            .into_iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(
            names,
            vec!["census.h.b1".to_string(), "census.h.b2".to_string()]
        );
    }

    #[test]
    fn workspace_charges_match_manifest() {
        let findings = run(&crate::built_workspace_root());
        assert!(
            findings.is_empty(),
            "{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
