//! Flop-ledger cross-checker.
//!
//! The performance model (and the paper's Table 2 throughput claims)
//! charge every table access as `LOCATE_FLOPS + SEG_EVAL_FLOPS` (plus
//! `RECON_EXTRA_FLOPS` for on-the-fly knot-derivative reconstruction
//! on compacted tables). Those constants are only honest if they match
//! what the eval kernels actually compute — so the kernels carry
//! machine-readable markers:
//!
//! ```text
//! // flops: SEG_EVAL_FLOPS = 8 (Horner value 3·fma + …)
//! ```
//!
//! This pass (1) requires the markers to exist on the locate/eval
//! kernels in `eam/src/spline.rs` and `eam/src/compact.rs`, (2) checks
//! each marker's value against the live constant the workspace
//! actually links ([`mmds_eam::LOCATE_FLOPS`] & co — a drive-by edit
//! to either side breaks the build of this audit), and (3) rejects
//! `charge_table_access` call sites that charge raw numeric literals
//! instead of the named constants (the segment-count argument may be a
//! literal; the flop arguments may not).

use std::path::Path;

use crate::findings::{Finding, Pass};
use crate::workspace::{self, SourceFile};

/// The ledger: marker name → the constant the workspace links.
const LEDGER: [(&str, u64); 3] = [
    ("LOCATE_FLOPS", mmds_eam::LOCATE_FLOPS),
    ("SEG_EVAL_FLOPS", mmds_eam::SEG_EVAL_FLOPS),
    ("RECON_EXTRA_FLOPS", mmds_eam::compact::RECON_EXTRA_FLOPS),
];

/// Which markers each eval-kernel file must declare.
const REQUIRED: [(&str, &[&str]); 2] = [
    (
        "crates/eam/src/spline.rs",
        &["LOCATE_FLOPS", "SEG_EVAL_FLOPS"],
    ),
    (
        "crates/eam/src/compact.rs",
        &["LOCATE_FLOPS", "SEG_EVAL_FLOPS", "RECON_EXTRA_FLOPS"],
    ),
];

/// A parsed `// flops: NAME = VALUE` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// Constant name the marker vouches for.
    pub name: String,
    /// Claimed flop count.
    pub value: u64,
    /// 1-based line of the marker.
    pub line: usize,
}

/// Extracts every `// flops:` marker from raw source text.
pub fn parse_markers(raw: &str) -> Vec<Marker> {
    let mut out = Vec::new();
    for (idx, line) in raw.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix("// flops:") else {
            continue;
        };
        let Some((name, value)) = rest.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let digits: String = value
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(value) = digits.parse::<u64>() {
            out.push(Marker {
                name: name.to_string(),
                value,
                line: idx + 1,
            });
        }
    }
    out
}

/// Runs the cross-checker against the workspace at `root`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();

    for (rel, required) in REQUIRED {
        let path = root.join(rel);
        let Ok(raw) = std::fs::read_to_string(&path) else {
            findings.push(Finding::at(
                Pass::FlopLedger,
                rel,
                0,
                "eval-kernel file missing — cannot verify flop markers",
            ));
            continue;
        };
        let markers = parse_markers(&raw);
        for name in required {
            match markers.iter().find(|m| m.name == *name) {
                None => findings.push(Finding::at(
                    Pass::FlopLedger,
                    rel,
                    0,
                    format!("missing `// flops: {name} = …` marker on the eval kernel"),
                )),
                Some(m) => {
                    let ledger = LEDGER.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
                    if ledger != Some(m.value) {
                        findings.push(Finding::at(
                            Pass::FlopLedger,
                            rel,
                            m.line,
                            format!(
                                "flop marker {name} = {} disagrees with the linked \
                                 constant ({}) — kernel and ledger must change together",
                                m.value,
                                ledger.map_or("<unknown>".into(), |v| v.to_string()),
                            ),
                        ));
                    }
                }
            }
        }
        for m in &markers {
            if !LEDGER.iter().any(|(n, _)| *n == m.name) {
                findings.push(Finding::at(
                    Pass::FlopLedger,
                    rel,
                    m.line,
                    format!("unknown flop marker `{}` — not in the audit ledger", m.name),
                ));
            }
        }
    }

    for file in workspace::load_sources(root, &["crates", "src"]) {
        findings.extend(check_charge_sites(&file));
    }

    findings
}

/// Rejects `charge_table_access` / `charge_table_batch` call sites
/// whose flop arguments are raw numeric literals instead of the ledger
/// constants. The batch form takes one extra trailing argument (the
/// lane count, which may be any expression — it is a width, not a flop
/// constant); its locate/seg_eval arguments obey the same rule.
pub fn check_charge_sites(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let live = workspace::strip_test_blocks(&file.scrubbed);
    let sites = [
        ("charge_table_access(", 3, "(locate, seg_eval, segments)"),
        (
            "charge_table_batch(",
            4,
            "(locate, seg_eval, segments, lanes)",
        ),
    ];
    for (needle, arity, shape) in sites {
        let name = needle.trim_end_matches('(');
        let mut from = 0;
        while let Some(pos) = live[from..].find(needle) {
            let at = from + pos;
            from = at + needle.len();
            // Skip the definition itself (`fn charge_table_…(…)`).
            if live[..at].trim_end().ends_with("fn") {
                continue;
            }
            let open = at + needle.len() - 1;
            let Some(args) = top_level_args(&live, open) else {
                continue;
            };
            let line = file.line_of(at);
            if args.len() != arity {
                findings.push(Finding::at(
                    Pass::FlopLedger,
                    file.rel.clone(),
                    line,
                    format!("{name} takes {shape} — found {} args", args.len()),
                ));
                continue;
            }
            let checks = [
                (&args[0], "LOCATE_FLOPS", "locate"),
                (&args[1], "SEG_EVAL_FLOPS", "seg_eval"),
            ];
            for (arg, constant, which) in checks {
                if !arg.contains(constant) || arg.bytes().any(|b| b.is_ascii_digit()) {
                    findings.push(Finding::at(
                        Pass::FlopLedger,
                        file.rel.clone(),
                        line,
                        format!(
                            "{name} {which} argument must be the named \
                             constant {constant} (± ledger constants), not `{}`",
                            arg.trim()
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// Splits the parenthesised argument list opening at `open` (byte
/// offset of `(`) into top-level comma-separated pieces.
fn top_level_args(text: &str, open: usize) -> Option<Vec<String>> {
    let bytes = text.as_bytes();
    debug_assert_eq!(bytes[open], b'(');
    let mut depth = 0usize;
    let mut start = open + 1;
    let mut args = Vec::new();
    for i in open..bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    args.push(text[start..i].to_string());
                    // A trailing comma yields one whitespace-only arg.
                    if args.last().is_some_and(|a| a.trim().is_empty()) && args.len() > 1 {
                        args.pop();
                    }
                    return Some(args);
                }
            }
            b',' if depth == 1 => {
                args.push(text[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_parse() {
        let raw = "// flops: LOCATE_FLOPS = 4 (sub, div, floor, clamp)\nfn locate() {}\n    // flops: SEG_EVAL_FLOPS = 8 (Horner)\n";
        let m = parse_markers(raw);
        assert_eq!(m.len(), 2);
        assert_eq!(
            m[0],
            Marker {
                name: "LOCATE_FLOPS".into(),
                value: 4,
                line: 1
            }
        );
        assert_eq!(m[1].value, 8);
    }

    #[test]
    fn workspace_markers_match_ledger() {
        let findings = run(&crate::built_workspace_root());
        assert!(
            findings.is_empty(),
            "{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn literal_charges_are_rejected() {
        let src =
            "fn k(ctx: &mut CpeCtx) {\n    ctx.charge_table_access(4, SEG_EVAL_FLOPS, 2);\n}\n";
        let file = SourceFile {
            rel: "crates/fake/src/k.rs".into(),
            raw: src.into(),
            scrubbed: workspace::scrub(src),
        };
        let findings = check_charge_sites(&file);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("LOCATE_FLOPS"));
    }

    #[test]
    fn named_constant_charges_pass() {
        let src = "fn k(ctx: &mut CpeCtx) {\n    ctx.charge_table_access(LOCATE_FLOPS, SEG_EVAL_FLOPS + RECON_EXTRA_FLOPS, 2);\n}\n";
        let file = SourceFile {
            rel: "crates/fake/src/k.rs".into(),
            raw: src.into(),
            scrubbed: workspace::scrub(src),
        };
        assert!(check_charge_sites(&file).is_empty());
    }

    #[test]
    fn batch_charges_obey_the_same_constant_rule() {
        // The lane-count argument may be any expression (it is a width,
        // not a flop constant); the flop arguments may not be literals.
        let ok = "fn k(ctx: &mut CpeCtx) {\n    ctx.charge_table_batch(LOCATE_FLOPS, SEG_EVAL_FLOPS + RECON_EXTRA_FLOPS, 1, BATCH_LANES as u64);\n}\n";
        let file = SourceFile {
            rel: "crates/fake/src/k.rs".into(),
            raw: ok.into(),
            scrubbed: workspace::scrub(ok),
        };
        assert!(check_charge_sites(&file).is_empty());

        let bad =
            "fn k(ctx: &mut CpeCtx) {\n    ctx.charge_table_batch(LOCATE_FLOPS, 36, 1, 8);\n}\n";
        let file = SourceFile {
            rel: "crates/fake/src/k.rs".into(),
            raw: bad.into(),
            scrubbed: workspace::scrub(bad),
        };
        let findings = check_charge_sites(&file);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("SEG_EVAL_FLOPS"));
        assert!(findings[0].message.contains("charge_table_batch"));

        let wrong_arity = "fn k(ctx: &mut CpeCtx) {\n    ctx.charge_table_batch(LOCATE_FLOPS, SEG_EVAL_FLOPS, 1);\n}\n";
        let file = SourceFile {
            rel: "crates/fake/src/k.rs".into(),
            raw: wrong_arity.into(),
            scrubbed: workspace::scrub(wrong_arity),
        };
        let findings = check_charge_sites(&file);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("lanes"));
    }
}
