//! Mini exhaustive-interleaving model checker (loom-style, offline).
//!
//! The workspace's concurrency surfaces are small and mutex-protected
//! — the swmpi one-sided window hub, the telemetry span registry, the
//! JSONL sink sequence counter — so their correctness arguments reduce
//! to: *for every interleaving of the participating ranks' operations,
//! the protocol invariants hold*. With operations at method
//! granularity (each method takes the one internal lock, so methods
//! are the atomic steps), the schedule space is tiny — interleaving
//! two ranks' 4-step scripts is C(8,4) = 70 schedules — and can be
//! enumerated *exhaustively* instead of sampled with threads and
//! sleeps.
//!
//! [`schedules`] enumerates every interleaving of `counts[i]`-step
//! thread scripts; [`explore`] drives a fresh state through each one,
//! calling a per-step invariant and a final check. The
//! `tests/model_checks.rs` suite (behind the `model-checks` feature)
//! uses this to check the fence/put protocol and the telemetry
//! registries under all schedules.

/// Every interleaving of `counts.len()` threads where thread `i`
/// executes `counts[i]` ordered steps. Each schedule lists thread ids
/// in execution order; schedules are generated in lexicographic order,
/// so output is deterministic.
pub fn schedules(counts: &[usize]) -> Vec<Vec<usize>> {
    let total: usize = counts.iter().sum();
    let mut remaining = counts.to_vec();
    let mut current = Vec::with_capacity(total);
    let mut out = Vec::new();
    dfs(&mut remaining, &mut current, total, &mut out);
    out
}

fn dfs(remaining: &mut [usize], current: &mut Vec<usize>, total: usize, out: &mut Vec<Vec<usize>>) {
    if current.len() == total {
        out.push(current.clone());
        return;
    }
    for tid in 0..remaining.len() {
        if remaining[tid] > 0 {
            remaining[tid] -= 1;
            current.push(tid);
            dfs(remaining, current, total, out);
            current.pop();
            remaining[tid] += 1;
        }
    }
}

/// Number of distinct interleavings of `counts` (multinomial
/// coefficient) — what [`schedules`] will return, computable without
/// materialising them.
pub fn schedule_count(counts: &[usize]) -> u128 {
    let mut n: u128 = 0;
    let mut result: u128 = 1;
    for &c in counts {
        for k in 1..=c as u128 {
            n += 1;
            result = result * n / k;
        }
    }
    result
}

/// Drives a fresh state through **every** interleaving of the thread
/// scripts:
///
/// * `counts[i]` — how many steps thread `i` executes;
/// * `init()` — builds a fresh state per schedule;
/// * `step(state, tid, k)` — executes thread `tid`'s `k`-th step
///   (0-based) and asserts any per-step invariant;
/// * `check(state, schedule)` — asserts the post-conditions after the
///   full schedule ran.
///
/// Returns the number of schedules explored (callers assert it against
/// [`schedule_count`] so a broken enumerator cannot silently pass).
pub fn explore<S>(
    counts: &[usize],
    mut init: impl FnMut() -> S,
    mut step: impl FnMut(&mut S, usize, usize),
    mut check: impl FnMut(&mut S, &[usize]),
) -> usize {
    let all = schedules(counts);
    for schedule in &all {
        let mut state = init();
        let mut done = vec![0usize; counts.len()];
        for &tid in schedule {
            step(&mut state, tid, done[tid]);
            done[tid] += 1;
        }
        check(&mut state, schedule);
    }
    all.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_multinomial() {
        assert_eq!(schedules(&[2, 2]).len(), 6);
        assert_eq!(schedules(&[4, 4]).len(), 70);
        assert_eq!(schedules(&[1, 1, 1]).len(), 6);
        assert_eq!(schedule_count(&[2, 2]), 6);
        assert_eq!(schedule_count(&[4, 4]), 70);
        assert_eq!(schedule_count(&[3, 3, 3]), 1680);
    }

    #[test]
    fn schedules_preserve_program_order() {
        for s in schedules(&[3, 2]) {
            assert_eq!(s.iter().filter(|&&t| t == 0).count(), 3);
            assert_eq!(s.iter().filter(|&&t| t == 1).count(), 2);
        }
    }

    #[test]
    fn explore_visits_every_schedule_with_fresh_state() {
        let mut totals = Vec::new();
        let n = explore(
            &[2, 2],
            Vec::new,
            |state: &mut Vec<usize>, tid, k| state.push(tid * 10 + k),
            |state, schedule| {
                assert_eq!(state.len(), 4, "fresh state per schedule");
                assert_eq!(schedule.len(), 4);
                totals.push(state.clone());
            },
        );
        assert_eq!(n, 6);
        totals.sort();
        totals.dedup();
        assert_eq!(totals.len(), 6, "all six interleavings distinct");
    }
}
