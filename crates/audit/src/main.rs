//! `mmds-audit` — run the workspace static-analysis passes from the
//! command line (CI gates on the exit status).
//!
//! ```text
//! mmds-audit [--all | --ldm --determinism --flops --unsafe-audit --counters
//!             --protocol] [--root PATH] [--json PATH] [--quiet]
//! ```
//!
//! Exit status 0 = clean, 1 = findings, 2 = usage error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mmds_audit::{
    counters, determinism, findings, findings::Finding, flops, ldm, protocol, unsafe_audit,
    workspace,
};

const USAGE: &str = "mmds-audit: workspace static-analysis passes

USAGE:
    mmds-audit [PASSES] [OPTIONS]

PASSES (default: --all):
    --all             run every pass
    --ldm             LDM budget prover + capacity-literal scan
    --determinism     determinism linter (md, kmc, coupled, eam, analysis)
    --flops           flop-ledger cross-checker
    --unsafe-audit    forbid(unsafe_code) + unsafe-token audit
    --counters        telemetry counter-manifest cross-checker
    --protocol        comm-skeleton prover + rank-uniformity lint

OPTIONS:
    --root PATH       workspace root (default: nearest [workspace] above cwd)
    --json PATH       also write the findings as JSON (stable schema) to PATH
    --quiet           findings only, no budget/skeleton tables
    --help            this text";

struct Options {
    ldm: bool,
    determinism: bool,
    flops: bool,
    unsafe_audit: bool,
    counters: bool,
    protocol: bool,
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    quiet: bool,
}

impl Options {
    fn any_pass(&self) -> bool {
        self.ldm
            || self.determinism
            || self.flops
            || self.unsafe_audit
            || self.counters
            || self.protocol
    }

    fn all_passes(&mut self) {
        self.ldm = true;
        self.determinism = true;
        self.flops = true;
        self.unsafe_audit = true;
        self.counters = true;
        self.protocol = true;
    }
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        ldm: false,
        determinism: false,
        flops: false,
        unsafe_audit: false,
        counters: false,
        protocol: false,
        root: None,
        json: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => opts.all_passes(),
            "--ldm" => opts.ldm = true,
            "--determinism" => opts.determinism = true,
            "--flops" => opts.flops = true,
            "--unsafe-audit" => opts.unsafe_audit = true,
            "--counters" => opts.counters = true,
            "--protocol" => opts.protocol = true,
            "--quiet" => opts.quiet = true,
            "--root" => {
                let path = it.next().ok_or("--root requires a PATH")?;
                opts.root = Some(PathBuf::from(path));
            }
            "--json" => {
                let path = it.next().ok_or("--json requires a PATH")?;
                opts.json = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !opts.any_pass() {
        opts.all_passes();
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: no Cargo workspace found above the current directory (use --root)");
            return ExitCode::from(2);
        }
    };

    let mut findings: Vec<Finding> = Vec::new();
    if opts.ldm {
        let (table, f) = ldm::run(&root);
        if !opts.quiet {
            println!("{table}");
        }
        findings.extend(f);
    }
    if opts.determinism {
        findings.extend(determinism::run(&root));
    }
    if opts.flops {
        findings.extend(flops::run(&root));
    }
    if opts.unsafe_audit {
        findings.extend(unsafe_audit::run(&root));
    }
    if opts.counters {
        findings.extend(counters::run(&root));
    }
    if opts.protocol {
        let (table, f) = protocol::run(&root);
        if !opts.quiet {
            println!("{table}");
        }
        findings.extend(f);
    }

    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, findings::json_report(&findings)) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !opts.quiet {
            println!("mmds-audit: findings JSON -> {}", path.display());
        }
    }

    if findings.is_empty() {
        if !opts.quiet {
            println!("mmds-audit: clean ({})", passes_run(&opts));
        }
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("mmds-audit: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn passes_run(opts: &Options) -> String {
    let mut names = Vec::new();
    if opts.ldm {
        names.push("ldm");
    }
    if opts.determinism {
        names.push("determinism");
    }
    if opts.flops {
        names.push("flops");
    }
    if opts.unsafe_audit {
        names.push("unsafe-audit");
    }
    if opts.counters {
        names.push("counter-manifest");
    }
    if opts.protocol {
        names.push("protocol");
    }
    names.join(", ")
}
