//! Determinism linter.
//!
//! The MD/KMC/coupled crates promise bitwise-identical results at any
//! rank or thread count (the paper's Table 3 conservation checks rely
//! on it, and so does every regression baseline in `crates/bench`).
//! This pass scans their **live** (non-test) sources lexically for the
//! three hazard families that historically break that promise:
//!
//! * **A — hash-container iteration.** `HashMap`/`HashSet` iteration
//!   order is randomized per process; iterating one into physics state
//!   makes runs unrepeatable. Insert/lookup are fine — only
//!   `.iter()`/`.keys()`/`.values()`/`.drain()`/`for … in` trip the
//!   lint.
//! * **B — environment-derived values.** `Instant::now` /
//!   `SystemTime::now` (wall clock), `thread::current` (thread
//!   identity), `as *const` / `as *mut` / `addr_of` (address-derived
//!   numbers) must not reach physics code; timing belongs in
//!   `mmds-telemetry`.
//! * **C — unordered parallel float reduction.** A rayon chain that
//!   ends in `.sum()` / `.reduce()` / `.fold()` accumulates floats in
//!   nondeterministic order. The sanctioned pattern is
//!   `chunked_map`-style: parallel map into ordered chunks, then a
//!   sequential, fixed-order reduction.
//!
//! Telemetry-only paths opt out with
//! `#[mmds_attrs::nondeterministic_ok]` on the item (or
//! `// mmds: nondeterministic_ok` where an attribute cannot sit); the
//! marker suppresses findings through the following brace block.

use std::path::Path;

use crate::findings::{Finding, Pass};
use crate::workspace::{self, SourceFile};

/// Directories whose live code must be deterministic: the physics
/// engines plus the crates that feed them numbers (EAM tables) or
/// digest their output into regression baselines (analysis).
const PHYSICS_DIRS: [&str; 5] = [
    "crates/md/src",
    "crates/kmc/src",
    "crates/coupled/src",
    "crates/eam/src",
    "crates/analysis/src",
];

/// Lints every live physics source under `root`.
pub fn run(root: &Path) -> Vec<Finding> {
    workspace::load_sources(root, &PHYSICS_DIRS)
        .iter()
        .flat_map(lint_file)
        .collect()
}

/// Lints one source file. Findings inside `#[cfg(test)]` items or
/// allowlisted regions are suppressed.
pub fn lint_file(file: &SourceFile) -> Vec<Finding> {
    let live = workspace::strip_test_blocks(&file.scrubbed);
    let suppressed = suppressed_ranges(file);
    let mut findings = Vec::new();

    hash_iteration(file, &live, &mut findings);
    environment_values(file, &live, &mut findings);
    parallel_reduction(file, &live, &mut findings);

    findings.retain(|f| !suppressed.iter().any(|&(a, b)| (a..=b).contains(&f.line)));
    findings.sort_by_key(|f| f.line);
    findings.dedup();
    findings
}

/// Line ranges covered by a `nondeterministic_ok` marker: from the
/// marker through the end of the following brace block (or statement).
fn suppressed_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    workspace::marker_ranges(file, "nondeterministic_ok")
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Rule A: track identifiers bound to hash containers, flag iteration.
fn hash_iteration(file: &SourceFile, live: &str, findings: &mut Vec<Finding>) {
    let bytes = live.as_bytes();
    let mut tracked: Vec<String> = Vec::new();
    for container in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(pos) = live[from..].find(container) {
            let at = from + pos;
            from = at + container.len();
            if at > 0 && is_ident(bytes[at - 1]) {
                continue;
            }
            // `name: HashMap<…>` / `name: &HashMap<…>` (binding,
            // parameter or struct field) or `name = HashMap::new()`.
            let mut i = at;
            loop {
                while i > 0 && bytes[i - 1].is_ascii_whitespace() {
                    i -= 1;
                }
                if i > 0 && (bytes[i - 1] == b'&' || bytes[i - 1] == b'\'') {
                    i -= 1;
                    continue;
                }
                if i >= 3 && bytes[i - 3..i] == *b"mut" && (i < 4 || !is_ident(bytes[i - 4])) {
                    i -= 3;
                    continue;
                }
                break;
            }
            if i == 0 {
                continue;
            }
            let sep = bytes[i - 1];
            let binder = match sep {
                b':' if i < 2 || bytes[i - 2] != b':' => true,
                b'=' if i < 2 || !matches!(bytes[i - 2], b'=' | b'<' | b'>' | b'!') => true,
                _ => false,
            };
            if !binder {
                continue;
            }
            let mut j = i - 1;
            while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                j -= 1;
            }
            let end = j;
            while j > 0 && is_ident(bytes[j - 1]) {
                j -= 1;
            }
            let name = &live[j..end];
            if !name.is_empty() && name != "mut" && !tracked.iter().any(|t| t == name) {
                tracked.push(name.to_string());
            }
        }
    }

    for name in &tracked {
        let mut from = 0;
        while let Some(pos) = live[from..].find(name.as_str()) {
            let at = from + pos;
            from = at + name.len();
            let end = at + name.len();
            let bounded = (at == 0 || !is_ident(bytes[at - 1]))
                && (end >= bytes.len() || !is_ident(bytes[end]));
            if !bounded {
                continue;
            }
            let after = &live[end..];
            let ordered_call = [".iter()", ".keys()", ".values()", ".into_iter()", ".drain("]
                .iter()
                .any(|m| after.starts_with(m));
            let preceded_by_in = {
                // `for … in name` / `in &name` / `in &mut name`: walk
                // back over `&`, `mut` and whitespace to the keyword.
                let mut k = at;
                loop {
                    while k > 0 && bytes[k - 1].is_ascii_whitespace() {
                        k -= 1;
                    }
                    if k > 0 && bytes[k - 1] == b'&' {
                        k -= 1;
                        continue;
                    }
                    if k >= 3 && bytes[k - 3..k] == *b"mut" && (k < 4 || !is_ident(bytes[k - 4])) {
                        k -= 3;
                        continue;
                    }
                    break;
                }
                k >= 2 && bytes[k - 2..k] == *b"in" && (k < 3 || !is_ident(bytes[k - 3]))
            };
            if ordered_call || preceded_by_in {
                findings.push(Finding::at(
                    Pass::Determinism,
                    file.rel.clone(),
                    file.line_of(at),
                    format!(
                        "iteration over hash container `{name}` — order is \
                         nondeterministic; use a BTree container, sort first, or mark \
                         the item #[mmds_attrs::nondeterministic_ok]"
                    ),
                ));
            }
        }
    }
}

/// Rule B: wall-clock / thread-identity / address-derived values.
fn environment_values(file: &SourceFile, live: &str, findings: &mut Vec<Finding>) {
    const NEEDLES: [(&str, &str); 6] = [
        ("Instant::now(", "wall-clock value (`Instant::now`)"),
        ("SystemTime::now(", "wall-clock value (`SystemTime::now`)"),
        (
            "thread::current(",
            "thread-identity value (`thread::current`)",
        ),
        ("as *const", "address-derived value (`as *const`)"),
        ("as *mut", "address-derived value (`as *mut`)"),
        ("::addr_of", "address-derived value (`addr_of`)"),
    ];
    for (needle, what) in NEEDLES {
        let mut from = 0;
        while let Some(pos) = live[from..].find(needle) {
            let at = from + pos;
            from = at + needle.len();
            findings.push(Finding::at(
                Pass::Determinism,
                file.rel.clone(),
                file.line_of(at),
                format!(
                    "{what} in physics code — route timing/identity through \
                     mmds-telemetry or mark the item #[mmds_attrs::nondeterministic_ok]"
                ),
            ));
        }
    }
}

/// Rule C: a parallel chain reduced with `.sum()`/`.reduce()`/`.fold()`
/// in the same statement accumulates floats in nondeterministic order.
fn parallel_reduction(file: &SourceFile, live: &str, findings: &mut Vec<Finding>) {
    const PAR: [&str; 4] = ["into_par_iter(", "par_iter(", "par_chunks", "par_bridge("];
    const RED: [&str; 3] = [".sum(", ".reduce(", ".fold("];
    let mut offset = 0;
    for stmt in live.split(';') {
        let par_at = PAR.iter().filter_map(|p| stmt.find(p)).min();
        if let Some(p) = par_at {
            if RED.iter().any(|r| stmt[p..].contains(r)) {
                findings.push(Finding::at(
                    Pass::Determinism,
                    file.rel.clone(),
                    file.line_of(offset + p),
                    "parallel float reduction — accumulation order depends on the \
                     schedule; map into ordered chunks and reduce sequentially \
                     (see md::force::chunked_map)"
                        .to_string(),
                ));
            }
        }
        offset += stmt.len() + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel: "crates/md/src/fake.rs".into(),
            raw: src.to_string(),
            scrubbed: workspace::scrub(src),
        }
    }

    #[test]
    fn hash_iteration_is_flagged() {
        let src = "fn f() {\n    let mut acc = HashMap::new();\n    acc.insert(1, 2.0);\n    for (k, v) in acc.iter() { use_it(k, v); }\n}\n";
        let findings = lint_file(&file(src));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
        assert!(findings[0].message.contains("`acc`"));
    }

    #[test]
    fn for_loop_over_hash_set_is_flagged() {
        let src = "fn f(seen: HashSet<usize>) {\n    for s in &seen { touch(s); }\n}\n";
        let findings = lint_file(&file(src));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn insert_and_contains_are_fine() {
        let src = "fn f() {\n    let mut seen: HashSet<usize> = HashSet::new();\n    seen.insert(3);\n    assert!(seen.contains(&3));\n}\n";
        assert!(lint_file(&file(src)).is_empty());
    }

    #[test]
    fn wall_clock_is_flagged_and_allowlist_suppresses() {
        let bad = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(lint_file(&file(bad)).len(), 1);
        let ok = "#[mmds_attrs::nondeterministic_ok]\nfn f() { let t = Instant::now(); }\n";
        assert!(lint_file(&file(ok)).is_empty(), "attribute allowlists");
        let ok2 = "// mmds: nondeterministic_ok\nfn f() { let t = Instant::now(); }\n";
        assert!(lint_file(&file(ok2)).is_empty(), "comment allowlists");
    }

    #[test]
    fn parallel_reduction_flagged_sequential_fine() {
        let bad = "fn f(v: &[f64]) -> f64 { v.par_iter().map(|x| x * x).sum() }\n";
        assert_eq!(lint_file(&file(bad)).len(), 1);
        let ok = "fn f(v: &[f64]) -> f64 { v.iter().map(|x| x * x).sum() }\n";
        assert!(lint_file(&file(ok)).is_empty());
        let ok2 = "fn f(v: &[f64]) -> Vec<f64> { v.par_iter().map(|x| x * x).collect() }\n";
        assert!(lint_file(&file(ok2)).is_empty(), "ordered collect is fine");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let t = Instant::now(); }\n}\n";
        assert!(lint_file(&file(src)).is_empty());
    }
}
