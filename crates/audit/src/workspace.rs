//! Workspace discovery, source enumeration, and the lexical scrubber
//! shared by the text-based passes.
//!
//! The linters here deliberately avoid a full Rust parser: the
//! hazards they look for (hash-container iteration, wall-clock calls,
//! `unsafe` tokens, hard-coded LDM literals) are all recognisable
//! lexically once comments, string literals and char literals are
//! blanked out. [`scrub`] does exactly that — it replaces the
//! *contents* of comments and literals with spaces while preserving
//! every newline, so downstream scans keep accurate line numbers and
//! can never be fooled by a hazard spelled inside a doc comment or a
//! format string.

use std::path::{Path, PathBuf};

/// A loaded workspace source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Raw file contents.
    pub raw: String,
    /// Contents with comments / string / char literals blanked
    /// (newlines preserved — line numbers match `raw`).
    pub scrubbed: String,
}

impl SourceFile {
    /// 1-based line number of byte offset `pos` in this file.
    pub fn line_of(&self, pos: usize) -> usize {
        1 + self.raw.as_bytes()[..pos.min(self.raw.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }
}

/// Walks up from `start` looking for a `Cargo.toml` that declares
/// `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`
/// build output. Results are sorted for deterministic reports.
pub fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect(dir, &mut out);
    out.sort();
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative display path with `/` separators.
pub fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Loads every `.rs` file under `root/{subdir}` for each subdir,
/// scrubbed and ready to scan.
pub fn load_sources(root: &Path, subdirs: &[&str]) -> Vec<SourceFile> {
    let mut files = Vec::new();
    for sub in subdirs {
        for path in rust_sources(&root.join(sub)) {
            let Ok(raw) = std::fs::read_to_string(&path) else {
                continue;
            };
            let scrubbed = scrub(&raw);
            files.push(SourceFile {
                rel: rel(root, &path),
                raw,
                scrubbed,
            });
        }
    }
    files
}

/// Blanks comments, string literals and char literals with spaces,
/// preserving newlines (so byte offsets map to the same lines as the
/// original). Handles nested block comments, raw strings
/// (`r"…"`/`r#"…"#`), byte strings, and distinguishes lifetimes
/// (`'a`) from char literals (`'a'`).
pub fn scrub(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < chars.len() {
        let c = chars[i];
        let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"…", r#"…"#, br"…", br#"…"#.
        if !prev_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if chars[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while chars.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if chars.get(k) == Some(&'"') {
                    // Emit the prefix verbatim, blank the body.
                    for &p in &chars[i..=k] {
                        out.push(p);
                    }
                    i = k + 1;
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut close = 0usize;
                            while close < hashes && chars.get(i + 1 + close) == Some(&'#') {
                                close += 1;
                            }
                            if close == hashes {
                                out.extend(std::iter::repeat_n(' ', hashes + 1));
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        out.push(blank(chars[i]));
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Plain or byte string literal.
        if c == '"' || (!prev_ident && c == 'b' && chars.get(i + 1) == Some(&'"')) {
            if c == 'b' {
                out.push('b');
                i += 1;
            }
            out.push('"');
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    out.push(' ');
                    out.push(blank(chars[i + 1]));
                    i += 2;
                } else if chars[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_lifetime = match next {
                Some(n) if n.is_alphabetic() || n == '_' => {
                    // 'a' is a char literal, 'a (no closing quote) a lifetime.
                    chars.get(i + 2) != Some(&'\'')
                }
                _ => false,
            };
            if !is_lifetime {
                out.push('\'');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        out.push(' ');
                        out.push(blank(chars[i + 1]));
                        i += 2;
                    } else if chars[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(chars[i]));
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

/// Line ranges covered by an allowlist `marker` (attribute or comment
/// form): from the marker through the end of the following brace block
/// (or statement). Shared by the linters' opt-out machinery.
pub fn marker_ranges(file: &SourceFile, marker: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let scrubbed = file.scrubbed.as_bytes();
    let mut from = 0;
    while let Some(pos) = file.raw[from..].find(marker) {
        let at = from + pos;
        from = at + marker.len();
        let start_line = file.line_of(at);
        // Walk the *scrubbed* text (no braces hiding in strings) to the
        // end of the next brace block, or the next `;` if none opens.
        let mut i = from.min(scrubbed.len());
        let mut end = i;
        let mut depth = 0usize;
        while i < scrubbed.len() {
            match scrubbed[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        ranges.push((start_line, file.line_of(end)));
    }
    ranges
}

/// Blanks every `#[cfg(test)]`-gated item (its attribute through the
/// matching close brace of its body) in already-scrubbed text,
/// preserving newlines. Test modules get to use `HashMap` iteration,
/// `Instant::now` and friends without tripping the linters.
pub fn strip_test_blocks(scrubbed: &str) -> String {
    let mut text: Vec<char> = scrubbed.chars().collect();
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut i = 0;
    while i + needle.len() <= text.len() {
        if text[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        // Find the opening brace of the gated item, then its match.
        let mut j = i + needle.len();
        while j < text.len() && text[j] != '{' && text[j] != ';' {
            j += 1;
        }
        let end = if j < text.len() && text[j] == '{' {
            let mut depth = 0usize;
            let mut k = j;
            loop {
                if k >= text.len() {
                    break k;
                }
                if text[k] == '{' {
                    depth += 1;
                } else if text[k] == '}' {
                    depth -= 1;
                    if depth == 0 {
                        break k + 1;
                    }
                }
                k += 1;
            }
        } else {
            j + 1
        };
        for ch in text
            .iter_mut()
            .take(end.min(scrubbed.chars().count()))
            .skip(i)
        {
            if *ch != '\n' {
                *ch = ' ';
            }
        }
        i = end;
    }
    text.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let x = \"HashMap\"; // for (k, v) in map.iter()\nlet y = 'c';";
        let s = scrub(src);
        assert!(!s.contains("HashMap"));
        assert!(!s.contains("iter"));
        assert!(!s.contains('c') || !s.contains("'c'"));
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
        assert_eq!(s.chars().count(), src.chars().count());
    }

    #[test]
    fn scrub_preserves_lifetimes_and_handles_raw_strings() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet r = r#\"unsafe \"quoted\"\"#;";
        let s = scrub(src);
        assert!(s.contains("<'a>"), "lifetime survives: {s}");
        assert!(s.contains("&'a str"));
        assert!(!s.contains("unsafe"), "raw string body blanked: {s}");
        assert!(!s.contains("quoted"));
    }

    #[test]
    fn scrub_handles_nested_block_comments_and_escapes() {
        let src = "/* outer /* unsafe */ still comment */ let s = \"a\\\"unsafe\\\"b\";";
        let s = scrub(src);
        assert!(!s.contains("unsafe"));
        assert!(s.contains("let s"));
    }

    #[test]
    fn test_blocks_are_stripped() {
        let src = "fn live() { map.iter(); }\n#[cfg(test)]\nmod tests {\n    fn t() { other.iter(); }\n}\nfn after() {}\n";
        let stripped = strip_test_blocks(&scrub(src));
        assert!(stripped.contains("map.iter()"), "live code kept");
        assert!(!stripped.contains("other.iter()"), "test code blanked");
        assert!(stripped.contains("fn after"), "code after the block kept");
        assert_eq!(stripped.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn find_root_locates_workspace() {
        let root = crate::built_workspace_root();
        assert_eq!(find_root(&root.join("crates/audit")), Some(root));
    }
}
