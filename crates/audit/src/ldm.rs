//! LDM budget prover.
//!
//! Walks every registered CPE kernel plan and proves — symbolically,
//! from the declared plan constants, before anything runs — that its
//! worst-case simultaneous-live footprint fits the SW26010 64 KB local
//! store. The registered plans are:
//!
//! * the four Fig. 9 MD offload variants plus the production batched
//!   configuration
//!   ([`mmds_md::offload::OffloadConfig::ldm_plans`]): resident
//!   compacted table + (double-buffered) block in/out buffers +
//!   ghost-reuse margin + (batched) SoA gather/eval lane buffers, per
//!   sweep;
//! * the Fe–Cu alloy table placement
//!   ([`mmds_eam::alloy::LdmPlacement::plan`]) under the optimized
//!   sweep's block-buffer reservation;
//! * the register-mesh distributed-table slice
//!   ([`mmds_sunway::register::distributed_table_plan`]) for the
//!   traditional 280 kB table spread across 64 CPEs.
//!
//! A second, textual check keeps the capacity itself honest: the
//! number 65536 may be spelled only in `crates/sunway/src/arch.rs`
//! (the single source of truth, [`SwModel::sw26010`]); a hard-coded
//! `65536` / `64 * 1024` / `0x10000` anywhere else is a finding.

use std::path::Path;

use mmds_eam::alloy::{AlloyEam, LdmPlacement};
use mmds_eam::spline::PAPER_TABLE_N;
use mmds_md::offload::{OffloadConfig, STAGE_BYTES_PER_SITE};
use mmds_sunway::register::distributed_table_plan;
use mmds_sunway::{budget::render_budget_table, LdmPlan, SwModel};

use crate::findings::{Finding, Pass};
use crate::workspace;

/// Every CPE kernel plan the workspace registers, in report order.
pub fn collect_plans() -> Vec<LdmPlan> {
    let ldm = SwModel::sw26010().ldm_bytes;
    let mut plans = Vec::new();

    // MD offload: all four Fig. 9 variants, every sweep each launches.
    for (label, cfg) in OffloadConfig::fig9_variants() {
        plans.extend(cfg.ldm_plans(label, PAPER_TABLE_N));
    }

    // The production default layers SoA lane batching on top of the
    // last Fig. 9 variant: its sweeps additionally reserve the batch
    // gather+eval lane buffers.
    let opt = OffloadConfig::optimized();
    plans.extend(opt.ldm_plans("Optimized+BatchedLanes", PAPER_TABLE_N));

    // Fe–Cu alloy: table residency planned around the optimized
    // sweep's block buffers; resident tables + buffers must co-exist.
    let copies = if opt.double_buffer { 2 } else { 1 };
    let per_site = copies * 2 * STAGE_BYTES_PER_SITE
        + if opt.data_reuse {
            STAGE_BYTES_PER_SITE
        } else {
            0
        };
    let buffer_bytes = opt.block_sites * per_site;
    let alloy = AlloyEam::fe_cu(0.015, PAPER_TABLE_N);
    let placement = LdmPlacement::plan(&alloy, ldm - buffer_bytes);
    let mut plan = LdmPlan::new("eam.alloy/fe_cu/placement", ldm).with(
        "atom block buffers",
        opt.block_sites,
        per_site,
    );
    for id in &placement.resident {
        plan = plan.with(
            format!("resident {:?}", id),
            alloy.table(*id).memory_bytes(),
            1,
        );
    }
    plans.push(plan);

    // Register mesh: each CPE's slice of the distributed traditional
    // table, alongside one optimized sweep's block buffers.
    let traditional_bytes = PAPER_TABLE_N * 7 * 8;
    let (slice, _) = distributed_table_plan(traditional_bytes, 64);
    plans.push(
        LdmPlan::new("sunway.register/distributed_table", ldm)
            .with("table slice (280000 B / 64 CPEs)", slice, 1)
            .with("atom block buffers", opt.block_sites, per_site),
    );

    plans
}

/// Substrings that spell the LDM capacity as a literal.
const LITERALS: [&str; 4] = ["65536", "64 * 1024", "64*1024", "0x10000"];

/// The one file allowed to spell the capacity.
const SOURCE_OF_TRUTH: &str = "crates/sunway/src/arch.rs";

/// Runs the prover: checks every registered plan, scans for hard-coded
/// capacity literals, and returns the rendered budget table plus any
/// findings.
pub fn run(root: &Path) -> (String, Vec<Finding>) {
    let mut findings = Vec::new();
    let plans = collect_plans();
    for plan in &plans {
        if let Err(e) = plan.check() {
            findings.push(Finding::at(Pass::LdmBudget, "", 0, e.to_string()));
        }
    }
    let table = render_budget_table(&plans);

    for file in workspace::load_sources(root, &["crates", "src"]) {
        if file.rel == SOURCE_OF_TRUTH
            || !file.rel.contains("/src/") && !file.rel.starts_with("src/")
        {
            continue;
        }
        for lit in LITERALS {
            let mut from = 0;
            while let Some(pos) = file.scrubbed[from..].find(lit) {
                let at = from + pos;
                findings.push(Finding::at(
                    Pass::LdmBudget,
                    file.rel.clone(),
                    file.line_of(at),
                    format!(
                        "hard-coded LDM capacity literal `{lit}`; use \
                         SwModel::sw26010().ldm_bytes (defined once in {SOURCE_OF_TRUTH})"
                    ),
                ));
                from = at + lit.len();
            }
        }
    }

    (table, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registered_plans_fit() {
        for plan in collect_plans() {
            plan.check().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn oversized_plan_is_rejected_with_breakdown() {
        // A deliberately oversized kernel plan: the traditional
        // 5000 × 7 × 8 B table resident in a single local store — the
        // layout the paper rejects in §2.1.2.
        let plan = LdmPlan::new("md.offload/naive/resident_traditional", 65_536)
            .with("resident traditional table", PAPER_TABLE_N * 7, 8)
            .with("block in", 448 * 3, 8);
        let err = plan.check().expect_err("280000 B cannot fit 64 KB");
        let msg = err.to_string();
        assert!(msg.contains("resident traditional table"), "{msg}");
        assert!(msg.contains("280000 B"), "per-kernel byte breakdown: {msg}");
        assert!(msg.contains("over by"), "{msg}");
    }

    #[test]
    fn alloy_placement_keeps_a_table_resident() {
        let plans = collect_plans();
        let alloy = plans
            .iter()
            .find(|p| p.kernel.contains("eam.alloy"))
            .expect("alloy placement plan registered");
        assert!(
            alloy.items.iter().any(|i| i.name.starts_with("resident")),
            "placement admits at least one resident table under the \
             optimized sweep's buffer reservation"
        );
    }

    #[test]
    fn literal_scan_flags_hardcoded_capacity() {
        let dir = std::env::temp_dir().join("mmds_audit_ldm_scan_test");
        let src = dir.join("crates/fake/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "pub fn cap() -> usize { 64 * 1024 }\n// comment 65536 is fine\n",
        )
        .unwrap();
        let (_, findings) = run(&dir);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("64 * 1024"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
