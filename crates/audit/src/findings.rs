//! Audit findings: one violation, attributed to a pass and a source
//! position.

/// Which analysis pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// LDM budget prover (including the hard-coded-literal scan).
    LdmBudget,
    /// Determinism linter.
    Determinism,
    /// Flop-ledger cross-checker.
    FlopLedger,
    /// `forbid(unsafe_code)` / unsafe-token audit.
    UnsafeAudit,
    /// Telemetry counter-manifest cross-checker.
    CounterManifest,
}

impl Pass {
    /// Short tag used in rendered findings.
    pub fn tag(&self) -> &'static str {
        match self {
            Pass::LdmBudget => "ldm-budget",
            Pass::Determinism => "determinism",
            Pass::FlopLedger => "flop-ledger",
            Pass::UnsafeAudit => "unsafe-audit",
            Pass::CounterManifest => "counter-manifest",
        }
    }
}

/// One audit violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Producing pass.
    pub pass: Pass,
    /// Workspace-relative file path (empty for whole-workspace facts).
    pub file: String,
    /// 1-based line, 0 when the finding has no line anchor.
    pub line: usize,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl Finding {
    /// Creates a finding anchored to `file:line`.
    pub fn at(
        pass: Pass,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            pass,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.file.is_empty() {
            write!(f, "[{}] {}", self.pass.tag(), self.message)
        } else if self.line == 0 {
            write!(f, "[{}] {}: {}", self.pass.tag(), self.file, self.message)
        } else {
            write!(
                f,
                "[{}] {}:{}: {}",
                self.pass.tag(),
                self.file,
                self.line,
                self.message
            )
        }
    }
}
