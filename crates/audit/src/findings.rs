//! Audit findings: one violation, attributed to a pass and a source
//! position, renderable as text or as a stable machine-readable JSON
//! record (`mmds-audit --json`).

/// Which analysis pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// LDM budget prover (including the hard-coded-literal scan).
    LdmBudget,
    /// Determinism linter.
    Determinism,
    /// Flop-ledger cross-checker.
    FlopLedger,
    /// `forbid(unsafe_code)` / unsafe-token audit.
    UnsafeAudit,
    /// Telemetry counter-manifest cross-checker.
    CounterManifest,
    /// Communication-protocol verifier (skeleton IR prover).
    Protocol,
}

impl Pass {
    /// Short tag used in rendered findings.
    pub fn tag(&self) -> &'static str {
        match self {
            Pass::LdmBudget => "ldm-budget",
            Pass::Determinism => "determinism",
            Pass::FlopLedger => "flop-ledger",
            Pass::UnsafeAudit => "unsafe-audit",
            Pass::CounterManifest => "counter-manifest",
            Pass::Protocol => "protocol",
        }
    }
}

/// How serious a finding is. Every current pass emits `Error` (CI
/// gates on any finding); the level exists in the record schema so
/// advisory lints can be added without breaking consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Advisory: worth a look, does not fail the audit by itself.
    Warning,
    /// Violation: fails the audit.
    Error,
}

impl Severity {
    /// Lower-case name used in rendered and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One audit violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Producing pass.
    pub pass: Pass,
    /// Workspace-relative file path (empty for whole-workspace facts).
    pub file: String,
    /// 1-based line, 0 when the finding has no line anchor.
    pub line: usize,
    /// Seriousness (all gating passes emit [`Severity::Error`]).
    pub severity: Severity,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl Finding {
    /// Creates an error-severity finding anchored to `file:line`.
    pub fn at(
        pass: Pass,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            pass,
            file: file.into(),
            line,
            severity: Severity::Error,
            message: message.into(),
        }
    }
}

impl serde::Serialize for Finding {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("pass".into(), serde::Value::Str(self.pass.tag().into())),
            ("file".into(), serde::Value::Str(self.file.clone())),
            ("line".into(), serde::Value::U64(self.line as u64)),
            (
                "severity".into(),
                serde::Value::Str(self.severity.name().into()),
            ),
            ("message".into(), serde::Value::Str(self.message.clone())),
        ])
    }
}

/// The versioned machine-readable report `mmds-audit --json` writes:
/// `{"schema": 1, "findings": [{pass, file, line, severity, message}]}`.
/// Bump `schema` on any field rename/removal; additions are allowed.
pub fn json_report(findings: &[Finding]) -> String {
    use serde::{Serialize, Value};
    let report = Value::Map(vec![
        ("schema".into(), Value::U64(1)),
        (
            "findings".into(),
            Value::Seq(findings.iter().map(|f| f.to_value()).collect()),
        ),
    ]);
    let mut text = serde_json::to_string_pretty(&report).expect("report serializes");
    text.push('\n');
    text
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.file.is_empty() {
            write!(f, "[{}] {}", self.pass.tag(), self.message)
        } else if self.line == 0 {
            write!(f, "[{}] {}: {}", self.pass.tag(), self.file, self.message)
        } else {
            write!(
                f,
                "[{}] {}:{}: {}",
                self.pass.tag(),
                self.file,
                self.line,
                self.message
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `--json` schema is a contract with CI artefact consumers:
    /// field names, order-independent presence, and the schema version
    /// must stay stable (additive changes only).
    #[test]
    fn json_schema_is_stable() {
        let findings = vec![
            Finding::at(Pass::Protocol, "crates/kmc/src/exchange.rs", 12, "oops"),
            Finding::at(Pass::LdmBudget, "", 0, "workspace-level \"fact\""),
        ];
        let text = json_report(&findings);
        let v = serde_json::parse(&text).expect("report parses back");
        // The parser may read integers back as I64; compare through
        // the numeric Deserialize impl, not the Value variant.
        let as_u64 = |v: &serde::Value| <u64 as serde::Deserialize>::from_value(v).unwrap();
        assert_eq!(as_u64(v.get("schema").expect("schema key")), 1);
        let serde::Value::Seq(records) = v.get("findings").expect("findings array") else {
            panic!("findings must be an array");
        };
        assert_eq!(records.len(), 2);
        for (key, want) in [
            ("pass", serde::Value::Str("protocol".into())),
            (
                "file",
                serde::Value::Str("crates/kmc/src/exchange.rs".into()),
            ),
            ("severity", serde::Value::Str("error".into())),
            ("message", serde::Value::Str("oops".into())),
        ] {
            assert_eq!(records[0].get(key), Some(&want), "field `{key}`");
        }
        assert_eq!(as_u64(records[0].get("line").expect("line key")), 12);
        // Quotes in messages must be escaped, not corrupt the document.
        assert_eq!(
            records[1].get("message"),
            Some(&serde::Value::Str("workspace-level \"fact\"".into()))
        );
        // An empty report is still a valid document with both keys.
        let empty = serde_json::parse(&json_report(&[])).unwrap();
        assert_eq!(as_u64(empty.get("schema").expect("schema key")), 1);
        assert_eq!(
            empty.get("findings"),
            Some(&serde::Value::Seq(Vec::new())),
            "empty findings key present"
        );
    }

    #[test]
    fn severity_names() {
        assert_eq!(Severity::Error.name(), "error");
        assert_eq!(Severity::Warning.name(), "warning");
        assert_eq!(
            Finding::at(Pass::Protocol, "f", 1, "m").severity,
            Severity::Error
        );
    }
}
