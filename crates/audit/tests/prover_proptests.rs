//! Property tests tying the symbolic LDM prover to the runtime
//! allocator: for any plan, a `LocalStore` driven through the plan's
//! allocation schedule reaches exactly the high-water mark the prover
//! computed symbolically — so a plan the prover accepts can never
//! overflow a real CPE local store, and `ClusterReport::ldm_high_water`
//! stays bounded by the declared plan.

use mmds_md::offload::OffloadConfig;
use mmds_sunway::{LdmPlan, LocalStore, SwModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Symbolic total == simulated high water for arbitrary plans
    /// (item sizes chosen so totals stay within a few × LDM).
    #[test]
    fn simulated_high_water_matches_symbolic(
        counts in proptest::collection::vec(1usize..2048, 1..8),
        elem in 1usize..16,
    ) {
        let mut plan = LdmPlan::new("prop/kernel", SwModel::sw26010().ldm_bytes);
        for (i, c) in counts.iter().enumerate() {
            plan = plan.with(format!("item{i}"), *c, elem);
        }
        prop_assert_eq!(plan.simulate_high_water(), plan.total_bytes());
    }

    /// Every fitted offload configuration's declared plans fit, and a
    /// real LocalStore allocating each plan's items peaks at the
    /// symbolic total without overflowing.
    #[test]
    fn fitted_offload_plans_allocate_cleanly(knots in 100usize..6000) {
        let cfg = OffloadConfig::optimized_for(knots);
        for plan in cfg.ldm_plans("prop", knots) {
            prop_assert!(plan.check().is_ok(), "{}", plan.kernel);
            let ls = LocalStore::new(plan.capacity);
            let handles: Vec<_> = plan
                .items
                .iter()
                .map(|item| {
                    ls.alloc_with::<u8>(item.bytes(), 0)
                        .unwrap_or_else(|e| panic!("{}: {e}", plan.kernel))
                })
                .collect();
            prop_assert_eq!(ls.high_water(), plan.total_bytes());
            drop(handles);
        }
    }
}
