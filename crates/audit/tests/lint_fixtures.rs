//! Determinism-linter fixture suite (trybuild-style, but lint-only:
//! the fixtures are plain source files the linter reads, never
//! compiled into the workspace).

use mmds_audit::determinism;
use mmds_audit::workspace::{scrub, SourceFile};

fn fixture(name: &str) -> SourceFile {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    SourceFile {
        rel: format!("crates/md/src/{name}"),
        scrubbed: scrub(&raw),
        raw,
    }
}

#[test]
fn hashmap_iteration_in_force_pass_is_caught() {
    let findings = determinism::lint_file(&fixture("hashmap_in_force.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert!(f.message.contains("`by_species`"), "{f}");
    assert!(f.message.contains("nondeterministic"), "{f}");
    assert_eq!(f.line, 15, "anchored to the iterating for-loop: {f}");
}

#[test]
fn deterministic_rewrite_is_clean() {
    let findings = determinism::lint_file(&fixture("clean_force.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn allowlist_markers_suppress_both_forms() {
    let findings = determinism::lint_file(&fixture("allowlisted.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn without_markers_the_allowlisted_hazards_would_fire() {
    // Strip the markers and the same file must produce findings —
    // proves the suppression is doing the work, not a blind spot.
    let original = fixture("allowlisted.rs");
    let raw = original
        .raw
        .replace("#[mmds_attrs::nondeterministic_ok]", "")
        .replace("// mmds: nondeterministic_ok", "");
    let stripped = SourceFile {
        rel: original.rel.clone(),
        scrubbed: scrub(&raw),
        raw,
    };
    let findings = determinism::lint_file(&stripped);
    assert!(
        findings.len() >= 2,
        "hash iteration + wall clock both fire unmarked: {findings:?}"
    );
}

/// The attribute itself must compile as a no-op passthrough on real
/// items (this is the workspace's one guaranteed expansion site).
#[mmds_attrs::nondeterministic_ok]
fn timing_helper() -> std::time::Instant {
    std::time::Instant::now()
}

#[test]
fn attribute_expands_to_passthrough() {
    let earlier = timing_helper();
    assert!(timing_helper() >= earlier);
}
