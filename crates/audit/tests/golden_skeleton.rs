//! Golden test for the communication-skeleton table: the declared
//! per-phase `CommPlan`s are the statically proved contract between
//! the exchange code and the causal-trace reconciler, so any drift
//! must show up as a reviewed diff of
//! `tests/golden/skeleton_table.txt`, not a silent change.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! cargo run -p mmds-audit --bin mmds-audit -- --protocol \
//!   | grep -v '^mmds-audit: clean' > crates/audit/tests/golden/skeleton_table.txt
//! ```

use mmds_audit::protocol::collect_plans;
use mmds_swmpi::skeleton::render_skeleton_table;

#[test]
fn skeleton_table_matches_golden() {
    let table = render_skeleton_table(&collect_plans());
    let golden = include_str!("golden/skeleton_table.txt");
    assert_eq!(
        table.trim_end(),
        golden.trim_end(),
        "skeleton table drifted from tests/golden/skeleton_table.txt — if the \
         change is intentional, regenerate per the header of this test"
    );
}

#[test]
fn golden_covers_every_phase() {
    let golden = include_str!("golden/skeleton_table.txt");
    for phase in [
        "md.ghost",
        "md.offload",
        "kmc.exchange.full",
        "kmc.exchange.get",
        "kmc.exchange.put",
        "kmc.exchange.dirty",
        "kmc.sync_dt",
        "coupled.rank",
    ] {
        assert!(golden.contains(phase), "golden table lists {phase}");
    }
}
