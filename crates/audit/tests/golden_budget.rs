//! Golden test for the LDM budget table: the registered plans and
//! their fitted block sizes are load-bearing numbers (they encode the
//! paper's §2.1.2 trade-offs), so any drift must show up as a reviewed
//! diff of `tests/golden/budget_table.txt`, not a silent change.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! cargo run -p mmds-audit --bin mmds-audit -- --ldm \
//!   | grep -v '^mmds-audit: clean' > crates/audit/tests/golden/budget_table.txt
//! ```

use mmds_audit::ldm::collect_plans;
use mmds_sunway::budget::render_budget_table;

#[test]
fn budget_table_matches_golden() {
    let table = render_budget_table(&collect_plans());
    let golden = include_str!("golden/budget_table.txt");
    assert_eq!(
        table.trim_end(),
        golden.trim_end(),
        "budget table drifted from tests/golden/budget_table.txt — if the \
         change is intentional, regenerate per the header of this test"
    );
}

#[test]
fn golden_has_the_paper_numbers() {
    let golden = include_str!("golden/budget_table.txt");
    // Compacted table: 5000 knots × 8 B resident per CPE.
    assert!(golden.contains("40000 B"));
    // The optimized variant trades block size (448 → 208) for reuse +
    // double buffering and still clears 64 KB.
    assert!(golden.contains("DataReuse+DoubleBuffer"));
    assert!(!golden.contains("OVER"), "no plan may exceed the budget");
}
