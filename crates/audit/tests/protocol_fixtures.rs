//! Negative fixtures for the protocol pass: each seeded-bad skeleton
//! (or source file) must produce *exactly* its expected finding — the
//! prover may not go quiet on a broken plan, and may not pile
//! unrelated findings onto a single seeded defect.

use mmds_audit::protocol::{lint_file, prove_plans};
use mmds_audit::workspace::{self, SourceFile};
use mmds_swmpi::CommPlan;

fn load_plan(json: &str) -> CommPlan {
    serde_json::from_str(json).expect("fixture plan parses")
}

/// Runs the prover on one fixture plan and asserts a single finding
/// whose message carries the expected diagnosis.
fn assert_single_finding(json: &str, expect: &str) {
    let plan = load_plan(json);
    let findings = prove_plans(std::slice::from_ref(&plan));
    assert_eq!(
        findings.len(),
        1,
        "fixture `{}` must produce exactly one finding, got {findings:?}",
        plan.phase
    );
    assert_eq!(findings[0].file, plan.declared_in);
    assert!(
        findings[0].message.contains(expect),
        "fixture `{}`: expected a `{expect}` diagnosis, got: {}",
        plan.phase,
        findings[0].message
    );
}

#[test]
fn orphan_send_is_diagnosed() {
    assert_single_finding(include_str!("fixtures/orphan_send.json"), "orphan send");
}

#[test]
fn cyclic_exchange_order_is_diagnosed() {
    assert_single_finding(
        include_str!("fixtures/cyclic_order.json"),
        "cyclic exchange order",
    );
}

#[test]
fn unfenced_put_is_diagnosed() {
    assert_single_finding(include_str!("fixtures/unfenced_put.json"), "unfenced put");
}

#[test]
fn rank_divergent_collective_is_diagnosed() {
    let src = include_str!("fixtures/rank_divergent_collective.rs");
    let file = SourceFile {
        rel: "crates/audit/tests/fixtures/rank_divergent_collective.rs".into(),
        raw: src.to_string(),
        scrubbed: workspace::scrub(src),
    };
    let findings = lint_file(&file);
    assert_eq!(
        findings.len(),
        1,
        "fixture must produce exactly one finding, got {findings:?}"
    );
    assert!(
        findings[0].message.contains("rank-guarded collective"),
        "expected a rank-guarded-collective diagnosis, got: {}",
        findings[0].message
    );
    assert_eq!(findings[0].line, 7, "finding anchors on the barrier line");
}
