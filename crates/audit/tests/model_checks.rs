//! Exhaustive-interleaving model checks (loom-style, behind the
//! `model-checks` feature: `cargo test -p mmds-audit --features
//! model-checks`).
//!
//! Each check enumerates **every** schedule of the participating
//! ranks' operations with [`mmds_audit::interleave`] and asserts the
//! protocol invariants under all of them. Steps are method calls — the
//! objects under test guard their state with one internal lock, so
//! methods are the atomic units a real scheduler can interleave.
//! (Spans are modelled as complete open/close pairs per step: the
//! span stack and rank tag are thread-locals, so intra-span
//! interleavings on one OS thread do not correspond to any real
//! execution.)
#![cfg(feature = "model-checks")]

use mmds_audit::interleave::{explore, schedule_count};
use mmds_swmpi::onesided::{PutRecord, WindowHub};
use mmds_telemetry::{rank_scope, Event, MemorySink, Mode, Telemetry};

fn rec(src: usize, region: u32, tag: u8) -> PutRecord {
    PutRecord {
        src,
        region,
        depart_time: 0.0,
        payload: vec![tag],
    }
}

/// Window fence/put protocol: two source ranks each deposit two
/// records into rank 0's window in program order. Under every
/// interleaving of the four puts: no record is lost or duplicated
/// (`pending` counts every put exactly once), and the post-fence
/// `drain` returns the same `(src, region)`-sorted sequence —
/// delivery order is schedule-independent, which is what makes the
/// on-demand exchange deterministic.
#[test]
fn window_put_fence_drain_is_schedule_independent() {
    // Descending regions per thread so raw arrival order is *never*
    // the sorted order — the sort has to do the work.
    let scripts: [[(u32, u8); 2]; 2] = [
        [(3, 10), (1, 11)], // rank 1 puts regions 3 then 1
        [(2, 20), (0, 21)], // rank 2 puts regions 2 then 0
    ];
    let mut canonical: Option<Vec<(usize, u32, u8)>> = None;
    let n = explore(
        &[2, 2],
        || (WindowHub::new(3), 0usize),
        |(hub, puts), tid, k| {
            let (region, tag) = scripts[tid][k];
            hub.put(0, rec(tid + 1, region, tag));
            *puts += 1;
            assert_eq!(hub.pending(0), *puts, "every put lands exactly once");
        },
        |(hub, puts), schedule| {
            assert_eq!(*puts, 4);
            let drained: Vec<_> = hub
                .drain(0)
                .into_iter()
                .map(|r| (r.src, r.region, r.payload[0]))
                .collect();
            assert_eq!(hub.pending(0), 0, "drain empties the board");
            match &canonical {
                None => canonical = Some(drained),
                Some(c) => assert_eq!(
                    &drained, c,
                    "drain order diverged under schedule {schedule:?}"
                ),
            }
        },
    );
    assert_eq!(n as u128, schedule_count(&[2, 2]));
    assert_eq!(
        canonical.unwrap(),
        vec![(1, 1, 11), (1, 3, 10), (2, 0, 21), (2, 2, 20)],
        "sorted by (src, region), not by arrival"
    );
}

/// Same protocol at (4,4) — 70 schedules — with both ranks writing the
/// same regions, checking that ties preserve multiset equality.
#[test]
fn window_protocol_all_seventy_schedules() {
    let mut canonical: Option<Vec<(usize, u32)>> = None;
    let n = explore(
        &[4, 4],
        || WindowHub::new(2),
        |hub, tid, k| hub.put(1, rec(tid, (3 - k) as u32, 0)),
        |hub, schedule| {
            let drained: Vec<_> = hub
                .drain(1)
                .into_iter()
                .map(|r| (r.src, r.region))
                .collect();
            match &canonical {
                None => canonical = Some(drained),
                Some(c) => assert_eq!(&drained, c, "schedule {schedule:?}"),
            }
        },
    );
    assert_eq!(n, 70);
    assert_eq!(n as u128, schedule_count(&[4, 4]));
}

/// Span-registry keying: two modelled ranks interleave spans with the
/// *same* path. Under every schedule the registry must keep the ranks'
/// statistics separate — keyed `(rank, path)` — with exact per-rank
/// counts, and the aggregate view must still total both.
#[test]
fn span_registry_keys_by_rank_and_path_under_all_schedules() {
    let n = explore(
        &[3, 3],
        || Telemetry::with_mode(Mode::Summary),
        |tele, tid, _k| {
            let _rank = rank_scope(tid as u32);
            let _span = tele.span("model_step");
        },
        |tele, schedule| {
            let per_rank = tele.rank_span_reports();
            assert_eq!(per_rank.len(), 2, "one entry per rank: {schedule:?}");
            for (rank, report) in &per_rank {
                assert!(matches!(rank, Some(0) | Some(1)));
                assert_eq!(report.path, "model_step");
                assert_eq!(report.count, 3, "rank {rank:?} under {schedule:?}");
            }
            let merged = tele.span_reports();
            assert_eq!(merged.len(), 1);
            assert_eq!(merged[0].count, 6, "aggregate totals both ranks");
        },
    );
    assert_eq!(n as u128, schedule_count(&[3, 3]));
}

/// JSONL sink sequence counter: three ranks emit interleaved events.
/// Under every schedule the sink receives a gapless, strictly
/// increasing `seq` (0..n in arrival order) — the property the run
/// inspector relies on to detect truncated logs — and every rank's
/// own events appear in its program order.
#[test]
fn sink_sequence_is_gapless_under_all_schedules() {
    let n = explore(
        &[2, 2, 2],
        || {
            let tele = Telemetry::with_mode(Mode::Summary);
            let sink = MemorySink::new();
            tele.install_sink(Box::new(sink.clone()));
            (tele, sink)
        },
        |(tele, _), tid, k| {
            let _rank = rank_scope(tid as u32);
            tele.emit(Event::Counter {
                name: format!("r{tid}.e{k}"),
                value: 1.0,
            });
        },
        |(_, sink), schedule| {
            let records = sink.records();
            assert_eq!(records.len(), 6);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(
                    r.seq, i as u64,
                    "gapless seq in arrival order under {schedule:?}"
                );
            }
            for rank in 0..3u32 {
                let names: Vec<_> = records
                    .iter()
                    .filter(|r| r.rank == Some(rank))
                    .map(|r| match &r.event {
                        Event::Counter { name, .. } => name.clone(),
                        other => panic!("unexpected event {other:?}"),
                    })
                    .collect();
                assert_eq!(
                    names,
                    vec![format!("r{rank}.e0"), format!("r{rank}.e1")],
                    "rank {rank} program order under {schedule:?}"
                );
            }
        },
    );
    assert_eq!(n as u128, schedule_count(&[2, 2, 2]));
}
