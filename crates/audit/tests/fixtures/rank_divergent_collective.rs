//! Protocol-lint fixture: a collective reached by rank 0 only.
//! Never compiled — consumed as text by `tests/protocol_fixtures.rs`.

fn report_and_sync(comm: &Comm) {
    if comm.rank() == 0 {
        println!("cycle done");
        comm.barrier();
    }
}
