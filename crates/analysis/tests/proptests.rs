//! Property tests: union-find and the cell-binned cluster sweep
//! against brute-force oracles.
//!
//! The in-situ defect observatory trusts `cluster_sizes` for every
//! census pass, so the cell-binning + periodic minimum-image shortcut
//! is checked here against an O(N²) connected-components oracle on
//! small random lattices — every vacancy pattern, box shape and
//! linking radius the sampler produces must agree exactly.

use proptest::prelude::*;

use mmds_analysis::clusters::cluster_sizes;
use mmds_analysis::union_find::UnionFind;

/// Brute-force connected components over an explicit edge list.
fn oracle_components(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut label: Vec<usize> = (0..n).collect();
    // Label propagation to fixpoint: slow and obviously correct.
    loop {
        let mut changed = false;
        for &(a, b) in edges {
            let m = label[a].min(label[b]);
            if label[a] != m || label[b] != m {
                label[a] = m;
                label[b] = m;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut sizes = std::collections::BTreeMap::new();
    for x in 0..n {
        // Chase to the representative (labels may lag by one hop).
        let mut r = x;
        while label[r] != r {
            r = label[r];
        }
        *sizes.entry(r).or_insert(0usize) += 1;
    }
    let mut out: Vec<usize> = sizes.into_values().collect();
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

/// Periodic minimum-image squared distance.
fn min_image_d2(a: [f64; 3], b: [f64; 3], box_len: [f64; 3]) -> f64 {
    let mut d2 = 0.0;
    for ax in 0..3 {
        let mut d = a[ax] - b[ax];
        d -= (d / box_len[ax]).round() * box_len[ax];
        d2 += d * d;
    }
    d2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union-find agrees with label-propagation on random edge sets:
    /// same component count, same sorted size multiset, and `find`
    /// equality exactly for connected pairs.
    #[test]
    fn union_find_matches_oracle(
        n in 1usize..40,
        edge_picks in prop::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let edges: Vec<(usize, usize)> =
            edge_picks.iter().map(|&(a, b)| (a % n, b % n)).collect();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        let oracle = oracle_components(n, &edges);
        prop_assert_eq!(uf.components(), oracle.len());
        prop_assert_eq!(uf.component_sizes(), oracle.clone());
        prop_assert_eq!(
            oracle.iter().sum::<usize>(), n,
            "oracle partitions all elements"
        );
        for &(a, b) in &edges {
            prop_assert_eq!(uf.find(a), uf.find(b));
        }
    }

    /// The cell-binned periodic cluster sweep finds exactly the same
    /// clusters as the O(N²) oracle on random vacancy patterns over a
    /// small lattice with jitter.
    #[test]
    fn cluster_sweep_matches_brute_force(
        cells in 3usize..7,
        occupancy in prop::collection::vec((0usize..6, 0usize..6, 0usize..6), 1..30),
        jitter in prop::collection::vec(-0.3f64..0.3, 90..91),
        r_link in 2.0f64..5.5,
    ) {
        let a0 = 2.855;
        let box_len = [cells as f64 * a0; 3];
        // Random distinct lattice sites (duplicates collapse).
        let mut sites: Vec<(usize, usize, usize)> = occupancy
            .iter()
            .map(|&(i, j, k)| (i % cells, j % cells, k % cells))
            .collect();
        sites.sort_unstable();
        sites.dedup();
        let points: Vec<[f64; 3]> = sites
            .iter()
            .enumerate()
            .map(|(idx, &(i, j, k))| {
                [
                    i as f64 * a0 + jitter[(3 * idx) % jitter.len()],
                    j as f64 * a0 + jitter[(3 * idx + 1) % jitter.len()],
                    k as f64 * a0 + jitter[(3 * idx + 2) % jitter.len()],
                ]
            })
            .collect();

        let mut edges = Vec::new();
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if min_image_d2(points[i], points[j], box_len) <= r_link * r_link {
                    edges.push((i, j));
                }
            }
        }
        let oracle = oracle_components(points.len(), &edges);

        let report = cluster_sizes(&points, box_len, r_link);
        prop_assert_eq!(report.n_points, points.len());
        prop_assert_eq!(report.n_clusters, oracle.len());
        prop_assert_eq!(report.sizes, oracle.clone());
        prop_assert_eq!(report.largest, oracle.first().copied().unwrap_or(0));
    }
}
