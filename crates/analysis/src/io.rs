//! Output writers for experiment artefacts.

use std::io::Write;
use std::path::Path;

use serde::Serialize;

/// Writes a point cloud as CSV (`x,y,z` per line) — the Fig. 17
/// artefact.
pub fn write_points_csv(path: &Path, points: &[[f64; 3]]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "x,y,z")?;
    for p in points {
        writeln!(f, "{},{},{}", p[0], p[1], p[2])?;
    }
    Ok(())
}

/// Writes an extended-XYZ frame (`species x y z` per line) — readable
/// by OVITO/VMD/ASE for visualising cascades and vacancy clouds.
pub fn write_xyz(path: &Path, comment: &str, atoms: &[(&str, [f64; 3])]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", atoms.len())?;
    writeln!(f, "{}", comment.replace('\n', " "))?;
    for (species, p) in atoms {
        writeln!(f, "{species} {} {} {}", p[0], p[1], p[2])?;
    }
    Ok(())
}

/// Writes any serialisable result as pretty JSON — every figure binary
/// emits one of these so results are machine-checkable.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let s = serde_json::to_string_pretty(value).expect("serialisable result");
    std::fs::write(path, s)
}

/// Renders a simple aligned text table (the "rows the paper reports").
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("mmds_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("pts.csv");
        write_points_csv(&p, &[[1.0, 2.0, 3.0], [4.5, 5.5, 6.5]]).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.starts_with("x,y,z\n"));
        assert!(s.contains("4.5,5.5,6.5"));
    }

    #[test]
    fn xyz_writer() {
        let dir = std::env::temp_dir().join("mmds_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("frame.xyz");
        write_xyz(
            &p,
            "cascade frame t=1ps",
            &[("Fe", [0.0, 0.0, 0.0]), ("V", [1.4, 1.4, 1.4])],
        )
        .unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "2");
        assert!(lines[2].starts_with("Fe "));
        assert!(lines[3].starts_with("V "));
    }

    #[test]
    fn json_writer() {
        let dir = std::env::temp_dir().join("mmds_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("r.json");
        write_json(&p, &vec![1, 2, 3]).unwrap();
        let v: Vec<i32> = serde_json::from_str(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["cores", "time"],
            &[
                vec!["65".into(), "320.5".into()],
                vec!["1040".into(), "21.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("cores"));
        assert!(lines[3].trim_start().starts_with("1040"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
