//! Dispersion metrics: how spread-out a vacancy cloud is.
//!
//! After MD the vacancies are "very dispersive"; after KMC they
//! aggregate (paper Fig. 17). The mean nearest-neighbour distance
//! captures this: it *drops* as clusters form, and its ratio to the
//! random-gas expectation `0.554·ρ^(−1/3)` (Hertz) distinguishes the
//! two regimes quantitatively.

use serde::{Deserialize, Serialize};

/// Dispersion summary of a point cloud.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DispersionReport {
    /// Points analysed.
    pub n_points: usize,
    /// Mean distance to the nearest neighbour (Å).
    pub mean_nn: f64,
    /// Expected mean NN distance for an ideal random gas of the same
    /// density (Hertz distribution mean).
    pub random_nn: f64,
    /// `mean_nn / random_nn`: ≈1 for dispersed, ≪1 for clustered.
    pub ratio: f64,
}

/// Minimum-image distance squared.
fn d2(a: &[f64; 3], b: &[f64; 3], l: &[f64; 3]) -> f64 {
    let mut s = 0.0;
    for ax in 0..3 {
        let mut d = a[ax] - b[ax];
        d -= (d / l[ax]).round() * l[ax];
        s += d * d;
    }
    s
}

/// Mean nearest-neighbour distance of `points` in a periodic box.
pub fn mean_nn_distance(points: &[[f64; 3]], box_len: [f64; 3]) -> DispersionReport {
    let n = points.len();
    if n < 2 {
        return DispersionReport {
            n_points: n,
            ..Default::default()
        };
    }
    let mut total = 0.0;
    for (i, p) in points.iter().enumerate() {
        let mut best = f64::INFINITY;
        for (j, q) in points.iter().enumerate() {
            if i != j {
                best = best.min(d2(p, q, &box_len));
            }
        }
        total += best.sqrt();
    }
    let mean_nn = total / n as f64;
    let volume = box_len[0] * box_len[1] * box_len[2];
    let rho = n as f64 / volume;
    // Hertz: <r> = Γ(4/3)·(4πρ/3)^(−1/3) ≈ 0.55396·ρ^(−1/3).
    let random_nn = 0.553_96 * rho.powf(-1.0 / 3.0);
    DispersionReport {
        n_points: n,
        mean_nn,
        random_nn,
        ratio: mean_nn / random_nn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn too_few_points() {
        let r = mean_nn_distance(&[[0.0; 3]], [10.0; 3]);
        assert_eq!(r.mean_nn, 0.0);
        assert_eq!(r.n_points, 1);
    }

    #[test]
    fn grid_points_have_exact_nn() {
        // 8 points on a 5 Å grid in a 10 Å box: every NN distance is 5.
        let mut pts = Vec::new();
        for x in 0..2 {
            for y in 0..2 {
                for z in 0..2 {
                    pts.push([5.0 * x as f64, 5.0 * y as f64, 5.0 * z as f64]);
                }
            }
        }
        let r = mean_nn_distance(&pts, [10.0; 3]);
        assert!((r.mean_nn - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clustered_cloud_has_small_ratio() {
        // Two tight clumps far apart.
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push([10.0 + 0.3 * i as f64, 10.0, 10.0]);
            pts.push([40.0 + 0.3 * i as f64, 40.0, 40.0]);
        }
        let r = mean_nn_distance(&pts, [50.0; 3]);
        assert!(r.ratio < 0.2, "ratio = {}", r.ratio);
    }

    #[test]
    fn dispersed_cloud_has_ratio_near_one() {
        // Quasi-random low-discrepancy points.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 60.0
        };
        let pts: Vec<[f64; 3]> = (0..300).map(|_| [next(), next(), next()]).collect();
        let r = mean_nn_distance(&pts, [60.0; 3]);
        assert!((0.7..1.3).contains(&r.ratio), "ratio = {}", r.ratio);
    }

    #[test]
    fn periodic_wrap_counts() {
        let pts = vec![[0.2, 5.0, 5.0], [9.8, 5.0, 5.0]];
        let r = mean_nn_distance(&pts, [10.0; 3]);
        assert!((r.mean_nn - 0.4).abs() < 1e-12);
    }
}
