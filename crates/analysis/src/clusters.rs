//! Vacancy cluster identification.
//!
//! Two vacancies belong to the same cluster when they are within a
//! linking radius (conventionally between the 2NN distance and the 3NN
//! distance for BCC). Clusters are found with a cell-binned union-find
//! sweep, `O(N)` for bounded density.

use serde::{Deserialize, Serialize};

use crate::union_find::UnionFind;

/// Cluster census of a vacancy point cloud.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Vacancies analysed.
    pub n_points: usize,
    /// Number of clusters (monovacancies count as size-1 clusters).
    pub n_clusters: usize,
    /// Cluster sizes, descending.
    pub sizes: Vec<usize>,
    /// Largest cluster size.
    pub largest: usize,
    /// Mean cluster size.
    pub mean_size: f64,
    /// Fraction of vacancies in clusters of ≥ 2.
    pub clustered_fraction: f64,
}

/// Histogram of cluster sizes: `histogram[k]` = number of clusters of
/// size `k+1` (sizes above `max_bin` are folded into the last bin).
pub fn size_histogram(sizes: &[usize], max_bin: usize) -> Vec<usize> {
    let mut h = vec![0usize; max_bin];
    for &s in sizes {
        let bin = s.clamp(1, max_bin) - 1;
        h[bin] += 1;
    }
    h
}

/// Clusters `points` (periodic box `box_len`) with linking radius
/// `r_link`.
pub fn cluster_sizes(points: &[[f64; 3]], box_len: [f64; 3], r_link: f64) -> ClusterReport {
    let n = points.len();
    if n == 0 {
        return ClusterReport::default();
    }
    let mut uf = UnionFind::new(n);
    // Cell binning with periodic wrap.
    let mut dims = [1usize; 3];
    for ax in 0..3 {
        dims[ax] = ((box_len[ax] / r_link).floor() as usize).max(1);
    }
    let cell_of = |p: &[f64; 3]| -> [usize; 3] {
        let mut c = [0usize; 3];
        for ax in 0..3 {
            let u = (p[ax].rem_euclid(box_len[ax])) / box_len[ax];
            c[ax] = ((u * dims[ax] as f64) as usize).min(dims[ax] - 1);
        }
        c
    };
    let flat = |c: [usize; 3]| (c[2] * dims[1] + c[1]) * dims[0] + c[0];
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
    for (i, p) in points.iter().enumerate() {
        bins[flat(cell_of(p))].push(i as u32);
    }
    let r2 = r_link * r_link;
    let min_image = |a: &[f64; 3], b: &[f64; 3]| -> f64 {
        let mut d2 = 0.0;
        for ax in 0..3 {
            let mut d = a[ax] - b[ax];
            d -= (d / box_len[ax]).round() * box_len[ax];
            d2 += d * d;
        }
        d2
    };
    for (i, p) in points.iter().enumerate() {
        let c = cell_of(p);
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let q = [
                        (c[0] as i64 + dx).rem_euclid(dims[0] as i64) as usize,
                        (c[1] as i64 + dy).rem_euclid(dims[1] as i64) as usize,
                        (c[2] as i64 + dz).rem_euclid(dims[2] as i64) as usize,
                    ];
                    for &j in &bins[flat(q)] {
                        if (j as usize) > i && min_image(p, &points[j as usize]) <= r2 {
                            uf.union(i, j as usize);
                        }
                    }
                }
            }
        }
    }
    let sizes = uf.component_sizes();
    let clustered: usize = sizes.iter().filter(|&&s| s >= 2).sum();
    ClusterReport {
        n_points: n,
        n_clusters: sizes.len(),
        largest: sizes.first().copied().unwrap_or(0),
        mean_size: n as f64 / sizes.len() as f64,
        clustered_fraction: clustered as f64 / n as f64,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: [f64; 3] = [50.0, 50.0, 50.0];

    #[test]
    fn empty_cloud() {
        let r = cluster_sizes(&[], L, 3.0);
        assert_eq!(r.n_points, 0);
        assert_eq!(r.n_clusters, 0);
    }

    #[test]
    fn isolated_points_are_monovacancies() {
        let pts = vec![[1.0, 1.0, 1.0], [20.0, 20.0, 20.0], [40.0, 5.0, 30.0]];
        let r = cluster_sizes(&pts, L, 3.0);
        assert_eq!(r.n_clusters, 3);
        assert_eq!(r.largest, 1);
        assert_eq!(r.clustered_fraction, 0.0);
    }

    #[test]
    fn close_points_cluster() {
        let pts = vec![
            [10.0, 10.0, 10.0],
            [12.0, 10.0, 10.0],
            [12.0, 12.0, 10.0],
            [40.0, 40.0, 40.0],
        ];
        let r = cluster_sizes(&pts, L, 3.0);
        assert_eq!(r.n_clusters, 2);
        assert_eq!(r.sizes, vec![3, 1]);
        assert_eq!(r.largest, 3);
        assert!((r.clustered_fraction - 0.75).abs() < 1e-12);
        assert!((r.mean_size - 2.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_wrap_links_across_boundary() {
        let pts = vec![[0.5, 10.0, 10.0], [49.5, 10.0, 10.0]];
        let r = cluster_sizes(&pts, L, 2.0);
        assert_eq!(r.n_clusters, 1, "1.0 Å apart across the boundary");
    }

    #[test]
    fn chain_percolates_into_one_cluster() {
        let pts: Vec<[f64; 3]> = (0..20).map(|i| [2.0 * i as f64 + 1.0, 5.0, 5.0]).collect();
        let r = cluster_sizes(&pts, L, 2.5);
        assert_eq!(r.n_clusters, 1);
        assert_eq!(r.largest, 20);
    }

    #[test]
    fn histogram_folds_overflow() {
        let h = size_histogram(&[1, 1, 2, 3, 9], 4);
        assert_eq!(h, vec![2, 1, 1, 1]);
    }
}
