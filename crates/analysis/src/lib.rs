//! # mmds-analysis — defect post-processing
//!
//! The paper's Fig. 17 compares the vacancy distribution after MD
//! ("very dispersive") with the distribution after KMC ("relatively
//! more aggregative and several vacancy clusters are forming"). This
//! crate quantifies that: union-find clustering of vacancy point
//! clouds, cluster-size histograms, and nearest-neighbour dispersion
//! metrics, plus CSV/JSON writers for the figure binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clusters;
pub mod dispersion;
pub mod io;
pub mod union_find;

pub use clusters::{cluster_sizes, ClusterReport};
pub use dispersion::{mean_nn_distance, DispersionReport};
pub use union_find::UnionFind;
