//! Disjoint-set forest with path compression and union by size.

/// A union-find over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for the empty structure.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while cur != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns true if they were
    /// separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Current number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Size of `x`'s set.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Sizes of all components, descending.
    pub fn component_sizes(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut sizes = Vec::new();
        for x in 0..n {
            if self.find(x) == x {
                sizes.push(self.size[x] as usize);
            }
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.component_size(i), 1);
        }
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 3), "already connected");
        assert_eq!(uf.components(), 3);
        assert_eq!(uf.component_size(3), 4);
        assert_eq!(uf.component_sizes(), vec![4, 1, 1]);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert_eq!(uf.find(0), uf.find(99));
        assert_eq!(uf.component_size(50), 100);
    }
}
