//! Berendsen velocity-rescaling thermostat.

use mmds_lattice::lnl::LatticeNeighborList;

use crate::integrate::temperature;

/// One Berendsen rescale toward `t_target`:
/// `λ = √(1 + (dt/τ)(T₀/T − 1))`, velocities scaled by λ.
/// Returns the applied λ.
pub fn berendsen(
    l: &mut LatticeNeighborList,
    interior: &[usize],
    mass: f64,
    t_target: f64,
    dt: f64,
    tau: f64,
) -> f64 {
    let t = temperature(l, interior, mass);
    if t <= 1e-12 {
        return 1.0;
    }
    let lambda = (1.0 + dt / tau * (t_target / t - 1.0)).max(0.0).sqrt();
    for &s in interior {
        if l.id[s] < 0 {
            continue;
        }
        for ax in 0..3 {
            l.vel[s][ax] *= lambda;
        }
    }
    for i in l.live_runaways() {
        let r = l.runaway_mut(i);
        for ax in 0..3 {
            r.vel[ax] *= lambda;
        }
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::maxwell_boltzmann;
    use mmds_lattice::{BccGeometry, LocalGrid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rescales_toward_target() {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(5), 2);
        let mut l = mmds_lattice::LatticeNeighborList::perfect(grid, 5.0);
        let ids: Vec<usize> = l.grid.interior_ids().collect();
        let mut rng = StdRng::seed_from_u64(1);
        maxwell_boltzmann(&mut l, &ids, 55.845, 1200.0, &mut rng);
        let t0 = temperature(&l, &ids, 55.845);
        for _ in 0..200 {
            berendsen(&mut l, &ids, 55.845, 600.0, 0.001, 0.01);
        }
        let t1 = temperature(&l, &ids, 55.845);
        assert!((t1 - 600.0).abs() < (t0 - 600.0).abs());
        assert!((t1 - 600.0).abs() / 600.0 < 0.05, "T = {t1}");
    }

    #[test]
    fn cold_system_is_left_alone() {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(4), 2);
        let mut l = mmds_lattice::LatticeNeighborList::perfect(grid, 5.0);
        let ids: Vec<usize> = l.grid.interior_ids().collect();
        let lambda = berendsen(&mut l, &ids, 55.845, 600.0, 0.001, 0.1);
        assert_eq!(lambda, 1.0);
    }
}
