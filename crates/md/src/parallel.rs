//! Multi-rank MD: domain-decomposed runs over a `mmds-swmpi` world.
//!
//! "For MD, the master cores are responsible for inter-node
//! communication and the slave cores are responsible for the EAM
//! computation" (§3). Each rank owns a subdomain, offloads the EAM
//! passes to its simulated CPE cluster, and charges the kernel's
//! virtual time to its rank clock; ghost exchanges charge communication
//! time through the swmpi cost model. The strong/weak scaling figures
//! (Figs. 10, 11) read the resulting per-rank compute/communication
//! split.

use mmds_sunway::{CpeCluster, SwModel};
use mmds_swmpi::topology::CartGrid;
use mmds_swmpi::world::RankOutput;
use mmds_swmpi::{Comm, World};
use serde::{Deserialize, Serialize};

use crate::cascade::{launch_pka, PKA_DIRECTION};
use crate::config::MdConfig;
use crate::defects::{count, DefectCount};
use crate::domain::{exchange_ghosts, migrate_runaways, CommTransport, GhostPhase};
use crate::integrate::{drift, kick, kinetic_energy, temperature};
use crate::offload::{offload_compute_forces, OffloadConfig};
use crate::runaway::apply_transitions;
use crate::sim::{MdSimulation, StepSample};
use crate::thermostat::berendsen;
use mmds_lattice::{BccGeometry, LocalGrid};

/// MPE-side per-atom work per step (integration, transitions,
/// pack/unpack marshalling), charged to the rank clock.
pub const MPE_PER_ATOM_SECONDS: f64 = 7.0e-8;

/// Parameters of a parallel MD run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ParallelMdParams {
    /// Per-rank MD configuration.
    pub md: MdConfig,
    /// CPE offload configuration.
    pub offload: OffloadConfig,
    /// Global box in BCC cells per axis (must divide by the rank grid).
    pub global_cells: [usize; 3],
    /// Measured steps.
    pub steps: usize,
    /// Warm-up steps excluded from the accounting window.
    pub warmup_steps: usize,
    /// Optional PKA energy (eV) launched on rank 0 at start.
    pub pka_energy: Option<f64>,
}

/// Per-rank outcome of a parallel MD run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RankMdSummary {
    /// Final step observables.
    pub last: StepSample,
    /// Final defect census of the subdomain.
    pub defects: DefectCount,
    /// Owned atoms.
    pub n_atoms: usize,
    /// Total CPE kernel time charged (virtual seconds).
    pub cpe_time: f64,
}

/// Builds a rank's local grid for a global box split over `grid3`.
pub fn rank_grid(
    md: &MdConfig,
    global_cells: [usize; 3],
    grid3: CartGrid,
    rank: usize,
) -> LocalGrid {
    let geom = BccGeometry::new(md.a0, global_cells[0], global_cells[1], global_cells[2]);
    let (start, len) = grid3.subdomain(global_cells, rank);
    for ax in 0..3 {
        assert_eq!(
            global_cells[ax] % grid3.dims[ax],
            0,
            "global cells must divide evenly over ranks (axis {ax})"
        );
    }
    let ghost = (md.offsets_cutoff() / md.a0).ceil() as usize;
    LocalGrid::new(geom, start, len, ghost)
}

/// One offloaded velocity-Verlet step; charges compute time to `comm`.
pub fn offload_step(
    sim: &mut MdSimulation,
    comm: &Comm,
    transport: &mut CommTransport<'_>,
    cluster: &CpeCluster,
    ocfg: &OffloadConfig,
) -> StepSample {
    let _span = mmds_telemetry::span!("md.step");
    let dt = sim.cfg.dt;
    let n_atoms = sim.n_atoms();
    kick(&mut sim.lnl, &sim.interior, 0.5 * dt, sim.mass);
    drift(&mut sim.lnl, &sim.interior, dt);
    let st = apply_transitions(&mut sim.lnl, &sim.cfg, &sim.interior);
    sim.transitions = sim.transitions.merge(&st);
    {
        let _g = mmds_telemetry::span!("md.ghost");
        migrate_runaways(&mut sim.lnl, transport);
        exchange_ghosts(&mut sim.lnl, transport, GhostPhase::Positions);
    }
    let interior = std::mem::take(&mut sim.interior);
    let outcome = {
        let _g = mmds_telemetry::span!("md.offload");
        let pot = &sim.pot;
        let lnl = &mut sim.lnl;
        offload_compute_forces(lnl, pot, cluster, ocfg, &interior, |l| {
            exchange_ghosts(l, transport, GhostPhase::Fp)
        })
    };
    sim.interior = interior;
    if mmds_telemetry::enabled() {
        mmds_telemetry::absorb_cpe_counters(
            &outcome.density.counters.merge(&outcome.force.counters),
        );
    }
    comm.tick_compute(outcome.kernel_time() + n_atoms as f64 * MPE_PER_ATOM_SECONDS);
    kick(&mut sim.lnl, &sim.interior, 0.5 * dt, sim.mass);
    if let Some(tau) = sim.cfg.thermostat_tau {
        berendsen(
            &mut sim.lnl,
            &sim.interior,
            sim.mass,
            sim.cfg.temperature,
            dt,
            tau,
        );
    }
    sim.time_ps += dt;
    StepSample {
        pair: outcome.pair_energy,
        embed: outcome.embed_energy,
        kinetic: kinetic_energy(&sim.lnl, &sim.interior, sim.mass),
        temperature: temperature(&sim.lnl, &sim.interior, sim.mass),
    }
}

/// Runs domain-decomposed MD on `ranks` ranks and returns per-rank
/// outputs (results + accounting).
pub fn run_parallel_md(
    world: &World,
    ranks: usize,
    params: &ParallelMdParams,
) -> Vec<RankOutput<RankMdSummary>> {
    let grid3 = CartGrid::for_ranks(ranks);
    let out = world.run(ranks, |comm| {
        let _rank_tag = mmds_telemetry::rank_scope(comm.rank() as u32);
        let mut md = params.md;
        md.seed = params.md.rank_seed(comm.rank());
        let grid = rank_grid(&md, params.global_cells, grid3, comm.rank());
        let mut sim = MdSimulation::from_grid(md, grid);
        sim.table_form = params.offload.form;
        sim.init_velocities();
        if let Some(e) = params.pka_energy {
            if comm.rank() == 0 {
                let g = sim.lnl.grid.ghost;
                let c = [
                    g + sim.lnl.grid.len[0] / 2,
                    g + sim.lnl.grid.len[1] / 2,
                    g + sim.lnl.grid.len[2] / 2,
                ];
                let pka = sim.lnl.grid.site_id(c[0], c[1], c[2], 0);
                launch_pka(&mut sim.lnl, pka, e, PKA_DIRECTION, sim.mass);
            }
        }
        let cluster = CpeCluster::new(SwModel::sw26010());
        let mut transport = CommTransport::new(comm, grid3);
        let mut last = StepSample::default();
        for step in 0..params.warmup_steps + params.steps {
            if step == params.warmup_steps {
                comm.reset_accounting();
            }
            last = offload_step(&mut sim, comm, &mut transport, &cluster, &params.offload);
            mmds_telemetry::emit_heartbeat(
                "md.heartbeat",
                step as u64 + 1,
                (params.warmup_steps + params.steps) as u64,
            );
        }
        comm.barrier();
        RankMdSummary {
            last,
            defects: count(&sim.lnl),
            n_atoms: sim.n_atoms(),
            cpe_time: comm.stats().compute_time,
        }
    });
    if mmds_telemetry::enabled() {
        for (rank, r) in out.iter().enumerate() {
            mmds_telemetry::absorb_comm_rank(rank as u32, &r.stats, Some(&r.matrix));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_swmpi::{MachineModel, WorldConfig};

    fn params(cells: usize, steps: usize) -> ParallelMdParams {
        ParallelMdParams {
            md: MdConfig {
                table_knots: 1000,
                temperature: 300.0,
                thermostat_tau: None,
                ..Default::default()
            },
            offload: OffloadConfig::optimized(),
            global_cells: [cells; 3],
            steps,
            warmup_steps: 0,
            pka_energy: None,
        }
    }

    #[test]
    fn two_ranks_match_single_rank_energy() {
        let world = World::new(WorldConfig {
            model: MachineModel::free(),
            ..Default::default()
        });
        let p = params(8, 3);
        let single = run_parallel_md(&world, 1, &p);
        let double = run_parallel_md(&world, 2, &p);
        let e1: f64 = single
            .iter()
            .map(|r| r.result.last.pair + r.result.last.embed)
            .sum();
        let e2: f64 = double
            .iter()
            .map(|r| r.result.last.pair + r.result.last.embed)
            .sum();
        // Different rank seeds give different velocities, but the cold
        // potential-energy surface is identical at step 0 scale; compare
        // a cold run instead for bit-level equality.
        let mut cold = p;
        cold.md.temperature = 0.0;
        let s1 = run_parallel_md(&world, 1, &cold);
        let s2 = run_parallel_md(&world, 2, &cold);
        let c1: f64 = s1
            .iter()
            .map(|r| r.result.last.pair + r.result.last.embed)
            .sum();
        let c2: f64 = s2
            .iter()
            .map(|r| r.result.last.pair + r.result.last.embed)
            .sum();
        assert!(
            (c1 - c2).abs() < 1e-6 * c1.abs().max(1.0),
            "cold energies differ: {c1} vs {c2}"
        );
        // Thermal runs at least conserve atom counts.
        let n1: usize = single.iter().map(|r| r.result.n_atoms).sum();
        let n2: usize = double.iter().map(|r| r.result.n_atoms).sum();
        assert_eq!(n1, n2);
        let _ = (e1, e2);
    }

    #[test]
    fn accounting_separates_compute_and_comm() {
        let world = World::default_world();
        let p = params(8, 2);
        let out = run_parallel_md(&world, 4, &p);
        for r in &out {
            assert!(r.stats.compute_time > 0.0, "compute time charged");
            assert!(r.stats.comm_time > 0.0, "comm time charged");
            assert!(r.stats.bytes_sent > 0, "ghost bytes counted");
        }
    }

    #[test]
    fn pka_makes_defects_somewhere() {
        let world = World::new(WorldConfig {
            model: MachineModel::free(),
            ..Default::default()
        });
        let mut p = params(8, 25);
        p.md.temperature = 50.0;
        p.md.thermostat_tau = Some(0.02);
        p.pka_energy = Some(150.0);
        let out = run_parallel_md(&world, 2, &p);
        let vac: usize = out.iter().map(|r| r.result.defects.vacancies).sum();
        assert!(vac > 0, "cascade should create vacancies");
    }
}
