//! Two-pass EAM evaluation over the lattice neighbor list.
//!
//! Pass 1 accumulates the electron density ρ_i (Eq. 3); the embedding
//! pass evaluates F(ρ_i) and its derivative; after the caller refreshes
//! ghost F' values, pass 2 accumulates forces from
//!
//! ```text
//! f_i = − Σ_j [ φ'(r_ij) + (F'(ρ_i) + F'(ρ_j)) · f'(r_ij) ] · r̂_ij
//! ```
//!
//! Every pass visits, for each central atom, the regular atoms at the
//! static neighbour offsets **and** the run-away atoms linked to those
//! lattice points (paper §2.1.1); a run-away central uses the offset
//! list of its anchor site, exactly as the paper specifies.

use mmds_eam::{EamPotential, TableForm};
use mmds_lattice::lnl::LatticeNeighborList;

/// Identifies the atom at the centre of a neighbour sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Central {
    /// A regular (on-lattice) atom stored at this site.
    Site(usize),
    /// A run-away atom by pool index.
    Runaway(u32),
}

/// One interaction partner seen from a central atom.
#[derive(Debug, Clone, Copy)]
pub struct Partner {
    /// `central_pos − partner_pos`.
    pub dx: [f64; 3],
    /// Distance (Å), guaranteed `0 < r ≤ cutoff`.
    pub r: f64,
    /// Partner's embedding derivative F'(ρ_j) (valid in the force pass).
    pub fp: f64,
    /// Storage site the partner lives at (its own site for regular
    /// atoms, the anchor site for run-aways). Used by the CPE offload
    /// kernel to decide whether the partner's data is local-store
    /// resident.
    pub site: usize,
    /// True if the partner is a run-away record.
    pub is_runaway: bool,
}

/// Pair and embedding energies of one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergySample {
    /// ½ Σ φ over owned centrals (eV).
    pub pair: f64,
    /// Σ F(ρ) over owned centrals (eV).
    pub embed: f64,
}

impl EnergySample {
    /// Total potential energy (eV).
    pub fn total(&self) -> f64 {
        self.pair + self.embed
    }
}

/// Visits every interaction partner of `central` within `cutoff`.
pub fn for_each_partner(
    l: &LatticeNeighborList,
    central: Central,
    cutoff: f64,
    mut f: impl FnMut(Partner),
) {
    let (anchor, cpos, skip) = match central {
        Central::Site(s) => {
            debug_assert!(l.id[s] >= 0, "central site {s} is a vacancy");
            (s, l.pos[s], None)
        }
        Central::Runaway(i) => {
            let r = l.runaway(i);
            (r.home as usize, r.pos, Some(i))
        }
    };
    let cut2 = cutoff * cutoff;
    let mut emit = |ppos: [f64; 3], pfp: f64, site: usize, is_runaway: bool| {
        let dx = [cpos[0] - ppos[0], cpos[1] - ppos[1], cpos[2] - ppos[2]];
        let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
        if r2 > 1e-12 && r2 <= cut2 {
            f(Partner {
                dx,
                r: r2.sqrt(),
                fp: pfp,
                site,
                is_runaway,
            });
        }
    };
    // The regular atom at the anchor site itself (relevant for run-away
    // centrals: interstitial/dumbbell configurations).
    if matches!(central, Central::Runaway(_)) && l.id[anchor] >= 0 {
        emit(l.pos[anchor], l.fp[anchor], anchor, false);
    }
    // Run-aways linked to the anchor.
    for (idx, rec) in l.chain(anchor) {
        if Some(idx) != skip {
            emit(rec.pos, rec.fp, anchor, true);
        }
    }
    // Static offsets: regular atoms and their linked run-aways.
    for &d in l.neighbor_deltas(anchor) {
        let nid = (anchor as isize + d) as usize;
        if l.id[nid] >= 0 {
            emit(l.pos[nid], l.fp[nid], nid, false);
        }
        for (_, rec) in l.chain(nid) {
            emit(rec.pos, rec.fp, nid, true);
        }
    }
}

/// Pass 1: electron densities for owned atoms and owned run-aways.
pub fn density_pass(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
) {
    let _span = mmds_telemetry::span!("md.density");
    let cutoff = pot.cutoff();
    let mut site_rho = Vec::with_capacity(interior.len());
    for &s in interior {
        if l.id[s] < 0 {
            site_rho.push(0.0);
            continue;
        }
        let mut rho = 0.0;
        for_each_partner(l, Central::Site(s), cutoff, |p| {
            rho += pot.density(form, p.r).0;
        });
        site_rho.push(rho);
    }
    for (&s, rho) in interior.iter().zip(site_rho) {
        l.rho[s] = rho;
    }
    let runaways = l.live_runaways();
    let mut ra_rho = Vec::with_capacity(runaways.len());
    for &i in &runaways {
        let mut rho = 0.0;
        for_each_partner(l, Central::Runaway(i), cutoff, |p| {
            rho += pot.density(form, p.r).0;
        });
        ra_rho.push(rho);
    }
    for (&i, rho) in runaways.iter().zip(ra_rho) {
        l.runaway_mut(i).rho = rho;
    }
}

/// Embedding pass: F'(ρ) for owned atoms/run-aways, returning Σ F(ρ).
pub fn embedding_pass(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
) -> f64 {
    let _span = mmds_telemetry::span!("md.embed");
    let mut e = 0.0;
    for &s in interior {
        if l.id[s] < 0 {
            l.fp[s] = 0.0;
            continue;
        }
        let (f_val, f_der) = pot.embed(form, l.rho[s]);
        e += f_val;
        l.fp[s] = f_der;
    }
    for i in l.live_runaways() {
        let rho = l.runaway(i).rho;
        let (f_val, f_der) = pot.embed(form, rho);
        e += f_val;
        l.runaway_mut(i).fp = f_der;
    }
    e
}

/// Pass 2: forces on owned atoms/run-aways, returning the pair energy.
/// Ghost F' values must be current (exchange between the passes).
pub fn force_pass(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
) -> f64 {
    let _span = mmds_telemetry::span!("md.pair");
    let cutoff = pot.cutoff();
    let mut pair_energy = 0.0;
    let mut site_force = Vec::with_capacity(interior.len());
    for &s in interior {
        if l.id[s] < 0 {
            site_force.push([0.0; 3]);
            continue;
        }
        let fp_c = l.fp[s];
        let mut fv = [0.0; 3];
        for_each_partner(l, Central::Site(s), cutoff, |p| {
            let (phi, dphi) = pot.pair(form, p.r);
            let (_, df) = pot.density(form, p.r);
            pair_energy += 0.5 * phi;
            let scale = -(dphi + (fp_c + p.fp) * df) / p.r;
            for ax in 0..3 {
                fv[ax] += scale * p.dx[ax];
            }
        });
        site_force.push(fv);
    }
    for (&s, fv) in interior.iter().zip(site_force) {
        l.force[s] = fv;
    }
    let runaways = l.live_runaways();
    let mut ra_force = Vec::with_capacity(runaways.len());
    for &i in &runaways {
        let fp_c = l.runaway(i).fp;
        let mut fv = [0.0; 3];
        for_each_partner(l, Central::Runaway(i), cutoff, |p| {
            let (phi, dphi) = pot.pair(form, p.r);
            let (_, df) = pot.density(form, p.r);
            pair_energy += 0.5 * phi;
            let scale = -(dphi + (fp_c + p.fp) * df) / p.r;
            for ax in 0..3 {
                fv[ax] += scale * p.dx[ax];
            }
        });
        ra_force.push(fv);
    }
    for (&i, fv) in runaways.iter().zip(ra_force) {
        l.runaway_mut(i).force = fv;
    }
    pair_energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_eam::analytic::Species;
    use mmds_eam::EamPotential;
    use mmds_lattice::{BccGeometry, LatticeNeighborList, LocalGrid};

    fn setup(n_cells: usize) -> (LatticeNeighborList, EamPotential, Vec<usize>) {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(n_cells), 2);
        let l = LatticeNeighborList::perfect(grid, 5.6);
        let pot = EamPotential::new(Species::Fe, 1500);
        let interior: Vec<usize> = l.grid.interior_ids().collect();
        (l, pot, interior)
    }

    /// Copies interior data onto the ghost shell (single-rank periodic
    /// images) — duplicated tiny helper; the real one lives in `domain`.
    fn mirror(l: &mut LatticeNeighborList) {
        let d = l.grid.dims();
        for k in 0..d[2] {
            for j in 0..d[1] {
                for i in 0..d[0] {
                    if l.grid.is_interior(i, j, k) {
                        continue;
                    }
                    let g = l.grid.global_cell(i, j, k);
                    let gh = l.grid.ghost;
                    let (si, sj, sk) = (g[0] + gh, g[1] + gh, g[2] + gh);
                    for b in 0..2 {
                        let dst = l.grid.site_id(i, j, k, b);
                        let src = l.grid.site_id(si, sj, sk, b);
                        let off = {
                            let a = l.grid.site_position(i, j, k, b);
                            let c = l.grid.site_position(si, sj, sk, b);
                            [a[0] - c[0], a[1] - c[1], a[2] - c[2]]
                        };
                        l.id[dst] = l.id[src];
                        let sp = l.pos[src];
                        l.pos[dst] = [sp[0] + off[0], sp[1] + off[1], sp[2] + off[2]];
                        l.rho[dst] = l.rho[src];
                        l.fp[dst] = l.fp[src];
                    }
                }
            }
        }
    }

    fn eval(l: &mut LatticeNeighborList, pot: &EamPotential, interior: &[usize]) -> EnergySample {
        mirror(l);
        density_pass(l, pot, TableForm::Compacted, interior);
        let embed = embedding_pass(l, pot, TableForm::Compacted, interior);
        mirror(l);
        let pair = force_pass(l, pot, TableForm::Compacted, interior);
        EnergySample { pair, embed }
    }

    #[test]
    fn perfect_lattice_forces_vanish() {
        let (mut l, pot, interior) = setup(5);
        let e = eval(&mut l, &pot, &interior);
        for &s in &interior {
            for ax in 0..3 {
                assert!(
                    l.force[s][ax].abs() < 1e-6,
                    "site {s} axis {ax}: {}",
                    l.force[s][ax]
                );
            }
        }
        // Cohesive energy per atom should be negative and of eV order.
        let per_atom = e.total() / interior.len() as f64;
        assert!(per_atom < -0.5 && per_atom > -20.0, "E/atom = {per_atom}");
    }

    #[test]
    fn displaced_atom_is_pulled_back() {
        let (mut l, pot, interior) = setup(5);
        let s = l.grid.site_id(4, 4, 4, 0);
        l.pos[s][0] += 0.25;
        eval(&mut l, &pot, &interior);
        assert!(
            l.force[s][0] < -0.05,
            "restoring force expected, got {}",
            l.force[s][0]
        );
        // And the other components stay symmetric (≈ 0).
        assert!(l.force[s][1].abs() < 1e-6);
        assert!(l.force[s][2].abs() < 1e-6);
    }

    #[test]
    fn newtons_third_law_on_dimer_displacement() {
        let (mut l, pot, interior) = setup(5);
        let s = l.grid.site_id(4, 4, 4, 0);
        l.pos[s] = [l.pos[s][0] + 0.15, l.pos[s][1] - 0.1, l.pos[s][2] + 0.05];
        eval(&mut l, &pot, &interior);
        // Total force over all atoms must vanish (translational invariance).
        let mut tot = [0.0; 3];
        for &x in &interior {
            for ax in 0..3 {
                tot[ax] += l.force[x][ax];
            }
        }
        for ax in 0..3 {
            assert!(tot[ax].abs() < 1e-6, "net force axis {ax}: {}", tot[ax]);
        }
    }

    #[test]
    fn force_matches_energy_gradient() {
        let (mut l, pot, interior) = setup(4);
        let s = l.grid.site_id(3, 3, 3, 1);
        l.pos[s][0] += 0.2;
        let h = 1e-5;
        l.pos[s][0] += h;
        let e_plus = eval(&mut l, &pot, &interior).total();
        l.pos[s][0] -= 2.0 * h;
        let e_minus = eval(&mut l, &pot, &interior).total();
        l.pos[s][0] += h;
        eval(&mut l, &pot, &interior);
        let numeric = -(e_plus - e_minus) / (2.0 * h);
        assert!(
            (l.force[s][0] - numeric).abs() < 1e-4,
            "analytic {} vs numeric {numeric}",
            l.force[s][0]
        );
    }

    #[test]
    fn runaway_participates_in_forces() {
        let (mut l, pot, interior) = setup(5);
        // Promote one atom to a run-away sitting between sites.
        let s = l.grid.site_id(4, 4, 4, 0);
        let id = l.make_vacancy(s);
        let lp = l.grid.site_position(4, 4, 4, 0);
        let idx = l.add_runaway(s, id, [lp[0] + 1.3, lp[1], lp[2]], [0.0; 3]);
        eval(&mut l, &pot, &interior);
        let f = l.runaway(idx).force;
        assert!(
            f.iter().any(|c| c.abs() > 1e-3),
            "run-away must feel a force: {f:?}"
        );
        // Its neighbours feel it too: the atom nearest to the run-away
        // gets pushed, breaking the perfect-lattice zero.
        let near = l.grid.site_id(4, 4, 4, 1);
        assert!(l.force[near].iter().any(|c| c.abs() > 1e-3));
    }

    #[test]
    fn vacancy_contributes_nothing() {
        let (mut l, pot, interior) = setup(5);
        let s = l.grid.site_id(4, 4, 4, 0);
        l.make_vacancy(s);
        eval(&mut l, &pot, &interior);
        assert_eq!(l.force[s], [0.0; 3]);
        assert_eq!(l.rho[s], 0.0);
        // Neighbours of the vacancy feel a net pull toward it... or push,
        // but in any case a nonzero force along the 1NN direction.
        let n = l.grid.site_id(4, 4, 4, 1);
        let fnorm: f64 = l.force[n].iter().map(|c| c * c).sum::<f64>().sqrt();
        assert!(fnorm > 1e-3, "|f| = {fnorm}");
    }

    #[test]
    fn table_forms_agree() {
        let (mut l, pot, interior) = setup(4);
        let s = l.grid.site_id(3, 3, 3, 0);
        l.pos[s][0] += 0.2;
        mirror(&mut l);
        density_pass(&mut l, &pot, TableForm::Compacted, &interior);
        let rho_c = l.rho[s];
        density_pass(&mut l, &pot, TableForm::Traditional, &interior);
        let rho_t = l.rho[s];
        assert!((rho_c - rho_t).abs() < 1e-6, "{rho_c} vs {rho_t}");
    }
}
