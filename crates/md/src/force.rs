//! Two-pass EAM evaluation over the lattice neighbor list.
//!
//! Pass 1 accumulates the electron density ρ_i (Eq. 3); the embedding
//! pass evaluates F(ρ_i) and its derivative; after the caller refreshes
//! ghost F' values, pass 2 accumulates forces from
//!
//! ```text
//! f_i = − Σ_j [ φ'(r_ij) + (F'(ρ_i) + F'(ρ_j)) · f'(r_ij) ] · r̂_ij
//! ```
//!
//! Every pass visits, for each central atom, the regular atoms at the
//! static neighbour offsets **and** the run-away atoms linked to those
//! lattice points (paper §2.1.1); a run-away central uses the offset
//! list of its anchor site, exactly as the paper specifies.

use mmds_eam::{EamPotential, TableForm};
use mmds_lattice::lnl::LatticeNeighborList;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sites per parallel work unit. Chunking is fixed (not derived from
/// the worker count), so the sweep decomposition — and therefore every
/// result bit — is identical at any thread count.
pub const PAR_CHUNK_SITES: usize = 256;

/// How the host-side EAM passes execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassConfig {
    /// Run the per-site sweeps as chunked multi-thread read-only maps
    /// over the neighbor list, with ordered write-back. Results are
    /// bitwise deterministic across thread counts: chunk boundaries are
    /// fixed, per-site work reads shared state only, and write-back and
    /// energy reduction happen in site order on the calling thread.
    pub parallel: bool,
    /// Use the fused single-locate [`EamPotential::pair_density`]
    /// lookup in the force pass (one table locate per partner) instead
    /// of independent `pair` + `density` calls (two locates).
    pub fused: bool,
}

impl Default for PassConfig {
    fn default() -> Self {
        Self {
            parallel: true,
            fused: true,
        }
    }
}

impl PassConfig {
    /// The pre-optimisation host path: serial sweeps, separate lookups.
    pub fn seed_serial() -> Self {
        Self {
            parallel: false,
            fused: false,
        }
    }
}

/// Maps `f` over `items`, either serially or as fixed-size chunks
/// distributed over the thread pool. The output order always matches
/// `items`, and each call of `f` is independent, so both strategies
/// produce identical bits. Public because read-only observability
/// sweeps (the defect census in [`crate::census`]) reuse the exact
/// decomposition of the force passes.
pub fn chunked_map<T, R, F>(items: &[T], parallel: bool, f: F) -> Vec<R>
where
    T: Copy + Send + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if !parallel || items.len() <= PAR_CHUNK_SITES {
        return items.iter().map(|&t| f(t)).collect();
    }
    let chunks: Vec<&[T]> = items.chunks(PAR_CHUNK_SITES).collect();
    let mapped: Vec<Vec<R>> = chunks
        .into_par_iter()
        .map(|c| c.iter().map(|&t| f(t)).collect())
        .collect();
    mapped.into_iter().flatten().collect()
}

/// Identifies the atom at the centre of a neighbour sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Central {
    /// A regular (on-lattice) atom stored at this site.
    Site(usize),
    /// A run-away atom by pool index.
    Runaway(u32),
}

/// One interaction partner seen from a central atom.
#[derive(Debug, Clone, Copy)]
pub struct Partner {
    /// `central_pos − partner_pos`.
    pub dx: [f64; 3],
    /// Distance (Å), guaranteed `0 < r ≤ cutoff`.
    pub r: f64,
    /// Partner's embedding derivative F'(ρ_j) (valid in the force pass).
    pub fp: f64,
    /// Storage site the partner lives at (its own site for regular
    /// atoms, the anchor site for run-aways). Used by the CPE offload
    /// kernel to decide whether the partner's data is local-store
    /// resident.
    pub site: usize,
    /// True if the partner is a run-away record.
    pub is_runaway: bool,
}

/// Pair and embedding energies of one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergySample {
    /// ½ Σ φ over owned centrals (eV).
    pub pair: f64,
    /// Σ F(ρ) over owned centrals (eV).
    pub embed: f64,
}

impl EnergySample {
    /// Total potential energy (eV).
    pub fn total(&self) -> f64 {
        self.pair + self.embed
    }
}

/// Visits every interaction partner of `central` within `cutoff`.
pub fn for_each_partner(
    l: &LatticeNeighborList,
    central: Central,
    cutoff: f64,
    mut f: impl FnMut(Partner),
) {
    let (anchor, cpos, skip) = match central {
        Central::Site(s) => {
            debug_assert!(l.id[s] >= 0, "central site {s} is a vacancy");
            (s, l.pos[s], None)
        }
        Central::Runaway(i) => {
            let r = l.runaway(i);
            (r.home as usize, r.pos, Some(i))
        }
    };
    let cut2 = cutoff * cutoff;
    let mut emit = |ppos: [f64; 3], pfp: f64, site: usize, is_runaway: bool| {
        let dx = [cpos[0] - ppos[0], cpos[1] - ppos[1], cpos[2] - ppos[2]];
        let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
        if r2 > 1e-12 && r2 <= cut2 {
            f(Partner {
                dx,
                r: r2.sqrt(),
                fp: pfp,
                site,
                is_runaway,
            });
        }
    };
    // The regular atom at the anchor site itself (relevant for run-away
    // centrals: interstitial/dumbbell configurations).
    if matches!(central, Central::Runaway(_)) && l.id[anchor] >= 0 {
        emit(l.pos[anchor], l.fp[anchor], anchor, false);
    }
    // Run-aways linked to the anchor.
    for (idx, rec) in l.chain(anchor) {
        if Some(idx) != skip {
            emit(rec.pos, rec.fp, anchor, true);
        }
    }
    // Static offsets: regular atoms and their linked run-aways.
    for &d in l.neighbor_deltas(anchor) {
        let nid = (anchor as isize + d) as usize;
        if l.id[nid] >= 0 {
            emit(l.pos[nid], l.fp[nid], nid, false);
        }
        for (_, rec) in l.chain(nid) {
            emit(rec.pos, rec.fp, nid, true);
        }
    }
}

/// Pass 1: electron densities for owned atoms and owned run-aways.
/// Defaults to the parallel, fused execution strategy.
pub fn density_pass(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
) {
    density_pass_with(l, pot, form, interior, PassConfig::default());
}

/// Pass 1 with an explicit execution strategy: a read-only sweep over
/// the neighbor list computing each central's ρ, then an ordered
/// write-back (the gather-then-write staging the serial code already
/// used, now safe to chunk across threads).
pub fn density_pass_with(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
    cfg: PassConfig,
) {
    let _span = mmds_telemetry::span!("md.density");
    let cutoff = pot.cutoff();
    let site_rho = chunked_map(interior, cfg.parallel, |s| {
        if l.id[s] < 0 {
            return 0.0;
        }
        let mut rho = 0.0;
        for_each_partner(l, Central::Site(s), cutoff, |p| {
            rho += pot.density(form, p.r).0;
        });
        rho
    });
    for (&s, rho) in interior.iter().zip(site_rho) {
        l.rho[s] = rho;
    }
    let runaways = l.live_runaways();
    let ra_rho = chunked_map(&runaways, cfg.parallel, |i| {
        let mut rho = 0.0;
        for_each_partner(l, Central::Runaway(i), cutoff, |p| {
            rho += pot.density(form, p.r).0;
        });
        rho
    });
    for (&i, rho) in runaways.iter().zip(ra_rho) {
        l.runaway_mut(i).rho = rho;
    }
}

/// Embedding pass: F'(ρ) for owned atoms/run-aways, returning Σ F(ρ).
/// Defaults to the parallel execution strategy.
pub fn embedding_pass(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
) -> f64 {
    embedding_pass_with(l, pot, form, interior, PassConfig::default())
}

/// Embedding pass with an explicit execution strategy. The Σ F(ρ)
/// reduction runs in site order on the calling thread, so the energy is
/// identical at any thread count.
pub fn embedding_pass_with(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
    cfg: PassConfig,
) -> f64 {
    let _span = mmds_telemetry::span!("md.embed");
    let site_embed = chunked_map(interior, cfg.parallel, |s| {
        if l.id[s] < 0 {
            return (0.0, 0.0);
        }
        pot.embed(form, l.rho[s])
    });
    let mut e = 0.0;
    for (&s, (f_val, f_der)) in interior.iter().zip(site_embed) {
        e += f_val;
        l.fp[s] = f_der;
    }
    let runaways = l.live_runaways();
    let ra_embed = chunked_map(&runaways, cfg.parallel, |i| {
        pot.embed(form, l.runaway(i).rho)
    });
    for (&i, (f_val, f_der)) in runaways.iter().zip(ra_embed) {
        e += f_val;
        l.runaway_mut(i).fp = f_der;
    }
    e
}

/// Accumulates one central's force and pair-energy contribution.
#[inline]
fn force_on_central(
    l: &LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    central: Central,
    cutoff: f64,
    fp_c: f64,
    fused: bool,
) -> ([f64; 3], f64) {
    let mut fv = [0.0; 3];
    let mut pair_e = 0.0;
    for_each_partner(l, central, cutoff, |p| {
        let (phi, dphi, df) = if fused {
            let (phi, dphi, _f, df) = pot.pair_density(form, p.r);
            (phi, dphi, df)
        } else {
            let (phi, dphi) = pot.pair(form, p.r);
            let (_, df) = pot.density(form, p.r);
            (phi, dphi, df)
        };
        pair_e += 0.5 * phi;
        let scale = -(dphi + (fp_c + p.fp) * df) / p.r;
        for ax in 0..3 {
            fv[ax] += scale * p.dx[ax];
        }
    });
    (fv, pair_e)
}

/// Pass 2: forces on owned atoms/run-aways, returning the pair energy.
/// Ghost F' values must be current (exchange between the passes).
/// Defaults to the parallel, fused execution strategy.
pub fn force_pass(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
) -> f64 {
    force_pass_with(l, pot, form, interior, PassConfig::default())
}

/// Pass 2 with an explicit execution strategy. Each central's force and
/// pair-energy contribution are computed in a read-only sweep; the
/// write-back and the ½Σφ reduction run in site order on the calling
/// thread, keeping both bitwise deterministic across thread counts.
pub fn force_pass_with(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
    cfg: PassConfig,
) -> f64 {
    let _span = mmds_telemetry::span!("md.pair");
    let cutoff = pot.cutoff();
    let site_force = chunked_map(interior, cfg.parallel, |s| {
        if l.id[s] < 0 {
            return ([0.0; 3], 0.0);
        }
        force_on_central(l, pot, form, Central::Site(s), cutoff, l.fp[s], cfg.fused)
    });
    let mut pair_energy = 0.0;
    for (&s, (fv, pe)) in interior.iter().zip(site_force) {
        l.force[s] = fv;
        pair_energy += pe;
    }
    let runaways = l.live_runaways();
    let ra_force = chunked_map(&runaways, cfg.parallel, |i| {
        let fp_c = l.runaway(i).fp;
        force_on_central(l, pot, form, Central::Runaway(i), cutoff, fp_c, cfg.fused)
    });
    for (&i, (fv, pe)) in runaways.iter().zip(ra_force) {
        l.runaway_mut(i).force = fv;
        pair_energy += pe;
    }
    pair_energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_eam::analytic::Species;
    use mmds_eam::EamPotential;
    use mmds_lattice::{BccGeometry, LatticeNeighborList, LocalGrid};

    fn setup(n_cells: usize) -> (LatticeNeighborList, EamPotential, Vec<usize>) {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(n_cells), 2);
        let l = LatticeNeighborList::perfect(grid, 5.6);
        let pot = EamPotential::new(Species::Fe, 1500);
        let interior: Vec<usize> = l.grid.interior_ids().collect();
        (l, pot, interior)
    }

    use crate::domain::fill_periodic_ghosts;

    fn eval(l: &mut LatticeNeighborList, pot: &EamPotential, interior: &[usize]) -> EnergySample {
        fill_periodic_ghosts(l);
        density_pass(l, pot, TableForm::Compacted, interior);
        let embed = embedding_pass(l, pot, TableForm::Compacted, interior);
        fill_periodic_ghosts(l);
        let pair = force_pass(l, pot, TableForm::Compacted, interior);
        EnergySample { pair, embed }
    }

    #[test]
    fn perfect_lattice_forces_vanish() {
        let (mut l, pot, interior) = setup(5);
        let e = eval(&mut l, &pot, &interior);
        for &s in &interior {
            for ax in 0..3 {
                assert!(
                    l.force[s][ax].abs() < 1e-6,
                    "site {s} axis {ax}: {}",
                    l.force[s][ax]
                );
            }
        }
        // Cohesive energy per atom should be negative and of eV order.
        let per_atom = e.total() / interior.len() as f64;
        assert!(per_atom < -0.5 && per_atom > -20.0, "E/atom = {per_atom}");
    }

    #[test]
    fn displaced_atom_is_pulled_back() {
        let (mut l, pot, interior) = setup(5);
        let s = l.grid.site_id(4, 4, 4, 0);
        l.pos[s][0] += 0.25;
        eval(&mut l, &pot, &interior);
        assert!(
            l.force[s][0] < -0.05,
            "restoring force expected, got {}",
            l.force[s][0]
        );
        // And the other components stay symmetric (≈ 0).
        assert!(l.force[s][1].abs() < 1e-6);
        assert!(l.force[s][2].abs() < 1e-6);
    }

    #[test]
    fn newtons_third_law_on_dimer_displacement() {
        let (mut l, pot, interior) = setup(5);
        let s = l.grid.site_id(4, 4, 4, 0);
        l.pos[s] = [l.pos[s][0] + 0.15, l.pos[s][1] - 0.1, l.pos[s][2] + 0.05];
        eval(&mut l, &pot, &interior);
        // Total force over all atoms must vanish (translational invariance).
        let mut tot = [0.0; 3];
        for &x in &interior {
            for ax in 0..3 {
                tot[ax] += l.force[x][ax];
            }
        }
        for ax in 0..3 {
            assert!(tot[ax].abs() < 1e-6, "net force axis {ax}: {}", tot[ax]);
        }
    }

    #[test]
    fn force_matches_energy_gradient() {
        let (mut l, pot, interior) = setup(4);
        let s = l.grid.site_id(3, 3, 3, 1);
        l.pos[s][0] += 0.2;
        let h = 1e-5;
        l.pos[s][0] += h;
        let e_plus = eval(&mut l, &pot, &interior).total();
        l.pos[s][0] -= 2.0 * h;
        let e_minus = eval(&mut l, &pot, &interior).total();
        l.pos[s][0] += h;
        eval(&mut l, &pot, &interior);
        let numeric = -(e_plus - e_minus) / (2.0 * h);
        assert!(
            (l.force[s][0] - numeric).abs() < 1e-4,
            "analytic {} vs numeric {numeric}",
            l.force[s][0]
        );
    }

    #[test]
    fn runaway_participates_in_forces() {
        let (mut l, pot, interior) = setup(5);
        // Promote one atom to a run-away sitting between sites.
        let s = l.grid.site_id(4, 4, 4, 0);
        let id = l.make_vacancy(s);
        let lp = l.grid.site_position(4, 4, 4, 0);
        let idx = l.add_runaway(s, id, [lp[0] + 1.3, lp[1], lp[2]], [0.0; 3]);
        eval(&mut l, &pot, &interior);
        let f = l.runaway(idx).force;
        assert!(
            f.iter().any(|c| c.abs() > 1e-3),
            "run-away must feel a force: {f:?}"
        );
        // Its neighbours feel it too: the atom nearest to the run-away
        // gets pushed, breaking the perfect-lattice zero.
        let near = l.grid.site_id(4, 4, 4, 1);
        assert!(l.force[near].iter().any(|c| c.abs() > 1e-3));
    }

    #[test]
    fn vacancy_contributes_nothing() {
        let (mut l, pot, interior) = setup(5);
        let s = l.grid.site_id(4, 4, 4, 0);
        l.make_vacancy(s);
        eval(&mut l, &pot, &interior);
        assert_eq!(l.force[s], [0.0; 3]);
        assert_eq!(l.rho[s], 0.0);
        // Neighbours of the vacancy feel a net pull toward it... or push,
        // but in any case a nonzero force along the 1NN direction.
        let n = l.grid.site_id(4, 4, 4, 1);
        let fnorm: f64 = l.force[n].iter().map(|c| c * c).sum::<f64>().sqrt();
        assert!(fnorm > 1e-3, "|f| = {fnorm}");
    }

    #[test]
    fn serial_unfused_and_parallel_fused_agree_bitwise() {
        // The old (seed) path — serial sweeps, separate pair/density
        // lookups — and the new default — chunked parallel sweeps,
        // fused single-locate lookup — must produce identical bits.
        let run = |cfg: PassConfig| {
            let (mut l, pot, interior) = setup(5);
            let s = l.grid.site_id(4, 4, 4, 0);
            l.pos[s] = [l.pos[s][0] + 0.21, l.pos[s][1] - 0.13, l.pos[s][2] + 0.07];
            fill_periodic_ghosts(&mut l);
            density_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            let e = embedding_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            fill_periodic_ghosts(&mut l);
            let pair = force_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            (l.rho, l.force, e, pair)
        };
        let old = run(PassConfig::seed_serial());
        let new = run(PassConfig::default());
        assert_eq!(old.0, new.0, "rho arrays differ");
        assert_eq!(old.1, new.1, "force arrays differ");
        assert_eq!(old.2, new.2, "embedding energy differs");
        assert_eq!(old.3, new.3, "pair energy differs");
    }

    #[test]
    fn table_forms_agree() {
        let (mut l, pot, interior) = setup(4);
        let s = l.grid.site_id(3, 3, 3, 0);
        l.pos[s][0] += 0.2;
        fill_periodic_ghosts(&mut l);
        density_pass(&mut l, &pot, TableForm::Compacted, &interior);
        let rho_c = l.rho[s];
        density_pass(&mut l, &pot, TableForm::Traditional, &interior);
        let rho_t = l.rho[s];
        assert!((rho_c - rho_t).abs() < 1e-6, "{rho_c} vs {rho_t}");
    }
}
