//! Two-pass EAM evaluation over the lattice neighbor list.
//!
//! Pass 1 accumulates the electron density ρ_i (Eq. 3); the embedding
//! pass evaluates F(ρ_i) and its derivative; after the caller refreshes
//! ghost F' values, pass 2 accumulates forces from
//!
//! ```text
//! f_i = − Σ_j [ φ'(r_ij) + (F'(ρ_i) + F'(ρ_j)) · f'(r_ij) ] · r̂_ij
//! ```
//!
//! Every pass visits, for each central atom, the regular atoms at the
//! static neighbour offsets **and** the run-away atoms linked to those
//! lattice points (paper §2.1.1); a run-away central uses the offset
//! list of its anchor site, exactly as the paper specifies.

use mmds_eam::{EamPotential, TableForm};
use mmds_lattice::lnl::LatticeNeighborList;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sites per parallel work unit. Chunking is fixed (not derived from
/// the worker count), so the sweep decomposition — and therefore every
/// result bit — is identical at any thread count.
pub const PAR_CHUNK_SITES: usize = 256;

/// Capacity of the per-central SoA gather buffers used by the batched
/// passes — four [`mmds_eam::BATCH_LANES`]-wide lane groups. A BCC
/// central within the paper's 5 Å cutoff sees ~58 partners, so most
/// centrals flush once full plus one partial buffer; the buffers stay
/// small enough to live on the stack host-side and inside the 64 KB
/// local-store plan on the CPE side (see `md::offload`).
pub const BATCH_GATHER_CAP: usize = 4 * mmds_eam::BATCH_LANES;

/// How the host-side EAM passes execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassConfig {
    /// Run the per-site sweeps as chunked multi-thread read-only maps
    /// over the neighbor list, with ordered write-back. Results are
    /// bitwise deterministic across thread counts: chunk boundaries are
    /// fixed, per-site work reads shared state only, and write-back and
    /// energy reduction happen in site order on the calling thread.
    pub parallel: bool,
    /// Use the fused single-locate [`EamPotential::pair_density`]
    /// lookup in the force pass (one table locate per partner) instead
    /// of independent `pair` + `density` calls (two locates).
    pub fused: bool,
    /// Gather each central's partner contributions into contiguous SoA
    /// buffers (r and displacement components in separate arrays) and
    /// evaluate the table kernels a [`mmds_eam::BATCH_LANES`]-wide lane
    /// group at a time ([`EamPotential::pair_density_batch`] /
    /// [`EamPotential::density_values_batch`]), with a scalar tail.
    /// Accumulation stays in partner order and every lane replays the
    /// scalar op sequence, so results are bitwise identical to the
    /// unbatched sweep. The batched force pass always uses the fused
    /// single-locate lookup (itself bitwise-identical to separate
    /// lookups), so `fused` has no further effect when this is set.
    pub batched: bool,
}

impl Default for PassConfig {
    fn default() -> Self {
        Self {
            parallel: true,
            fused: true,
            batched: true,
        }
    }
}

impl PassConfig {
    /// The pre-optimisation host path: serial sweeps, separate lookups.
    pub fn seed_serial() -> Self {
        Self {
            parallel: false,
            fused: false,
            batched: false,
        }
    }
}

/// Per-pass statistics of the batched gather/eval path, summed in site
/// order on the calling thread and emitted as the `md.batch.*` counter
/// family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Full [`mmds_eam::BATCH_LANES`]-wide lane groups evaluated.
    pub batches: u64,
    /// Elements handled by the scalar tail loops.
    pub tail_elems: u64,
    /// Bytes staged into the SoA gather buffers.
    pub gather_bytes: u64,
}

impl BatchStats {
    /// Accounts one buffer flush of `elems` elements, each staging
    /// `bytes_per_elem` bytes of SoA data.
    fn charge(&mut self, elems: usize, bytes_per_elem: usize) {
        self.batches += (elems / mmds_eam::BATCH_LANES) as u64;
        self.tail_elems += (elems % mmds_eam::BATCH_LANES) as u64;
        self.gather_bytes += (elems * bytes_per_elem) as u64;
    }

    fn absorb(&mut self, o: BatchStats) {
        self.batches += o.batches;
        self.tail_elems += o.tail_elems;
        self.gather_bytes += o.gather_bytes;
    }

    fn emit(&self) {
        mmds_telemetry::add_counter("md.batch.batches", self.batches as f64);
        mmds_telemetry::add_counter("md.batch.tail_elems", self.tail_elems as f64);
        mmds_telemetry::add_counter("md.batch.gather_bytes", self.gather_bytes as f64);
    }
}

/// Maps `f` over `items`, either serially or as fixed-size chunks
/// distributed over the thread pool. The output order always matches
/// `items`, and each call of `f` is independent, so both strategies
/// produce identical bits. Public because read-only observability
/// sweeps (the defect census in [`crate::census`]) reuse the exact
/// decomposition of the force passes.
pub fn chunked_map<T, R, F>(items: &[T], parallel: bool, f: F) -> Vec<R>
where
    T: Copy + Send + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if !parallel || items.len() <= PAR_CHUNK_SITES {
        return items.iter().map(|&t| f(t)).collect();
    }
    let chunks: Vec<&[T]> = items.chunks(PAR_CHUNK_SITES).collect();
    let mapped: Vec<Vec<R>> = chunks
        .into_par_iter()
        .map(|c| c.iter().map(|&t| f(t)).collect())
        .collect();
    mapped.into_iter().flatten().collect()
}

/// Identifies the atom at the centre of a neighbour sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Central {
    /// A regular (on-lattice) atom stored at this site.
    Site(usize),
    /// A run-away atom by pool index.
    Runaway(u32),
}

/// One interaction partner seen from a central atom.
#[derive(Debug, Clone, Copy)]
pub struct Partner {
    /// `central_pos − partner_pos`.
    pub dx: [f64; 3],
    /// Distance (Å), guaranteed `0 < r ≤ cutoff`.
    pub r: f64,
    /// Partner's embedding derivative F'(ρ_j) (valid in the force pass).
    pub fp: f64,
    /// Storage site the partner lives at (its own site for regular
    /// atoms, the anchor site for run-aways). Used by the CPE offload
    /// kernel to decide whether the partner's data is local-store
    /// resident.
    pub site: usize,
    /// True if the partner is a run-away record.
    pub is_runaway: bool,
}

/// Pair and embedding energies of one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergySample {
    /// ½ Σ φ over owned centrals (eV).
    pub pair: f64,
    /// Σ F(ρ) over owned centrals (eV).
    pub embed: f64,
}

impl EnergySample {
    /// Total potential energy (eV).
    pub fn total(&self) -> f64 {
        self.pair + self.embed
    }
}

/// One interaction partner as seen *before* the distance square root —
/// what the batched passes stage, so the `sqrt` itself runs as a
/// vectorizable lane loop inside the batch flush instead of one scalar
/// root per partner. `r2.sqrt()` is correctly rounded, so computing it
/// in the batch produces the identical bits the scalar
/// [`for_each_partner`] sweep sees.
#[derive(Debug, Clone, Copy)]
pub struct PartnerSq {
    /// `central_pos − partner_pos`.
    pub dx: [f64; 3],
    /// Squared distance (Å²), guaranteed `0 < r² ≤ cutoff²`.
    pub r2: f64,
    /// Partner's embedding derivative F'(ρ_j) (valid in the force pass).
    pub fp: f64,
    /// Storage site the partner lives at.
    pub site: usize,
    /// True if the partner is a run-away record.
    pub is_runaway: bool,
    /// Run-away pool index when `is_runaway` (`u32::MAX` otherwise).
    /// Lets the gather plan re-fetch the partner's F' in the force pass
    /// without re-walking the chain.
    pub ra_index: u32,
}

/// Visits every interaction partner of `central` within `cutoff`,
/// before the distance square root ([`PartnerSq`]).
pub fn for_each_partner_sq(
    l: &LatticeNeighborList,
    central: Central,
    cutoff: f64,
    f: impl FnMut(PartnerSq),
) {
    partner_sweep::<true>(l, central, cutoff, f);
}

/// The partner sweep, monomorphized over whether the partners' F'
/// values are read. The plan-building density pass runs with
/// `NEED_FP = false`: F' isn't valid until after the embedding pass, so
/// skipping the load keeps a whole per-site array out of the sweep's
/// cache footprint (`PartnerSq::fp` is 0 in that mode).
fn partner_sweep<const NEED_FP: bool>(
    l: &LatticeNeighborList,
    central: Central,
    cutoff: f64,
    mut f: impl FnMut(PartnerSq),
) {
    let (anchor, cpos, skip) = match central {
        Central::Site(s) => {
            debug_assert!(l.id[s] >= 0, "central site {s} is a vacancy");
            (s, l.pos[s], None)
        }
        Central::Runaway(i) => {
            let r = l.runaway(i);
            (r.home as usize, r.pos, Some(i))
        }
    };
    let cut2 = cutoff * cutoff;
    let mut emit = |ppos: [f64; 3], pfp: f64, site: usize, ra_index: u32| {
        let dx = [cpos[0] - ppos[0], cpos[1] - ppos[1], cpos[2] - ppos[2]];
        let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
        if r2 > 1e-12 && r2 <= cut2 {
            f(PartnerSq {
                dx,
                r2,
                fp: pfp,
                site,
                is_runaway: ra_index != u32::MAX,
                ra_index,
            });
        }
    };
    let site_fp = |s: usize| if NEED_FP { l.fp[s] } else { 0.0 };
    // The regular atom at the anchor site itself (relevant for run-away
    // centrals: interstitial/dumbbell configurations).
    if matches!(central, Central::Runaway(_)) && l.id[anchor] >= 0 {
        emit(l.pos[anchor], site_fp(anchor), anchor, u32::MAX);
    }
    // Run-aways linked to the anchor.
    for (idx, rec) in l.chain(anchor) {
        if Some(idx) != skip {
            emit(rec.pos, if NEED_FP { rec.fp } else { 0.0 }, anchor, idx);
        }
    }
    // Static offsets: regular atoms and their linked run-aways.
    for &d in l.neighbor_deltas(anchor) {
        let nid = (anchor as isize + d) as usize;
        if l.id[nid] >= 0 {
            emit(l.pos[nid], site_fp(nid), nid, u32::MAX);
        }
        for (idx, rec) in l.chain(nid) {
            emit(rec.pos, if NEED_FP { rec.fp } else { 0.0 }, nid, idx);
        }
    }
}

/// Visits every interaction partner of `central` within `cutoff`.
pub fn for_each_partner(
    l: &LatticeNeighborList,
    central: Central,
    cutoff: f64,
    mut f: impl FnMut(Partner),
) {
    for_each_partner_sq(l, central, cutoff, |p| {
        f(Partner {
            dx: p.dx,
            r: p.r2.sqrt(),
            fp: p.fp,
            site: p.site,
            is_runaway: p.is_runaway,
        })
    });
}

/// Batched ρ accumulation for one central: partner distances are
/// gathered into a contiguous buffer and evaluated through the
/// value-only SoA batch kernel. Only `r` is staged (8 B per partner) —
/// the density pass never reads the displacement. Accumulation stays
/// in partner order and the batch kernel replays the scalar op
/// sequence per lane, so ρ is bitwise identical to the scalar sweep.
fn density_on_central_batched(
    l: &LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    central: Central,
    cutoff: f64,
) -> (f64, BatchStats) {
    let mut r2s = [0.0; BATCH_GATHER_CAP];
    let mut rs = [0.0; BATCH_GATHER_CAP];
    let mut vals = [0.0; BATCH_GATHER_CAP];
    let mut len = 0usize;
    let mut rho = 0.0;
    let mut stats = BatchStats::default();
    let flush = |r2s: &[f64], rs: &mut [f64], vals: &mut [f64], rho: &mut f64| {
        // The deferred square roots, as one vectorizable lane loop.
        for (r, &r2) in rs.iter_mut().zip(r2s) {
            *r = r2.sqrt();
        }
        pot.density_values_batch(form, rs, vals);
        for &v in vals.iter() {
            *rho += v;
        }
    };
    for_each_partner_sq(l, central, cutoff, |p| {
        r2s[len] = p.r2;
        len += 1;
        if len == BATCH_GATHER_CAP {
            flush(&r2s, &mut rs, &mut vals, &mut rho);
            stats.charge(BATCH_GATHER_CAP, 8);
            len = 0;
        }
    });
    flush(&r2s[..len], &mut rs[..len], &mut vals[..len], &mut rho);
    stats.charge(len, 8);
    (rho, stats)
}

/// The per-step SoA gather plan: the density pass runs each central's
/// neighbour sweep through the **fused** batch lookup and stages
/// everything the force pass will need — partner displacements, r,
/// φ'(r), f'(r), a partner reference for the deferred F' fetch, and the
/// per-central ½Σφ — so the force pass does **no neighbour traversal
/// and no table evaluation at all**.
///
/// Validity: between the two passes only the embedding pass and the F'
/// ghost exchange run ([`crate::MdSimulation::compute_forces`]) —
/// positions, site occupancy, and run-away chains are structurally
/// frozen (`domain::unpack_slab` asserts the ghost chains don't drift
/// between phases), so the partner set, its traversal order, and every
/// staged value are exactly what a fresh force sweep would produce.
/// Only the partners' F' values change between the passes, which is why
/// the plan stores a partner *reference* (`pref`) instead of F' itself.
///
/// Bitwise identity: φ, φ', f, f' are pure functions of r, and the
/// fused lookup replays the op sequence of the separate lookups, so
/// evaluating them during the density pass produces exactly the bits
/// the scalar force sweep would compute; the per-central ½Σφ and the
/// force accumulation replay the scalar accumulation order unchanged.
///
/// Central order matches the pass order: one entry per interior site
/// (vacancies hold an empty range) followed by one per live run-away.
#[derive(Debug, Clone, Default)]
pub struct GatherPlan {
    dx: Vec<f64>,
    dy: Vec<f64>,
    dz: Vec<f64>,
    /// Partner distance r (the density pass's lane square roots).
    r: Vec<f64>,
    /// φ'(r) from the fused batch lookup.
    dphi: Vec<f64>,
    /// f'(r) from the fused batch lookup.
    df: Vec<f64>,
    /// Partner reference for the deferred F' fetch: the storage site as
    /// a non-negative value for regular atoms, `-(pool_index + 1)` for
    /// run-away records.
    pref: Vec<i64>,
    /// Per-central ½Σφ, accumulated in partner order.
    pair_e: Vec<f64>,
    /// `offsets[c]..offsets[c + 1]` is central `c`'s partner range.
    offsets: Vec<u32>,
}

impl GatherPlan {
    /// Drops all staged data (capacity is retained across steps).
    fn clear(&mut self) {
        self.dx.clear();
        self.dy.clear();
        self.dz.clear();
        self.r.clear();
        self.dphi.clear();
        self.df.clear();
        self.pref.clear();
        self.pair_e.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// True when no pass has staged anything into the plan.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() <= 1
    }

    /// Number of centrals staged.
    fn centrals(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Bulk-appends one work chunk's staged SoA data.
    fn append_chunk(&mut self, c: &DensityChunk) {
        self.dx.extend_from_slice(&c.dx);
        self.dy.extend_from_slice(&c.dy);
        self.dz.extend_from_slice(&c.dz);
        self.r.extend_from_slice(&c.r);
        self.dphi.extend_from_slice(&c.dphi);
        self.df.extend_from_slice(&c.df);
        self.pref.extend_from_slice(&c.pref);
        self.pair_e.extend_from_slice(&c.pair_es);
        let mut end = *self.offsets.last().expect("offsets seeded by clear()");
        for &n in &c.counts {
            end += n;
            self.offsets.push(end);
        }
    }

    /// Central `c`'s partner range.
    fn range(&self, c: usize) -> std::ops::Range<usize> {
        self.offsets[c] as usize..self.offsets[c + 1] as usize
    }
}

/// One parallel work chunk's output of the plan-building density pass:
/// the chunk's centrals' staged partner data in SoA layout plus their ρ
/// and ½Σφ values, concatenated into the [`GatherPlan`] in chunk order
/// on the calling thread.
struct DensityChunk {
    rhos: Vec<f64>,
    pair_es: Vec<f64>,
    counts: Vec<u32>,
    dx: Vec<f64>,
    dy: Vec<f64>,
    dz: Vec<f64>,
    r: Vec<f64>,
    dphi: Vec<f64>,
    df: Vec<f64>,
    pref: Vec<i64>,
    stats: BatchStats,
}

/// Maps `f` over fixed-size chunks of `items`, serially or across the
/// thread pool. The chunk decomposition matches [`chunked_map`], so the
/// output concatenation — and every result bit — is independent of the
/// thread count.
fn map_chunks<T, R, F>(items: &[T], parallel: bool, f: F) -> Vec<R>
where
    T: Copy + Send + Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if !parallel || items.len() <= PAR_CHUNK_SITES {
        return items.chunks(PAR_CHUNK_SITES).map(f).collect();
    }
    let chunks: Vec<&[T]> = items.chunks(PAR_CHUNK_SITES).collect();
    chunks.into_par_iter().map(&f).collect()
}

/// Runs the plan-building density sweep for one work chunk: partners
/// are staged straight into the chunk's SoA buffers (one allocation set
/// per chunk, not per central), then each central's staged range goes
/// through the lane square roots and the **fused** batch lookup in
/// [`BATCH_GATHER_CAP`] chunks — identical chunk boundaries and op
/// sequence to [`force_on_central_batched`]'s flushes, so every staged
/// φ', f' and the accumulated ρ and ½Σφ match the scalar sweeps bit for
/// bit. φ' and f' land in the chunk's SoA arrays for the force pass to
/// replay; φ and f are folded into ½Σφ and ρ on the spot.
fn density_chunk_plan<T: Copy>(
    l: &LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    cutoff: f64,
    items: &[T],
    as_central: impl Fn(T) -> Option<Central>,
) -> DensityChunk {
    let cap = items.len() * 64;
    let mut c = DensityChunk {
        rhos: Vec::with_capacity(items.len()),
        pair_es: Vec::with_capacity(items.len()),
        counts: Vec::with_capacity(items.len()),
        dx: Vec::with_capacity(cap),
        dy: Vec::with_capacity(cap),
        dz: Vec::with_capacity(cap),
        r: Vec::with_capacity(cap),
        dphi: Vec::with_capacity(cap),
        df: Vec::with_capacity(cap),
        pref: Vec::with_capacity(cap),
        stats: BatchStats::default(),
    };
    let mut phi = [0.0; BATCH_GATHER_CAP];
    let mut fval = [0.0; BATCH_GATHER_CAP];
    for &item in items {
        let Some(central) = as_central(item) else {
            c.rhos.push(0.0);
            c.pair_es.push(0.0);
            c.counts.push(0);
            continue;
        };
        let start = c.r.len();
        partner_sweep::<false>(l, central, cutoff, |p| {
            // `r` temporarily holds r²; the lane loop below replaces it
            // with the square root.
            c.r.push(p.r2);
            c.dx.push(p.dx[0]);
            c.dy.push(p.dx[1]);
            c.dz.push(p.dx[2]);
            c.pref.push(if p.is_runaway {
                -(p.ra_index as i64) - 1
            } else {
                p.site as i64
            });
        });
        let n = c.r.len() - start;
        c.dphi.resize(start + n, 0.0);
        c.df.resize(start + n, 0.0);
        let mut rho = 0.0;
        let mut pair_e = 0.0;
        let mut at = start;
        while at < start + n {
            let len = (start + n - at).min(BATCH_GATHER_CAP);
            // The deferred square roots, as one vectorizable lane loop.
            for r in c.r[at..at + len].iter_mut() {
                *r = r.sqrt();
            }
            pot.pair_density_batch(
                form,
                &c.r[at..at + len],
                &mut phi[..len],
                &mut c.dphi[at..at + len],
                &mut fval[..len],
                &mut c.df[at..at + len],
            );
            for k in 0..len {
                rho += fval[k];
                pair_e += 0.5 * phi[k];
            }
            at += len;
        }
        c.rhos.push(rho);
        c.pair_es.push(pair_e);
        c.counts.push(n as u32);
        // The plan stages the three displacement components, r, φ', f'
        // and the partner reference: 56 B per partner.
        c.stats.charge(n, 56);
    }
    c
}

/// Pass 1: electron densities for owned atoms and owned run-aways.
/// Defaults to the parallel, fused execution strategy.
pub fn density_pass(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
) {
    density_pass_with(l, pot, form, interior, PassConfig::default());
}

/// Pass 1 with an explicit execution strategy: a read-only sweep over
/// the neighbor list computing each central's ρ, then an ordered
/// write-back (the gather-then-write staging the serial code already
/// used, now safe to chunk across threads).
pub fn density_pass_with(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
    cfg: PassConfig,
) {
    let _span = mmds_telemetry::span!("md.density");
    let cutoff = pot.cutoff();
    let density_of = |l: &LatticeNeighborList, central: Central| {
        if cfg.batched {
            density_on_central_batched(l, pot, form, central, cutoff)
        } else {
            let mut rho = 0.0;
            for_each_partner(l, central, cutoff, |p| {
                rho += pot.density(form, p.r).0;
            });
            (rho, BatchStats::default())
        }
    };
    let site_rho = chunked_map(interior, cfg.parallel, |s| {
        if l.id[s] < 0 {
            return (0.0, BatchStats::default());
        }
        density_of(l, Central::Site(s))
    });
    let mut stats = BatchStats::default();
    for (&s, (rho, st)) in interior.iter().zip(site_rho) {
        l.rho[s] = rho;
        stats.absorb(st);
    }
    let runaways = l.live_runaways();
    let ra_rho = chunked_map(&runaways, cfg.parallel, |i| {
        density_of(l, Central::Runaway(i))
    });
    for (&i, (rho, st)) in runaways.iter().zip(ra_rho) {
        l.runaway_mut(i).rho = rho;
        stats.absorb(st);
    }
    if cfg.batched {
        stats.emit();
    }
}

/// Pass 1, building the per-step [`GatherPlan`] as a side effect: each
/// central's partner sweep is staged into SoA records, ρ is evaluated
/// from the staged records through the batch kernels, and the records
/// are concatenated (in central order) into `plan` for the force pass
/// to replay. Falls back to [`density_pass_with`] (clearing the plan)
/// when the batched path is disabled.
pub fn density_pass_plan(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
    cfg: PassConfig,
    plan: &mut GatherPlan,
) {
    plan.clear();
    if !cfg.batched {
        return density_pass_with(l, pot, form, interior, cfg);
    }
    let _span = mmds_telemetry::span!("md.density");
    let cutoff = pot.cutoff();
    let site_chunks = map_chunks(interior, cfg.parallel, |sites| {
        density_chunk_plan(l, pot, form, cutoff, sites, |s| {
            (l.id[s] >= 0).then_some(Central::Site(s))
        })
    });
    let mut stats = BatchStats::default();
    let mut sites = interior.iter();
    for c in &site_chunks {
        for (&s, &rho) in sites.by_ref().zip(&c.rhos) {
            l.rho[s] = rho;
        }
        plan.append_chunk(c);
        stats.absorb(c.stats);
    }
    let runaways = l.live_runaways();
    let ra_chunks = map_chunks(&runaways, cfg.parallel, |ras| {
        density_chunk_plan(l, pot, form, cutoff, ras, |i| Some(Central::Runaway(i)))
    });
    let mut ras = runaways.iter();
    for c in &ra_chunks {
        for (&i, &rho) in ras.by_ref().zip(&c.rhos) {
            l.runaway_mut(i).rho = rho;
        }
        plan.append_chunk(c);
        stats.absorb(c.stats);
    }
    stats.emit();
}

/// Embedding pass: F'(ρ) for owned atoms/run-aways, returning Σ F(ρ).
/// Defaults to the parallel execution strategy.
pub fn embedding_pass(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
) -> f64 {
    embedding_pass_with(l, pot, form, interior, PassConfig::default())
}

/// Embedding pass with an explicit execution strategy. The Σ F(ρ)
/// reduction runs in site order on the calling thread, so the energy is
/// identical at any thread count.
pub fn embedding_pass_with(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
    cfg: PassConfig,
) -> f64 {
    let _span = mmds_telemetry::span!("md.embed");
    let site_embed = chunked_map(interior, cfg.parallel, |s| {
        if l.id[s] < 0 {
            return (0.0, 0.0);
        }
        pot.embed(form, l.rho[s])
    });
    let mut e = 0.0;
    for (&s, (f_val, f_der)) in interior.iter().zip(site_embed) {
        e += f_val;
        l.fp[s] = f_der;
    }
    let runaways = l.live_runaways();
    let ra_embed = chunked_map(&runaways, cfg.parallel, |i| {
        pot.embed(form, l.runaway(i).rho)
    });
    for (&i, (f_val, f_der)) in runaways.iter().zip(ra_embed) {
        e += f_val;
        l.runaway_mut(i).fp = f_der;
    }
    e
}

/// Accumulates one central's force and pair-energy contribution.
#[inline]
fn force_on_central(
    l: &LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    central: Central,
    cutoff: f64,
    fp_c: f64,
    fused: bool,
) -> ([f64; 3], f64) {
    let mut fv = [0.0; 3];
    let mut pair_e = 0.0;
    for_each_partner(l, central, cutoff, |p| {
        let (phi, dphi, df) = if fused {
            let (phi, dphi, _f, df) = pot.pair_density(form, p.r);
            (phi, dphi, df)
        } else {
            let (phi, dphi) = pot.pair(form, p.r);
            let (_, df) = pot.density(form, p.r);
            (phi, dphi, df)
        };
        pair_e += 0.5 * phi;
        let scale = -(dphi + (fp_c + p.fp) * df) / p.r;
        for ax in 0..3 {
            fv[ax] += scale * p.dx[ax];
        }
    });
    (fv, pair_e)
}

/// Evaluates one flushed SoA gather buffer through the fused batch
/// lookup and accumulates pair energy and force in partner order —
/// exactly the per-partner expressions of [`force_on_central`]'s fused
/// branch, so the accumulators stay bitwise identical to the scalar
/// sweep.
#[allow(clippy::too_many_arguments)]
#[inline]
fn flush_force_batch(
    pot: &EamPotential,
    form: TableForm,
    r2s: &[f64],
    dxs: &[f64],
    dys: &[f64],
    dzs: &[f64],
    fps: &[f64],
    fp_c: f64,
    fv: &mut [f64; 3],
    pair_e: &mut f64,
) {
    let len = r2s.len();
    let mut rs = [0.0; BATCH_GATHER_CAP];
    // The deferred square roots, as one vectorizable lane loop.
    for (r, &r2) in rs[..len].iter_mut().zip(r2s) {
        *r = r2.sqrt();
    }
    let mut phi = [0.0; BATCH_GATHER_CAP];
    let mut dphi = [0.0; BATCH_GATHER_CAP];
    let mut fval = [0.0; BATCH_GATHER_CAP];
    let mut df = [0.0; BATCH_GATHER_CAP];
    pot.pair_density_batch(
        form,
        &rs[..len],
        &mut phi[..len],
        &mut dphi[..len],
        &mut fval[..len],
        &mut df[..len],
    );
    for k in 0..len {
        *pair_e += 0.5 * phi[k];
        let scale = -(dphi[k] + (fp_c + fps[k]) * df[k]) / rs[k];
        fv[0] += scale * dxs[k];
        fv[1] += scale * dys[k];
        fv[2] += scale * dzs[k];
    }
}

/// Batched force/pair-energy accumulation for one central: partner
/// data is gathered into SoA buffers (r, dx, dy, dz, F' — 40 B per
/// partner) and flushed through [`flush_force_batch`] whenever the
/// buffer fills and once at the end of the sweep.
fn force_on_central_batched(
    l: &LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    central: Central,
    cutoff: f64,
    fp_c: f64,
) -> ([f64; 3], f64, BatchStats) {
    let mut r2s = [0.0; BATCH_GATHER_CAP];
    let mut dxs = [0.0; BATCH_GATHER_CAP];
    let mut dys = [0.0; BATCH_GATHER_CAP];
    let mut dzs = [0.0; BATCH_GATHER_CAP];
    let mut fps = [0.0; BATCH_GATHER_CAP];
    let mut len = 0usize;
    let mut fv = [0.0; 3];
    let mut pair_e = 0.0;
    let mut stats = BatchStats::default();
    for_each_partner_sq(l, central, cutoff, |p| {
        r2s[len] = p.r2;
        dxs[len] = p.dx[0];
        dys[len] = p.dx[1];
        dzs[len] = p.dx[2];
        fps[len] = p.fp;
        len += 1;
        if len == BATCH_GATHER_CAP {
            flush_force_batch(
                pot,
                form,
                &r2s,
                &dxs,
                &dys,
                &dzs,
                &fps,
                fp_c,
                &mut fv,
                &mut pair_e,
            );
            stats.charge(BATCH_GATHER_CAP, 40);
            len = 0;
        }
    });
    flush_force_batch(
        pot,
        form,
        &r2s[..len],
        &dxs[..len],
        &dys[..len],
        &dzs[..len],
        &fps[..len],
        fp_c,
        &mut fv,
        &mut pair_e,
    );
    stats.charge(len, 40);
    (fv, pair_e, stats)
}

/// Pass 2: forces on owned atoms/run-aways, returning the pair energy.
/// Ghost F' values must be current (exchange between the passes).
/// Defaults to the parallel, fused execution strategy.
pub fn force_pass(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
) -> f64 {
    force_pass_with(l, pot, form, interior, PassConfig::default())
}

/// Pass 2 with an explicit execution strategy. Each central's force and
/// pair-energy contribution are computed in a read-only sweep; the
/// write-back and the ½Σφ reduction run in site order on the calling
/// thread, keeping both bitwise deterministic across thread counts.
pub fn force_pass_with(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
    cfg: PassConfig,
) -> f64 {
    let _span = mmds_telemetry::span!("md.pair");
    let cutoff = pot.cutoff();
    let force_of = |l: &LatticeNeighborList, central: Central, fp_c: f64| {
        if cfg.batched {
            force_on_central_batched(l, pot, form, central, cutoff, fp_c)
        } else {
            let (fv, pe) = force_on_central(l, pot, form, central, cutoff, fp_c, cfg.fused);
            (fv, pe, BatchStats::default())
        }
    };
    let site_force = chunked_map(interior, cfg.parallel, |s| {
        if l.id[s] < 0 {
            return ([0.0; 3], 0.0, BatchStats::default());
        }
        force_of(l, Central::Site(s), l.fp[s])
    });
    let mut pair_energy = 0.0;
    let mut stats = BatchStats::default();
    for (&s, (fv, pe, st)) in interior.iter().zip(site_force) {
        l.force[s] = fv;
        pair_energy += pe;
        stats.absorb(st);
    }
    let runaways = l.live_runaways();
    let ra_force = chunked_map(&runaways, cfg.parallel, |i| {
        force_of(l, Central::Runaway(i), l.runaway(i).fp)
    });
    for (&i, (fv, pe, st)) in runaways.iter().zip(ra_force) {
        l.runaway_mut(i).force = fv;
        pair_energy += pe;
        stats.absorb(st);
    }
    if cfg.batched {
        stats.emit();
    }
    pair_energy
}

/// Force accumulation for one central, replaying its staged partner
/// range from the gather plan. Only the partners' F' values are
/// fetched fresh (8 B per partner); r, the displacements, φ' and f'
/// come straight from the plan's SoA arrays, and ½Σφ was already
/// accumulated by the density pass. The per-partner scale expression
/// and the accumulation order are exactly those of
/// [`force_on_central`]'s fused branch, so the bits match the scalar
/// sweep.
fn force_from_plan(
    l: &LatticeNeighborList,
    plan: &GatherPlan,
    central: usize,
    fp_c: f64,
) -> ([f64; 3], f64, BatchStats) {
    let range = plan.range(central);
    let mut fv = [0.0; 3];
    let mut stats = BatchStats::default();
    stats.charge(range.len(), 8);
    for k in range {
        let pr = plan.pref[k];
        let fp = if pr >= 0 {
            l.fp[pr as usize]
        } else {
            l.runaway((-pr - 1) as u32).fp
        };
        let scale = -(plan.dphi[k] + (fp_c + fp) * plan.df[k]) / plan.r[k];
        fv[0] += scale * plan.dx[k];
        fv[1] += scale * plan.dy[k];
        fv[2] += scale * plan.dz[k];
    }
    (fv, plan.pair_e[central], stats)
}

/// Pass 2, replaying the [`GatherPlan`] built by [`density_pass_plan`]
/// in the same step: no second neighbour traversal — each central's
/// staged partner range goes straight through the lane square roots and
/// fused batch lookups, with only the partners' F' fetched fresh.
/// Falls back to [`force_pass_with`] when the batched path is disabled
/// or the plan is empty. Panics if the plan's central count does not
/// match the current interior + run-away population (a stale plan).
pub fn force_pass_plan(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    form: TableForm,
    interior: &[usize],
    cfg: PassConfig,
    plan: &GatherPlan,
) -> f64 {
    if !cfg.batched || plan.is_empty() {
        return force_pass_with(l, pot, form, interior, cfg);
    }
    let _span = mmds_telemetry::span!("md.pair");
    let runaways = l.live_runaways();
    assert_eq!(
        plan.centrals(),
        interior.len() + runaways.len(),
        "gather plan is stale: central population changed since the density pass"
    );
    let site_idx: Vec<usize> = (0..interior.len()).collect();
    let site_force = chunked_map(&site_idx, cfg.parallel, |c| {
        let s = interior[c];
        if l.id[s] < 0 {
            return ([0.0; 3], 0.0, BatchStats::default());
        }
        force_from_plan(l, plan, c, l.fp[s])
    });
    let mut pair_energy = 0.0;
    let mut stats = BatchStats::default();
    for (&s, (fv, pe, st)) in interior.iter().zip(site_force) {
        l.force[s] = fv;
        pair_energy += pe;
        stats.absorb(st);
    }
    let ra_idx: Vec<usize> = (0..runaways.len()).collect();
    let ra_force = chunked_map(&ra_idx, cfg.parallel, |k| {
        let i = runaways[k];
        force_from_plan(l, plan, interior.len() + k, l.runaway(i).fp)
    });
    for (&i, (fv, pe, st)) in runaways.iter().zip(ra_force) {
        l.runaway_mut(i).force = fv;
        pair_energy += pe;
        stats.absorb(st);
    }
    stats.emit();
    pair_energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_eam::analytic::Species;
    use mmds_eam::EamPotential;
    use mmds_lattice::{BccGeometry, LatticeNeighborList, LocalGrid};

    fn setup(n_cells: usize) -> (LatticeNeighborList, EamPotential, Vec<usize>) {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(n_cells), 2);
        let l = LatticeNeighborList::perfect(grid, 5.6);
        let pot = EamPotential::new(Species::Fe, 1500);
        let interior: Vec<usize> = l.grid.interior_ids().collect();
        (l, pot, interior)
    }

    use crate::domain::fill_periodic_ghosts;

    fn eval(l: &mut LatticeNeighborList, pot: &EamPotential, interior: &[usize]) -> EnergySample {
        fill_periodic_ghosts(l);
        density_pass(l, pot, TableForm::Compacted, interior);
        let embed = embedding_pass(l, pot, TableForm::Compacted, interior);
        fill_periodic_ghosts(l);
        let pair = force_pass(l, pot, TableForm::Compacted, interior);
        EnergySample { pair, embed }
    }

    #[test]
    fn perfect_lattice_forces_vanish() {
        let (mut l, pot, interior) = setup(5);
        let e = eval(&mut l, &pot, &interior);
        for &s in &interior {
            for ax in 0..3 {
                assert!(
                    l.force[s][ax].abs() < 1e-6,
                    "site {s} axis {ax}: {}",
                    l.force[s][ax]
                );
            }
        }
        // Cohesive energy per atom should be negative and of eV order.
        let per_atom = e.total() / interior.len() as f64;
        assert!(per_atom < -0.5 && per_atom > -20.0, "E/atom = {per_atom}");
    }

    #[test]
    fn displaced_atom_is_pulled_back() {
        let (mut l, pot, interior) = setup(5);
        let s = l.grid.site_id(4, 4, 4, 0);
        l.pos[s][0] += 0.25;
        eval(&mut l, &pot, &interior);
        assert!(
            l.force[s][0] < -0.05,
            "restoring force expected, got {}",
            l.force[s][0]
        );
        // And the other components stay symmetric (≈ 0).
        assert!(l.force[s][1].abs() < 1e-6);
        assert!(l.force[s][2].abs() < 1e-6);
    }

    #[test]
    fn newtons_third_law_on_dimer_displacement() {
        let (mut l, pot, interior) = setup(5);
        let s = l.grid.site_id(4, 4, 4, 0);
        l.pos[s] = [l.pos[s][0] + 0.15, l.pos[s][1] - 0.1, l.pos[s][2] + 0.05];
        eval(&mut l, &pot, &interior);
        // Total force over all atoms must vanish (translational invariance).
        let mut tot = [0.0; 3];
        for &x in &interior {
            for ax in 0..3 {
                tot[ax] += l.force[x][ax];
            }
        }
        for ax in 0..3 {
            assert!(tot[ax].abs() < 1e-6, "net force axis {ax}: {}", tot[ax]);
        }
    }

    #[test]
    fn force_matches_energy_gradient() {
        let (mut l, pot, interior) = setup(4);
        let s = l.grid.site_id(3, 3, 3, 1);
        l.pos[s][0] += 0.2;
        let h = 1e-5;
        l.pos[s][0] += h;
        let e_plus = eval(&mut l, &pot, &interior).total();
        l.pos[s][0] -= 2.0 * h;
        let e_minus = eval(&mut l, &pot, &interior).total();
        l.pos[s][0] += h;
        eval(&mut l, &pot, &interior);
        let numeric = -(e_plus - e_minus) / (2.0 * h);
        assert!(
            (l.force[s][0] - numeric).abs() < 1e-4,
            "analytic {} vs numeric {numeric}",
            l.force[s][0]
        );
    }

    #[test]
    fn runaway_participates_in_forces() {
        let (mut l, pot, interior) = setup(5);
        // Promote one atom to a run-away sitting between sites.
        let s = l.grid.site_id(4, 4, 4, 0);
        let id = l.make_vacancy(s);
        let lp = l.grid.site_position(4, 4, 4, 0);
        let idx = l.add_runaway(s, id, [lp[0] + 1.3, lp[1], lp[2]], [0.0; 3]);
        eval(&mut l, &pot, &interior);
        let f = l.runaway(idx).force;
        assert!(
            f.iter().any(|c| c.abs() > 1e-3),
            "run-away must feel a force: {f:?}"
        );
        // Its neighbours feel it too: the atom nearest to the run-away
        // gets pushed, breaking the perfect-lattice zero.
        let near = l.grid.site_id(4, 4, 4, 1);
        assert!(l.force[near].iter().any(|c| c.abs() > 1e-3));
    }

    #[test]
    fn vacancy_contributes_nothing() {
        let (mut l, pot, interior) = setup(5);
        let s = l.grid.site_id(4, 4, 4, 0);
        l.make_vacancy(s);
        eval(&mut l, &pot, &interior);
        assert_eq!(l.force[s], [0.0; 3]);
        assert_eq!(l.rho[s], 0.0);
        // Neighbours of the vacancy feel a net pull toward it... or push,
        // but in any case a nonzero force along the 1NN direction.
        let n = l.grid.site_id(4, 4, 4, 1);
        let fnorm: f64 = l.force[n].iter().map(|c| c * c).sum::<f64>().sqrt();
        assert!(fnorm > 1e-3, "|f| = {fnorm}");
    }

    #[test]
    fn serial_unfused_and_parallel_fused_agree_bitwise() {
        // The old (seed) path — serial sweeps, separate pair/density
        // lookups — and the new default — chunked parallel sweeps,
        // fused single-locate lookup — must produce identical bits.
        let run = |cfg: PassConfig| {
            let (mut l, pot, interior) = setup(5);
            let s = l.grid.site_id(4, 4, 4, 0);
            l.pos[s] = [l.pos[s][0] + 0.21, l.pos[s][1] - 0.13, l.pos[s][2] + 0.07];
            fill_periodic_ghosts(&mut l);
            density_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            let e = embedding_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            fill_periodic_ghosts(&mut l);
            let pair = force_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            (l.rho, l.force, e, pair)
        };
        let old = run(PassConfig::seed_serial());
        let new = run(PassConfig::default());
        assert_eq!(old.0, new.0, "rho arrays differ");
        assert_eq!(old.1, new.1, "force arrays differ");
        assert_eq!(old.2, new.2, "embedding energy differs");
        assert_eq!(old.3, new.3, "pair energy differs");
    }

    #[test]
    fn batched_passes_agree_bitwise_with_scalar() {
        // The batched SoA gather/eval path must replay the scalar op
        // sequence exactly — including for run-away centrals, whose
        // partner counts exercise the ragged scalar tails.
        let run = |cfg: PassConfig| {
            let (mut l, pot, interior) = setup(5);
            let s = l.grid.site_id(4, 4, 4, 0);
            l.pos[s] = [l.pos[s][0] + 0.21, l.pos[s][1] - 0.13, l.pos[s][2] + 0.07];
            let v = l.grid.site_id(3, 3, 3, 0);
            let id = l.make_vacancy(v);
            let lp = l.grid.site_position(3, 3, 3, 0);
            let idx = l.add_runaway(v, id, [lp[0] + 1.3, lp[1] + 0.4, lp[2]], [0.0; 3]);
            fill_periodic_ghosts(&mut l);
            density_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            let e = embedding_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            fill_periodic_ghosts(&mut l);
            let pair = force_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            let ra = l.runaway(idx);
            (l.rho.clone(), l.force.clone(), e, pair, ra.rho, ra.force)
        };
        let scalar = run(PassConfig {
            parallel: false,
            fused: true,
            batched: false,
        });
        for (parallel, fused) in [(false, true), (true, false), (true, true)] {
            let batched = run(PassConfig {
                parallel,
                fused,
                batched: true,
            });
            assert_eq!(scalar.0, batched.0, "rho arrays differ");
            assert_eq!(scalar.1, batched.1, "force arrays differ");
            assert_eq!(scalar.2, batched.2, "embedding energy differs");
            assert_eq!(scalar.3, batched.3, "pair energy differs");
            assert_eq!(scalar.4, batched.4, "run-away rho differs");
            assert_eq!(scalar.5, batched.5, "run-away force differs");
        }
    }

    #[test]
    fn plan_passes_agree_bitwise_with_scalar() {
        // The gather-plan pipeline (fused staging in the density pass,
        // traversal-free replay in the force pass) must reproduce the
        // scalar sweeps exactly, run-away centrals and ragged tails
        // included.
        let build = || {
            let (mut l, pot, interior) = setup(5);
            let s = l.grid.site_id(4, 4, 4, 0);
            l.pos[s] = [l.pos[s][0] + 0.21, l.pos[s][1] - 0.13, l.pos[s][2] + 0.07];
            let v = l.grid.site_id(3, 3, 3, 0);
            let id = l.make_vacancy(v);
            let lp = l.grid.site_position(3, 3, 3, 0);
            let idx = l.add_runaway(v, id, [lp[0] + 1.3, lp[1] + 0.4, lp[2]], [0.0; 3]);
            (l, pot, interior, idx)
        };
        let scalar = {
            let (mut l, pot, interior, idx) = build();
            let cfg = PassConfig::seed_serial();
            fill_periodic_ghosts(&mut l);
            density_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            let e = embedding_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            fill_periodic_ghosts(&mut l);
            let pair = force_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            let ra = l.runaway(idx);
            (l.rho.clone(), l.force.clone(), e, pair, ra.rho, ra.force)
        };
        for parallel in [false, true] {
            let (mut l, pot, interior, idx) = build();
            let cfg = PassConfig {
                parallel,
                fused: true,
                batched: true,
            };
            let mut plan = GatherPlan::default();
            fill_periodic_ghosts(&mut l);
            density_pass_plan(
                &mut l,
                &pot,
                TableForm::Compacted,
                &interior,
                cfg,
                &mut plan,
            );
            let e = embedding_pass_with(&mut l, &pot, TableForm::Compacted, &interior, cfg);
            fill_periodic_ghosts(&mut l);
            let pair = force_pass_plan(&mut l, &pot, TableForm::Compacted, &interior, cfg, &plan);
            let ra = l.runaway(idx);
            assert_eq!(scalar.0, l.rho, "rho arrays differ (parallel={parallel})");
            assert_eq!(
                scalar.1, l.force,
                "force arrays differ (parallel={parallel})"
            );
            assert_eq!(
                scalar.2, e,
                "embedding energy differs (parallel={parallel})"
            );
            assert_eq!(scalar.3, pair, "pair energy differs (parallel={parallel})");
            assert_eq!(
                scalar.4, ra.rho,
                "run-away rho differs (parallel={parallel})"
            );
            assert_eq!(
                scalar.5, ra.force,
                "run-away force differs (parallel={parallel})"
            );
        }
    }

    #[test]
    fn table_forms_agree() {
        let (mut l, pot, interior) = setup(4);
        let s = l.grid.site_id(3, 3, 3, 0);
        l.pos[s][0] += 0.2;
        fill_periodic_ghosts(&mut l);
        density_pass(&mut l, &pot, TableForm::Compacted, &interior);
        let rho_c = l.rho[s];
        density_pass(&mut l, &pot, TableForm::Traditional, &interior);
        let rho_t = l.rho[s];
        assert!((rho_c - rho_t).abs() < 1e-6, "{rho_c} vs {rho_t}");
    }
}
