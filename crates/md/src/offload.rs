//! CPE offload of the EAM passes — the Fig. 9 machinery.
//!
//! "The subdomain of each process is further equally partitioned into
//! slabs, and each thread \[CPE\] is responsible for one slab. ... each
//! slab is further partitioned into blocks, and each slave core
//! processes the blocks one by one" (§2.1.2). Per block the kernel
//! stages atom data into the local store (stream DMA), computes the EAM
//! pass — issuing latency-bound *gather* DMAs for anything not resident
//! (traditional table rows, halo atoms outside the retained window) —
//! and puts the results back. Each distinct halo site is fetched once
//! per block (it stays in the local store for the rest of the block).
//!
//! In compacted mode the three tables "are accessed sequentially"
//! (paper): the force computation runs as two one-table-resident sweeps
//! (pair sweep, then density-gradient sweep), because two 39 KiB tables
//! plus block buffers cannot coexist in the 64 KB local store. The
//! traditional force sweep instead evaluates pair and density in one
//! fused lookup — the tables share a knot grid, so one segment locate
//! serves both rows ([`EamPotential::pair_density`] on the host,
//! `charge_table_access(LOCATE, SEG_EVAL, 2)` here).
//!
//! The three optimisation axes of Fig. 9:
//! * [`mmds_eam::TableForm`]: `Traditional` gathers one 56 B coefficient
//!   row per table access; `Compacted` holds the 39 KiB value table
//!   resident (enforced by real allocation) and reconstructs
//!   coefficients on the fly.
//! * `data_reuse`: the previous block's edge atoms stay in the local
//!   store, so backward halo references are free.
//! * `double_buffer`: block staging DMA overlaps compute (Fig. 6).

use std::collections::HashSet;

use mmds_eam::compact::{CompactTable, RECON_EXTRA_FLOPS};
use mmds_eam::spline::{TraditionalTable, PAPER_TABLE_N};
use mmds_eam::{EamPotential, TableForm, LOCATE_FLOPS, SEG_EVAL_FLOPS};
use mmds_lattice::lnl::LatticeNeighborList;
use mmds_sunway::{ClusterReport, CpeCluster, CpeCtx, LdmPlan, SwModel};
use serde::{Deserialize, Serialize};

use crate::force::{for_each_partner, Central, BATCH_GATHER_CAP};

/// Flops charged for computing one pair separation (r², √).
const R_FLOPS: u64 = 18;
/// Per-atom bookkeeping flops.
const ATOM_FLOPS: u64 = 6;

/// Bytes staged into the local store per block site (x, y, z as f64) —
/// the unit every block-buffer term of the LDM plan is expressed in.
pub const STAGE_BYTES_PER_SITE: usize = 24;

/// Offload configuration (the Fig. 9 ablation axes).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OffloadConfig {
    /// Table machinery.
    pub form: TableForm,
    /// Keep the previous block's edge resident (ghost-data reuse).
    pub data_reuse: bool,
    /// Overlap staging DMA with compute.
    pub double_buffer: bool,
    /// Evaluate resident-table lookups through the SoA lane-batch
    /// kernels (the CPE mirror of [`crate::force::PassConfig::batched`]).
    /// Reserves lane buffers in the LDM plan; only effective with
    /// compacted tables (traditional rows are gathered per access, so
    /// there is nothing contiguous to batch).
    pub batched: bool,
    /// Sites per block. [`OffloadConfig::fit_block_sites`] derives the
    /// largest value whose declared LDM plan (table + block buffers +
    /// reuse margin) fits the 64 KB local store.
    pub block_sites: usize,
}

impl OffloadConfig {
    /// Upper bound on block sites regardless of spare LDM (the paper's
    /// block granularity; larger blocks stop paying off once staging
    /// startup is amortised).
    pub const MAX_BLOCK_SITES: usize = 448;

    /// The paper's best configuration, with the block size fitted to
    /// the paper's 5000-knot tables by [`OffloadConfig::fit_block_sites`].
    pub fn optimized() -> Self {
        Self::optimized_for(PAPER_TABLE_N)
    }

    /// The best configuration for tables of `knots` samples.
    pub fn optimized_for(knots: usize) -> Self {
        Self {
            form: TableForm::Compacted,
            data_reuse: true,
            double_buffer: true,
            batched: true,
            block_sites: Self::fit_block_sites(TableForm::Compacted, true, true, true, knots),
        }
    }

    /// The baseline configuration (traditional tables, no reuse, single
    /// buffer).
    pub fn traditional() -> Self {
        Self {
            form: TableForm::Traditional,
            data_reuse: false,
            double_buffer: false,
            batched: false,
            block_sites: Self::fit_block_sites(
                TableForm::Traditional,
                false,
                false,
                false,
                PAPER_TABLE_N,
            ),
        }
    }

    /// The four Fig. 9 variants in presentation order, each with its
    /// block size fitted to its own LDM plan (reuse and double
    /// buffering consume local store, so later variants run smaller
    /// blocks — the trade the prover makes explicit).
    pub fn fig9_variants() -> [(&'static str, Self); 4] {
        let t = Self::traditional();
        // The Fig. 9 ablation stays scalar: lane batching is a later
        // optimisation layered on top (the `optimized()` default).
        let fit = |data_reuse, double_buffer| Self {
            form: TableForm::Compacted,
            data_reuse,
            double_buffer,
            batched: false,
            block_sites: Self::fit_block_sites(
                TableForm::Compacted,
                data_reuse,
                double_buffer,
                false,
                PAPER_TABLE_N,
            ),
        };
        [
            ("TraditionalTable", t),
            ("CompactedTable", fit(false, false)),
            ("CompactedTable+DataReuse", fit(true, false)),
            ("CompactedTable+DataReuse+DoubleBuffer", fit(true, true)),
        ]
    }

    /// The largest block size (a multiple of 16, capped at
    /// [`OffloadConfig::MAX_BLOCK_SITES`]) whose worst sweep fits the
    /// SW26010 local store: resident table + (double-buffered) in/out
    /// block buffers + ghost-reuse margin, all per the declared plan.
    pub fn fit_block_sites(
        form: TableForm,
        data_reuse: bool,
        double_buffer: bool,
        batched: bool,
        knots: usize,
    ) -> usize {
        let ldm = SwModel::sw26010().ldm_bytes;
        let table = match form {
            TableForm::Compacted => knots * 8,
            TableForm::Traditional => 0,
        };
        // The batched sweeps stage partners through 9 lane buffers of
        // [`BATCH_GATHER_CAP`] f64 each (r, Δx/Δy/Δz, partner F', four
        // eval outputs) — reserved off the top like the table.
        let lanes = if batched { 9 * BATCH_GATHER_CAP * 8 } else { 0 };
        // Worst sweep stages positions in and 3 force words out.
        let copies = if double_buffer { 2 } else { 1 };
        let per_site =
            copies * 2 * STAGE_BYTES_PER_SITE + if data_reuse { STAGE_BYTES_PER_SITE } else { 0 };
        let fit = ldm.saturating_sub(table + lanes) / per_site;
        (fit & !15).clamp(16, Self::MAX_BLOCK_SITES)
    }

    /// The worst-case LDM footprint of every CPE sweep this
    /// configuration launches, declared symbolically from the plan
    /// constants (`knots`, `block_sites`, the buffering flags). The
    /// `mmds-audit` budget prover checks these against
    /// [`SwModel::sw26010`]`.ldm_bytes`; the kernels below allocate the
    /// same buffers for real, so [`ClusterReport::ldm_high_water`] can
    /// never exceed the declared plan.
    pub fn ldm_plans(&self, label: &str, knots: usize) -> Vec<LdmPlan> {
        let sweep = |name: &str, resident: bool, out_words_per_site: usize| {
            let mut plan = LdmPlan::new(
                format!("md.offload/{label}/{name}"),
                SwModel::sw26010().ldm_bytes,
            );
            if resident {
                plan = plan.with("resident table", knots, 8);
            }
            plan = plan.with("block in", self.block_sites * 3, 8);
            if self.double_buffer {
                plan = plan.with("block in shadow", self.block_sites * 3, 8);
            }
            plan = plan.with("block out", self.block_sites * out_words_per_site, 8);
            if self.double_buffer {
                plan = plan.with("block out shadow", self.block_sites * out_words_per_site, 8);
            }
            if self.data_reuse {
                plan = plan.with("ghost-reuse margin", self.block_sites * 3, 8);
            }
            if self.batched && resident {
                plan = plan.with("batch gather+eval lanes", 9 * BATCH_GATHER_CAP, 8);
            }
            plan
        };
        match self.form {
            TableForm::Traditional => {
                vec![sweep("density", false, 1), sweep("force_both", false, 3)]
            }
            TableForm::Compacted => vec![
                sweep("density", true, 1),
                sweep("force_pair", true, 3),
                sweep("force_density", true, 3),
            ],
        }
    }
}

/// Which sweep a kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    /// ρ accumulation (density table).
    Density,
    /// Traditional single-sweep force (pair + density rows gathered).
    ForceBoth,
    /// Compacted sweep 1: pair term, pair table resident.
    ForcePair,
    /// Compacted sweep 2: embedding-gradient term, density table resident.
    ForceDensity,
}

impl Pass {
    fn writes_force(&self) -> bool {
        !matches!(self, Pass::Density)
    }
}

/// The retained-window width for data reuse: the farthest backward flat
/// offset any neighbour can have.
fn reach_flat(l: &LatticeNeighborList) -> usize {
    l.neighbor_deltas(0)
        .iter()
        .chain(l.neighbor_deltas(1))
        .map(|&d| d.unsigned_abs())
        .max()
        .unwrap_or(0)
}

struct SlabItem<'a> {
    sites: &'a [usize],
    out_rho: &'a mut [f64],
    out_force: &'a mut [[f64; 3]],
    out_pair: &'a mut f64,
}

/// SoA staging buffers for one central's partners in a batched sweep —
/// the CPE twin of the host gather plan's per-partner record (r, Δ
/// components, partner F'), capped at [`BATCH_GATHER_CAP`] and flushed
/// through the lane kernels when full.
struct BatchStage {
    rs: [f64; BATCH_GATHER_CAP],
    dxs: [f64; BATCH_GATHER_CAP],
    dys: [f64; BATCH_GATHER_CAP],
    dzs: [f64; BATCH_GATHER_CAP],
    fps: [f64; BATCH_GATHER_CAP],
}

impl BatchStage {
    fn new() -> Self {
        Self {
            rs: [0.0; BATCH_GATHER_CAP],
            dxs: [0.0; BATCH_GATHER_CAP],
            dys: [0.0; BATCH_GATHER_CAP],
            dzs: [0.0; BATCH_GATHER_CAP],
            fps: [0.0; BATCH_GATHER_CAP],
        }
    }
}

/// Evaluates one staged batch against the resident table and folds the
/// results into the central's accumulators **in partner order** — the
/// batch kernels replay the scalar expressions per element, so the
/// accumulated ρ/force/pair bits match the scalar sweep exactly.
/// Charges one batch token per full lane group and a scalar table
/// access per ragged-tail element (same flop totals as the scalar
/// sweep, reconciled by the `mmds-audit` flop ledger).
#[allow(clippy::too_many_arguments)]
fn flush_table_batch(
    ctx: &mut CpeCtx,
    pass: Pass,
    table: (&[f64], f64, f64),
    fp_c: f64,
    n: usize,
    stage: &BatchStage,
    rho: &mut f64,
    fv: &mut [f64; 3],
    pair_e: &mut f64,
) {
    let (buf, x0, dx) = table;
    let rs = &stage.rs[..n];
    let full = n - n % mmds_eam::BATCH_LANES;
    for _ in 0..full / mmds_eam::BATCH_LANES {
        ctx.charge_table_batch(
            LOCATE_FLOPS,
            SEG_EVAL_FLOPS + RECON_EXTRA_FLOPS,
            1,
            mmds_eam::BATCH_LANES as u64,
        );
    }
    for _ in full..n {
        ctx.charge_table_access(LOCATE_FLOPS, SEG_EVAL_FLOPS + RECON_EXTRA_FLOPS, 1);
    }
    match pass {
        Pass::Density => {
            let mut fval = [0.0; BATCH_GATHER_CAP];
            CompactTable::eval_values_batch_slice(buf, x0, dx, rs, &mut fval[..n]);
            for f_r in &fval[..n] {
                *rho += f_r;
            }
        }
        Pass::ForcePair => {
            let mut phi = [0.0; BATCH_GATHER_CAP];
            let mut dphi = [0.0; BATCH_GATHER_CAP];
            CompactTable::eval_batch_slice(buf, x0, dx, rs, &mut phi[..n], &mut dphi[..n]);
            for k in 0..n {
                *pair_e += 0.5 * phi[k];
                let scale = -dphi[k] / rs[k];
                fv[0] += scale * stage.dxs[k];
                fv[1] += scale * stage.dys[k];
                fv[2] += scale * stage.dzs[k];
            }
        }
        Pass::ForceDensity => {
            let mut fval = [0.0; BATCH_GATHER_CAP];
            let mut df = [0.0; BATCH_GATHER_CAP];
            CompactTable::eval_batch_slice(buf, x0, dx, rs, &mut fval[..n], &mut df[..n]);
            for k in 0..n {
                let scale = -((fp_c + stage.fps[k]) * df[k]) / rs[k];
                fv[0] += scale * stage.dxs[k];
                fv[1] += scale * stage.dys[k];
                fv[2] += scale * stage.dzs[k];
            }
        }
        Pass::ForceBoth => unreachable!("traditional sweeps are never batched"),
    }
}

/// Charges + computes one sweep over `sites`, writing per-site outputs.
fn slab_kernel(
    ctx: &mut CpeCtx,
    l: &LatticeNeighborList,
    pot: &EamPotential,
    cfg: &OffloadConfig,
    pass: Pass,
    reach: usize,
    item: SlabItem<'_>,
) {
    let cutoff = pot.cutoff();
    // Resident table for this sweep (really allocated: capacity enforced).
    let resident: Option<(mmds_sunway::LsVec<f64>, f64, f64)> = match (cfg.form, pass) {
        (TableForm::Compacted, Pass::Density) | (TableForm::Compacted, Pass::ForceDensity) => {
            let t = &pot.comp_density;
            let buf = ctx
                .load_resident_table(&t.values)
                .expect("compacted density table fits in the local store");
            Some((buf, t.x0, t.dx))
        }
        (TableForm::Compacted, Pass::ForcePair) => {
            let t = &pot.comp_pair;
            let buf = ctx
                .load_resident_table(&t.values)
                .expect("compacted pair table fits in the local store");
            Some((buf, t.x0, t.dx))
        }
        (TableForm::Compacted, Pass::ForceBoth) => {
            unreachable!("compacted mode uses the two-sweep force path")
        }
        (TableForm::Traditional, _) => {
            // The 273 KiB table cannot be resident — prove it.
            debug_assert!(ctx
                .local_store()
                .alloc_f64(pot.trad_pair.coeff.len() * 7)
                .is_err());
            None
        }
    };
    // Block I/O buffers (positions in, results out) — real allocations.
    let out_words = if pass.writes_force() {
        cfg.block_sites * 3
    } else {
        cfg.block_sites
    };
    let _in_buf = ctx
        .alloc_f64(cfg.block_sites * 3)
        .expect("block input buffer fits in the local store");
    let _out_buf = ctx
        .alloc_f64(out_words)
        .expect("block output buffer fits in the local store");
    // Double buffering really owns a second staging pair (ping-pong),
    // and ghost reuse retains up to one block's worth of edge sites —
    // allocated so the capacity-enforced store proves the declared
    // `OffloadConfig::ldm_plans` budget is honest.
    let _in_shadow = cfg.double_buffer.then(|| {
        ctx.alloc_f64(cfg.block_sites * 3)
            .expect("double-buffer input shadow fits in the local store")
    });
    let _out_shadow = cfg.double_buffer.then(|| {
        ctx.alloc_f64(out_words)
            .expect("double-buffer output shadow fits in the local store")
    });
    let _reuse_edge = cfg.data_reuse.then(|| {
        ctx.alloc_f64(reach.min(cfg.block_sites) * 3)
            .expect("ghost-reuse margin fits in the local store")
    });
    // Lane batching needs a resident table to evaluate against; the
    // stage + eval buffers are really allocated so the capacity-enforced
    // store proves the "batch gather+eval lanes" plan item honest.
    let use_batch = cfg.batched && resident.is_some();
    let _lane_buf = use_batch.then(|| {
        ctx.alloc_f64(9 * BATCH_GATHER_CAP)
            .expect("batch gather+eval lane buffers fit in the local store")
    });

    let mut halo_seen: HashSet<usize> = HashSet::new();
    ctx.begin_blocks(cfg.double_buffer);
    let nblocks = item.sites.len().div_ceil(cfg.block_sites).max(1);
    for (bi, block) in item.sites.chunks(cfg.block_sites.max(1)).enumerate() {
        halo_seen.clear();
        let blk_lo = block[0];
        let blk_hi = *block.last().expect("chunks are non-empty");
        let window_lo = if cfg.data_reuse {
            blk_lo.saturating_sub(reach)
        } else {
            blk_lo
        };
        // Stage the block in.
        ctx.charge_dma_get(block.len() * 24);
        let base = bi * cfg.block_sites;
        for (oi, &s) in block.iter().enumerate() {
            let o = base + oi;
            if l.id[s] < 0 {
                if pass.writes_force() {
                    item.out_force[o] = [0.0; 3];
                } else {
                    item.out_rho[o] = 0.0;
                }
                continue;
            }
            ctx.charge_flops(ATOM_FLOPS);
            let fp_c = l.fp[s];
            let mut rho = 0.0;
            let mut fv = [0.0; 3];
            let mut pair_e = 0.0;
            if use_batch {
                // Batched sweep: stage partners into SoA lane buffers,
                // flush through the batch kernels at the cap and at the
                // end — identical partner order, identical bits.
                let (buf, x0, dx) = {
                    let (b, x0, dx) = resident.as_ref().expect("batched sweeps keep a table");
                    (&b[..], *x0, *dx)
                };
                let mut stage = BatchStage::new();
                let mut len = 0usize;
                for_each_partner(l, Central::Site(s), cutoff, |p| {
                    ctx.charge_flops(R_FLOPS);
                    if (p.is_runaway || p.site < window_lo || p.site > blk_hi)
                        && halo_seen.insert(p.site + if p.is_runaway { l.n_sites() } else { 0 })
                    {
                        ctx.charge_dma_gather(24);
                    }
                    stage.rs[len] = p.r;
                    stage.dxs[len] = p.dx[0];
                    stage.dys[len] = p.dx[1];
                    stage.dzs[len] = p.dx[2];
                    stage.fps[len] = p.fp;
                    len += 1;
                    if len == BATCH_GATHER_CAP {
                        flush_table_batch(
                            ctx,
                            pass,
                            (buf, x0, dx),
                            fp_c,
                            len,
                            &stage,
                            &mut rho,
                            &mut fv,
                            &mut pair_e,
                        );
                        len = 0;
                    }
                });
                if len > 0 {
                    flush_table_batch(
                        ctx,
                        pass,
                        (buf, x0, dx),
                        fp_c,
                        len,
                        &stage,
                        &mut rho,
                        &mut fv,
                        &mut pair_e,
                    );
                }
                if pass.writes_force() {
                    item.out_force[o] = fv;
                    *item.out_pair += pair_e;
                } else {
                    item.out_rho[o] = rho;
                }
                continue;
            }
            for_each_partner(l, Central::Site(s), cutoff, |p| {
                ctx.charge_flops(R_FLOPS);
                // Halo position fetch: once per distinct off-window site
                // per block (it stays in the local store afterwards).
                if (p.is_runaway || p.site < window_lo || p.site > blk_hi)
                    && halo_seen.insert(p.site + if p.is_runaway { l.n_sites() } else { 0 })
                {
                    ctx.charge_dma_gather(24);
                }
                match pass {
                    Pass::Density => {
                        let f_r = match &resident {
                            Some((buf, x0, dx)) => {
                                ctx.charge_table_access(
                                    LOCATE_FLOPS,
                                    SEG_EVAL_FLOPS + RECON_EXTRA_FLOPS,
                                    1,
                                );
                                CompactTable::eval_slice(buf, *x0, *dx, p.r).0
                            }
                            None => {
                                ctx.charge_dma_gather(TraditionalTable::ROW_BYTES);
                                ctx.charge_table_access(LOCATE_FLOPS, SEG_EVAL_FLOPS, 1);
                                pot.trad_density.eval(p.r)
                            }
                        };
                        rho += f_r;
                    }
                    Pass::ForceBoth => {
                        // Fused lookup: the pair and density rows are
                        // still two gathers, but ONE locate serves both
                        // segment evaluations (host parity).
                        ctx.charge_dma_gather(2 * TraditionalTable::ROW_BYTES);
                        ctx.charge_table_access(LOCATE_FLOPS, SEG_EVAL_FLOPS, 2);
                        let (phi, dphi, _, df) = pot.trad_pair.eval2(&pot.trad_density, p.r);
                        pair_e += 0.5 * phi;
                        let scale = -(dphi + (fp_c + p.fp) * df) / p.r;
                        for ax in 0..3 {
                            fv[ax] += scale * p.dx[ax];
                        }
                    }
                    Pass::ForcePair => {
                        let (buf, x0, dx) = resident.as_ref().expect("pair table resident");
                        ctx.charge_table_access(
                            LOCATE_FLOPS,
                            SEG_EVAL_FLOPS + RECON_EXTRA_FLOPS,
                            1,
                        );
                        let (phi, dphi) = CompactTable::eval_slice(buf, *x0, *dx, p.r);
                        pair_e += 0.5 * phi;
                        let scale = -dphi / p.r;
                        for ax in 0..3 {
                            fv[ax] += scale * p.dx[ax];
                        }
                    }
                    Pass::ForceDensity => {
                        let (buf, x0, dx) = resident.as_ref().expect("density table resident");
                        ctx.charge_table_access(
                            LOCATE_FLOPS,
                            SEG_EVAL_FLOPS + RECON_EXTRA_FLOPS,
                            1,
                        );
                        let (_, df) = CompactTable::eval_slice(buf, *x0, *dx, p.r);
                        let scale = -((fp_c + p.fp) * df) / p.r;
                        for ax in 0..3 {
                            fv[ax] += scale * p.dx[ax];
                        }
                    }
                }
            });
            if pass.writes_force() {
                item.out_force[o] = fv;
                *item.out_pair += pair_e;
            } else {
                item.out_rho[o] = rho;
            }
        }
        // Stage the block's results out.
        ctx.charge_dma_put(if pass.writes_force() {
            block.len() * 24
        } else {
            block.len() * 8
        });
        if bi + 1 < nblocks {
            ctx.next_block();
        }
    }
    ctx.finish_blocks();
}

/// Scatter policy for a sweep's force output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scatter {
    Rho,
    SetForce,
    AddForce,
}

fn run_pass(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    cluster: &CpeCluster,
    cfg: &OffloadConfig,
    interior: &[usize],
    pass: Pass,
    scatter: Scatter,
) -> (ClusterReport, f64) {
    let n = interior.len();
    let n_cpes = cluster.n_cpes();
    let slab = n.div_ceil(n_cpes).max(1);
    let reach = reach_flat(l);

    let mut rho_out = vec![0.0f64; n];
    let mut force_out = vec![[0.0f64; 3]; n];
    let n_slabs = n.div_ceil(slab).max(1);
    let mut pair_out = vec![0.0f64; n_slabs];

    let items: Vec<SlabItem<'_>> = interior
        .chunks(slab)
        .zip(rho_out.chunks_mut(slab))
        .zip(force_out.chunks_mut(slab))
        .zip(pair_out.iter_mut())
        .map(|(((sites, out_rho), out_force), out_pair)| SlabItem {
            sites,
            out_rho,
            out_force,
            out_pair,
        })
        .collect();

    let report = cluster.run(items, |ctx, item| {
        slab_kernel(ctx, l, pot, cfg, pass, reach, item);
    });

    // MPE scatters the results back into the structure.
    match scatter {
        Scatter::Rho => {
            for (&s, rho) in interior.iter().zip(rho_out) {
                l.rho[s] = rho;
            }
        }
        Scatter::SetForce => {
            for (&s, fv) in interior.iter().zip(force_out) {
                l.force[s] = fv;
            }
        }
        Scatter::AddForce => {
            for (&s, fv) in interior.iter().zip(force_out) {
                for ax in 0..3 {
                    l.force[s][ax] += fv[ax];
                }
            }
        }
    }
    (report, pair_out.iter().sum())
}

/// Outcome of an offloaded two-pass force computation.
#[derive(Debug, Clone, Copy)]
pub struct OffloadOutcome {
    /// Density-pass cluster report.
    pub density: ClusterReport,
    /// Force-pass cluster report (both sweeps merged in compacted mode).
    pub force: ClusterReport,
    /// Pair energy (eV).
    pub pair_energy: f64,
    /// Embedding energy (eV).
    pub embed_energy: f64,
}

impl OffloadOutcome {
    /// Total CPE kernel time (virtual seconds).
    pub fn kernel_time(&self) -> f64 {
        self.density.time + self.force.time
    }
}

fn merge_reports(a: ClusterReport, b: ClusterReport) -> ClusterReport {
    ClusterReport {
        time: a.time + b.time,
        counters: a.counters.merge(&b.counters),
        active_cpes: a.active_cpes.max(b.active_cpes),
        ldm_high_water: a.ldm_high_water.max(b.ldm_high_water),
    }
}

/// Runs the density pass (CPE), the embedding pass (MPE), and — after
/// the caller exchanges ghost F' — the force sweep(s) (CPE). Run-away
/// centrals are handled on the MPE (they are a few millionths of the
/// atoms). The caller supplies the ghost-exchange hook between the
/// passes.
pub fn offload_compute_forces(
    l: &mut LatticeNeighborList,
    pot: &EamPotential,
    cluster: &CpeCluster,
    cfg: &OffloadConfig,
    interior: &[usize],
    mut exchange_fp: impl FnMut(&mut LatticeNeighborList),
) -> OffloadOutcome {
    let (density_rep, _) = run_pass(l, pot, cluster, cfg, interior, Pass::Density, Scatter::Rho);
    // Run-away densities on the MPE.
    let runaways = l.live_runaways();
    let cutoff = pot.cutoff();
    let mut ra_rho = Vec::with_capacity(runaways.len());
    for &i in &runaways {
        let mut rho = 0.0;
        for_each_partner(l, Central::Runaway(i), cutoff, |p| {
            rho += pot.density(cfg.form, p.r).0;
        });
        ra_rho.push(rho);
    }
    for (&i, rho) in runaways.iter().zip(ra_rho) {
        l.runaway_mut(i).rho = rho;
    }
    let embed_energy = crate::force::embedding_pass(l, pot, cfg.form, interior);
    exchange_fp(l);
    let (force_rep, mut pair_energy) = match cfg.form {
        TableForm::Traditional => run_pass(
            l,
            pot,
            cluster,
            cfg,
            interior,
            Pass::ForceBoth,
            Scatter::SetForce,
        ),
        TableForm::Compacted => {
            let (rep_p, pair) = run_pass(
                l,
                pot,
                cluster,
                cfg,
                interior,
                Pass::ForcePair,
                Scatter::SetForce,
            );
            let (rep_d, _) = run_pass(
                l,
                pot,
                cluster,
                cfg,
                interior,
                Pass::ForceDensity,
                Scatter::AddForce,
            );
            (merge_reports(rep_p, rep_d), pair)
        }
    };
    // Run-away forces on the MPE.
    let mut ra_force = Vec::with_capacity(runaways.len());
    for &i in &runaways {
        let fp_c = l.runaway(i).fp;
        let mut fv = [0.0; 3];
        for_each_partner(l, Central::Runaway(i), cutoff, |p| {
            let (phi, dphi, _, df) = pot.pair_density(cfg.form, p.r);
            pair_energy += 0.5 * phi;
            let scale = -(dphi + (fp_c + p.fp) * df) / p.r;
            for ax in 0..3 {
                fv[ax] += scale * p.dx[ax];
            }
        });
        ra_force.push(fv);
    }
    for (&i, fv) in runaways.iter().zip(ra_force) {
        l.runaway_mut(i).force = fv;
    }
    OffloadOutcome {
        density: density_rep,
        force: force_rep,
        pair_energy,
        embed_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MdConfig;
    use crate::domain::{exchange_ghosts, GhostPhase, Loopback};
    use crate::sim::MdSimulation;
    use mmds_sunway::SwModel;

    fn sim() -> MdSimulation {
        let cfg = MdConfig {
            table_knots: 5000,
            ..Default::default()
        };
        let mut s = MdSimulation::single_box(cfg, 5);
        // Perturb so forces are nontrivial.
        let a = s.lnl.grid.site_id(4, 4, 4, 0);
        s.lnl.pos[a][0] += 0.22;
        let b = s.lnl.grid.site_id(3, 4, 5, 1);
        s.lnl.pos[b][1] -= 0.17;
        s
    }

    fn offload_forces_on(
        s: &mut MdSimulation,
        ocfg: &OffloadConfig,
        model: SwModel,
    ) -> OffloadOutcome {
        let cluster = CpeCluster::new(model);
        exchange_ghosts(&mut s.lnl, &mut Loopback, GhostPhase::Positions);
        let interior = s.interior.clone();
        let pot = s.pot.clone();
        offload_compute_forces(&mut s.lnl, &pot, &cluster, ocfg, &interior, |l| {
            exchange_ghosts(l, &mut Loopback, GhostPhase::Fp)
        })
    }

    fn offload_forces(s: &mut MdSimulation, ocfg: &OffloadConfig) -> OffloadOutcome {
        offload_forces_on(s, ocfg, SwModel::sw26010())
    }

    #[test]
    fn offload_matches_serial_forces() {
        let mut s1 = sim();
        let mut t = Loopback;
        let serial = s1.compute_forces(&mut t);
        let mut s2 = sim();
        let out = offload_forces(&mut s2, &OffloadConfig::optimized());
        assert!((out.pair_energy - serial.pair).abs() < 1e-9, "pair energy");
        assert!(
            (out.embed_energy - serial.embed).abs() < 1e-9,
            "embed energy"
        );
        for &site in &s1.interior {
            for ax in 0..3 {
                assert!(
                    (s1.lnl.force[site][ax] - s2.lnl.force[site][ax]).abs() < 1e-10,
                    "force mismatch at {site}"
                );
            }
        }
    }

    #[test]
    fn traditional_mode_matches_too() {
        let mut s1 = sim();
        s1.table_form = TableForm::Traditional;
        let serial = s1.compute_forces(&mut Loopback);
        let mut s2 = sim();
        let out = offload_forces(&mut s2, &OffloadConfig::traditional());
        assert!((out.pair_energy - serial.pair).abs() < 1e-9);
    }

    #[test]
    fn fig9_ordering_traditional_slowest() {
        // Use 8 CPEs so each slab holds several realistic blocks.
        let model = SwModel {
            n_cpes: 8,
            ..SwModel::sw26010()
        };
        let mut times = Vec::new();
        for (name, mut ocfg) in OffloadConfig::fig9_variants() {
            ocfg.block_sites = 64;
            let mut s = sim();
            let out = offload_forces_on(&mut s, &ocfg, model);
            times.push((name, out.kernel_time()));
        }
        // Compaction should win big (paper: ≈2.2×); each added
        // optimisation must not hurt.
        let ratio = times[0].1 / times[1].1;
        assert!(ratio > 1.5, "compaction ratio {ratio:.2}: {times:?}");
        assert!(times[2].1 <= times[1].1 * 1.001, "{times:?}");
        assert!(times[3].1 <= times[2].1 * 1.001, "{times:?}");
    }

    #[test]
    fn traditional_table_never_resident() {
        let mut s = sim();
        let out = offload_forces(&mut s, &OffloadConfig::traditional());
        // Every neighbour interaction paid table-row gathers.
        assert!(out.density.counters.dma_gets > s.interior.len() as u64 * 10);
    }

    #[test]
    fn ldm_high_water_within_declared_plan() {
        // Every Fig. 9 variant's declared symbolic plan must (a) pass
        // the budget prover and (b) upper-bound what the kernels
        // actually kept live in the capacity-enforced store.
        let variants = OffloadConfig::fig9_variants()
            .into_iter()
            .chain([("Optimized+BatchedLanes", OffloadConfig::optimized())]);
        for (name, ocfg) in variants {
            let plans = ocfg.ldm_plans(name, 5000);
            let worst = plans
                .iter()
                .map(|p| p.total_bytes())
                .max()
                .expect("every config has sweeps");
            for plan in &plans {
                plan.check().unwrap_or_else(|e| panic!("{e}"));
            }
            let mut s = sim();
            let out = offload_forces(&mut s, &ocfg);
            assert!(
                out.density.ldm_high_water <= worst,
                "{name}: density high-water {} exceeds declared plan {worst}",
                out.density.ldm_high_water
            );
            assert!(
                out.force.ldm_high_water <= worst,
                "{name}: force high-water {} exceeds declared plan {worst}",
                out.force.ldm_high_water
            );
            if matches!(ocfg.form, TableForm::Compacted) {
                // Nontrivial bound: the resident table really was live.
                assert!(out.force.ldm_high_water >= 5000 * 8, "{name}");
            }
        }
    }

    #[test]
    fn fitted_block_sites_track_ldm_pressure() {
        let fit = |reuse, db, batched| {
            OffloadConfig::fit_block_sites(TableForm::Compacted, reuse, db, batched, 5000)
        };
        // Each added optimisation consumes LDM, shrinking the block.
        assert!(fit(false, false, false) >= fit(true, false, false));
        assert!(fit(true, false, false) > fit(true, true, false));
        assert_eq!(fit(false, false, false) % 16, 0);
        // Lane batching reserves 9 × 32 × 8 B = 2304 B of stage/eval
        // buffers, shrinking the fitted block one more notch.
        assert!(fit(true, true, true) < fit(true, true, false));
        assert_eq!(fit(true, true, true) % 16, 0);
        // Traditional tables leave the whole store to block buffers.
        assert_eq!(
            OffloadConfig::fit_block_sites(TableForm::Traditional, false, false, false, 5000),
            OffloadConfig::MAX_BLOCK_SITES
        );
    }

    #[test]
    fn batched_sweeps_match_scalar_sweeps_bitwise() {
        // The batched CPE sweeps must be a pure accounting/layout
        // change: identical ρ, forces, and energies to the scalar
        // sweeps (the batch kernels replay the scalar expressions per
        // lane and accumulation stays in partner order). Block
        // decomposition differs (the lane buffers shrink the fitted
        // block), which may only affect charge counters, never values.
        let scalar_cfg = OffloadConfig {
            batched: false,
            ..OffloadConfig::optimized()
        };
        let mut s1 = sim();
        let scalar = offload_forces(&mut s1, &scalar_cfg);
        let mut s2 = sim();
        let batched = offload_forces(&mut s2, &OffloadConfig::optimized());
        assert_eq!(
            scalar.pair_energy.to_bits(),
            batched.pair_energy.to_bits(),
            "pair energy"
        );
        assert_eq!(
            scalar.embed_energy.to_bits(),
            batched.embed_energy.to_bits(),
            "embed energy"
        );
        assert_eq!(s1.lnl.rho, s2.lnl.rho, "rho");
        assert_eq!(s1.lnl.force, s2.lnl.force, "force");
        // The batch token is charged only on the batched run, and the
        // flop totals reconcile exactly (same arithmetic, different
        // access granularity).
        assert_eq!(scalar.force.counters.table_batches, 0);
        assert!(batched.force.counters.table_batches > 0);
        assert_eq!(
            scalar.density.counters.flops + scalar.force.counters.flops,
            batched.density.counters.flops + batched.force.counters.flops,
        );
    }

    #[test]
    fn data_reuse_reduces_gather_bytes() {
        let model = SwModel {
            n_cpes: 8,
            ..SwModel::sw26010()
        };
        let base = OffloadConfig {
            form: TableForm::Compacted,
            data_reuse: false,
            double_buffer: false,
            batched: false,
            block_sites: 64,
        };
        let mut s1 = sim();
        let no_reuse = offload_forces_on(&mut s1, &base, model);
        let mut s2 = sim();
        let reuse = offload_forces_on(
            &mut s2,
            &OffloadConfig {
                data_reuse: true,
                ..base
            },
            model,
        );
        assert!(
            reuse.density.counters.bytes_in < no_reuse.density.counters.bytes_in,
            "reuse {} !< no-reuse {}",
            reuse.density.counters.bytes_in,
            no_reuse.density.counters.bytes_in
        );
    }
}
