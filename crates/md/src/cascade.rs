//! Cascade-collision setup: the primary knock-on atom (PKA).
//!
//! The paper's MD phase "simulates the defect generation caused by
//! cascade collision" under irradiation: a recoil atom receives keV-scale
//! kinetic energy and displaces lattice atoms as it thermalises.

use mmds_eam::units::KE_CONV;
use mmds_lattice::lnl::LatticeNeighborList;

/// Gives the atom at `site` kinetic energy `energy_ev` along
/// `direction` (normalised internally). Returns the speed in Å/ps.
pub fn launch_pka(
    l: &mut LatticeNeighborList,
    site: usize,
    energy_ev: f64,
    direction: [f64; 3],
    mass_amu: f64,
) -> f64 {
    assert!(l.id[site] >= 0, "PKA site must hold an atom");
    assert!(energy_ev > 0.0);
    let norm =
        (direction[0] * direction[0] + direction[1] * direction[1] + direction[2] * direction[2])
            .sqrt();
    assert!(norm > 0.0, "PKA direction must be nonzero");
    let speed = (2.0 * energy_ev / (mass_amu * KE_CONV)).sqrt();
    for ax in 0..3 {
        l.vel[site][ax] = speed * direction[ax] / norm;
    }
    speed
}

/// The conventional non-channelling PKA direction ⟨135⟩ used by cascade
/// studies (avoids artificial channelling along symmetry axes).
pub const PKA_DIRECTION: [f64; 3] = [1.0, 3.0, 5.0];

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_eam::units::MASS_FE;
    use mmds_lattice::{BccGeometry, LocalGrid};

    #[test]
    fn pka_speed_matches_energy() {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(5), 2);
        let mut l = mmds_lattice::LatticeNeighborList::perfect(grid, 5.0);
        let s = l.grid.site_id(4, 4, 4, 0);
        let speed = launch_pka(&mut l, s, 500.0, PKA_DIRECTION, MASS_FE);
        let v2: f64 = l.vel[s].iter().map(|v| v * v).sum();
        let ke = 0.5 * MASS_FE * v2 * KE_CONV;
        assert!((ke - 500.0).abs() < 1e-9, "KE = {ke}");
        assert!((v2.sqrt() - speed).abs() < 1e-12);
        // 500 eV Fe recoil ≈ 415 Å/ps.
        assert!((400.0..450.0).contains(&speed), "speed {speed}");
    }

    #[test]
    #[should_panic(expected = "PKA site must hold an atom")]
    fn pka_on_vacancy_rejected() {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(4), 2);
        let mut l = mmds_lattice::LatticeNeighborList::perfect(grid, 5.0);
        let s = l.grid.site_id(3, 3, 3, 0);
        l.make_vacancy(s);
        launch_pka(&mut l, s, 100.0, PKA_DIRECTION, MASS_FE);
    }
}
