//! MD configuration.

use serde::{Deserialize, Serialize};

/// Parameters of an MD run. Defaults follow the paper's §3 setup
/// (Fe at 600 K, a₀ = 2.855 Å, Δt = 1 fs).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MdConfig {
    /// Lattice constant (Å).
    pub a0: f64,
    /// Interaction cutoff (Å).
    pub cutoff: f64,
    /// Extra margin added to the *offset generation* cutoff so thermally
    /// displaced atoms still find every partner (Å).
    pub offset_margin: f64,
    /// Time step (ps). The paper uses 1 fs.
    pub dt: f64,
    /// Target temperature (K).
    pub temperature: f64,
    /// Berendsen thermostat time constant (ps); `None` runs NVE.
    pub thermostat_tau: Option<f64>,
    /// Displacement (fraction of the 1NN distance) beyond which an atom
    /// is promoted to a run-away.
    pub runaway_threshold: f64,
    /// Capture radius (fraction of 1NN) within which a run-away
    /// re-occupies a vacancy.
    pub capture_radius: f64,
    /// Interpolation-table knots (the paper uses 5000).
    pub table_knots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MdConfig {
    fn default() -> Self {
        Self {
            a0: 2.855,
            cutoff: 5.0,
            offset_margin: 0.6,
            dt: 0.001,
            temperature: 600.0,
            thermostat_tau: Some(0.1),
            runaway_threshold: 0.5,
            capture_radius: 0.3,
            table_knots: 5000,
            seed: 0x5EED_0001,
        }
    }
}

impl MdConfig {
    /// The 1NN distance for this lattice constant.
    pub fn nn1(&self) -> f64 {
        0.5 * 3.0_f64.sqrt() * self.a0
    }

    /// Absolute run-away promotion threshold (Å).
    pub fn runaway_distance(&self) -> f64 {
        self.runaway_threshold * self.nn1()
    }

    /// Absolute vacancy capture radius (Å).
    pub fn capture_distance(&self) -> f64 {
        self.capture_radius * self.nn1()
    }

    /// Cutoff used when generating static neighbour offsets.
    pub fn offsets_cutoff(&self) -> f64 {
        self.cutoff + self.offset_margin
    }

    /// Per-rank RNG seed, decorrelated across ranks.
    pub fn rank_seed(&self, rank: usize) -> u64 {
        self.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MdConfig::default();
        assert_eq!(c.a0, 2.855);
        assert_eq!(c.dt, 0.001); // 1 fs in ps
        assert_eq!(c.temperature, 600.0);
        assert_eq!(c.table_knots, 5000);
    }

    #[test]
    fn derived_distances() {
        let c = MdConfig::default();
        assert!((c.nn1() - 2.472_42).abs() < 1e-3);
        assert!(c.runaway_distance() > c.capture_distance());
        assert!(c.offsets_cutoff() > c.cutoff);
    }

    #[test]
    fn rank_seeds_differ() {
        let c = MdConfig::default();
        assert_ne!(c.rank_seed(0), c.rank_seed(1));
        assert_eq!(c.rank_seed(3), c.rank_seed(3));
    }
}
