//! The MD driver: velocity-Verlet time stepping over any [`Transport`].

use mmds_eam::analytic::Species;
use mmds_eam::{EamPotential, TableForm};
use mmds_lattice::{BccGeometry, LatticeNeighborList, LocalGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::census::Observatory;
use crate::config::MdConfig;
use crate::defects::{count, DefectCount};
use crate::domain::{exchange_ghosts, migrate_runaways, GhostPhase, Loopback, Transport};
use crate::force::{
    density_pass_plan, embedding_pass_with, force_pass_plan, EnergySample, GatherPlan, PassConfig,
};
use crate::integrate::{
    drift, kick, kinetic_energy, maxwell_boltzmann, momentum_norm, n_moving, temperature,
};
use crate::runaway::{apply_transitions, TransitionStats};
use crate::thermostat::berendsen;

/// One step's observables.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StepSample {
    /// Pair energy (eV).
    pub pair: f64,
    /// Embedding energy (eV).
    pub embed: f64,
    /// Kinetic energy (eV).
    pub kinetic: f64,
    /// Instantaneous temperature (K).
    pub temperature: f64,
}

impl StepSample {
    /// Total energy (eV).
    pub fn total(&self) -> f64 {
        self.pair + self.embed + self.kinetic
    }
}

/// Summary of a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MdReport {
    /// Per-step samples.
    pub samples: Vec<StepSample>,
    /// Accumulated transitions.
    pub transitions_promoted: usize,
    /// Final defect census.
    pub defects: DefectCount,
    /// Simulated time (ps).
    pub time_ps: f64,
}

/// A rank's MD state (or the whole box when single-rank).
pub struct MdSimulation {
    /// Configuration.
    pub cfg: MdConfig,
    /// The Fe EAM potential.
    pub pot: EamPotential,
    /// The lattice neighbor list holding all atom state.
    pub lnl: LatticeNeighborList,
    /// Atomic mass (amu).
    pub mass: f64,
    /// Cached owned-site ids.
    pub interior: Vec<usize>,
    /// Which table machinery evaluates the potential.
    pub table_form: TableForm,
    /// Host execution strategy for the EAM passes (parallel + fused by
    /// default; benchmarks flip the flags to measure the seed path).
    pub pass_config: PassConfig,
    /// Simulated time (ps).
    pub time_ps: f64,
    /// Accumulated transition statistics.
    pub transitions: TransitionStats,
    /// The in-situ defect census (off by default; see
    /// [`crate::census::CensusConfig::cadence`]).
    pub observatory: Observatory,
    /// Steps integrated so far (the census series time axis — it must
    /// stay monotonic across repeated [`MdSimulation::run`] calls).
    pub steps_done: u64,
    forces_current: bool,
    /// Per-step SoA gather plan, staged by the density pass and
    /// replayed by the force pass (capacity persists across steps).
    gather_plan: GatherPlan,
}

impl MdSimulation {
    /// Relative total-energy drift beyond which an NVE run increments
    /// `md.health.energy_drift_warn`.
    pub const ENERGY_DRIFT_WARN: f64 = 0.05;

    /// Builds a rank's simulation from its local grid.
    pub fn from_grid(cfg: MdConfig, grid: LocalGrid) -> Self {
        let pot = EamPotential::new(Species::Fe, cfg.table_knots);
        let lnl = LatticeNeighborList::perfect(grid, cfg.offsets_cutoff());
        let interior = lnl.grid.interior_ids().collect();
        Self {
            mass: Species::Fe.mass(),
            cfg,
            pot,
            lnl,
            interior,
            table_form: TableForm::Compacted,
            pass_config: PassConfig::default(),
            time_ps: 0.0,
            transitions: TransitionStats::default(),
            observatory: Observatory::default(),
            steps_done: 0,
            forces_current: false,
            gather_plan: GatherPlan::default(),
        }
    }

    /// Single-rank periodic box of `n` cells per axis.
    pub fn single_box(cfg: MdConfig, n: usize) -> Self {
        let geom = BccGeometry::new(cfg.a0, n, n, n);
        // Ghost width must cover the offsets' reach.
        let ghost = (cfg.offsets_cutoff() / cfg.a0).ceil() as usize;
        Self::from_grid(cfg, LocalGrid::whole(geom, ghost))
    }

    /// Number of owned atoms.
    pub fn n_atoms(&self) -> usize {
        self.interior
            .iter()
            .filter(|&&s| self.lnl.id[s] >= 0)
            .count()
            + self.lnl.n_runaways()
    }

    /// Draws Maxwell–Boltzmann velocities at the configured temperature.
    pub fn init_velocities(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        maxwell_boltzmann(
            &mut self.lnl,
            &self.interior,
            self.mass,
            self.cfg.temperature,
            &mut rng,
        );
        self.forces_current = false;
    }

    /// Computes forces (both passes + ghost refreshes) and returns the
    /// potential-energy sample.
    pub fn compute_forces(&mut self, t: &mut impl Transport) -> EnergySample {
        let _span = mmds_telemetry::span!("md.force");
        {
            let _g = mmds_telemetry::span!("md.ghost");
            exchange_ghosts(&mut self.lnl, t, GhostPhase::Positions);
        }
        density_pass_plan(
            &mut self.lnl,
            &self.pot,
            self.table_form,
            &self.interior,
            self.pass_config,
            &mut self.gather_plan,
        );
        let embed = embedding_pass_with(
            &mut self.lnl,
            &self.pot,
            self.table_form,
            &self.interior,
            self.pass_config,
        );
        {
            let _g = mmds_telemetry::span!("md.ghost");
            exchange_ghosts(&mut self.lnl, t, GhostPhase::Fp);
        }
        let pair = force_pass_plan(
            &mut self.lnl,
            &self.pot,
            self.table_form,
            &self.interior,
            self.pass_config,
            &self.gather_plan,
        );
        self.forces_current = true;
        EnergySample { pair, embed }
    }

    /// Advances one velocity-Verlet step; returns the step observables.
    pub fn step(&mut self, t: &mut impl Transport) -> StepSample {
        let _span = mmds_telemetry::span!("md.step");
        if !self.forces_current {
            self.compute_forces(t);
        }
        let dt = self.cfg.dt;
        kick(&mut self.lnl, &self.interior, 0.5 * dt, self.mass);
        drift(&mut self.lnl, &self.interior, dt);
        let st = apply_transitions(&mut self.lnl, &self.cfg, &self.interior);
        self.transitions = self.transitions.merge(&st);
        migrate_runaways(&mut self.lnl, t);
        let pe = self.compute_forces(t);
        kick(&mut self.lnl, &self.interior, 0.5 * dt, self.mass);
        if let Some(tau) = self.cfg.thermostat_tau {
            berendsen(
                &mut self.lnl,
                &self.interior,
                self.mass,
                self.cfg.temperature,
                dt,
                tau,
            );
        }
        self.time_ps += dt;
        self.steps_done += 1;
        StepSample {
            pair: pe.pair,
            embed: pe.embed,
            kinetic: kinetic_energy(&self.lnl, &self.interior, self.mass),
            temperature: temperature(&self.lnl, &self.interior, self.mass),
        }
    }

    /// Runs `n` steps and collects a report.
    pub fn run(&mut self, t: &mut impl Transport, n: usize) -> MdReport {
        let _span = mmds_telemetry::span!("md.run");
        let observe = mmds_telemetry::enabled();
        let mut samples = Vec::with_capacity(n);
        // Physics-health baselines, fixed at the first observed step.
        let mut e0: Option<f64> = None;
        let mut p0 = 0.0f64;
        let hb_total = self.steps_done + n as u64;
        for i in 0..n {
            let s = self.step(t);
            mmds_telemetry::emit_heartbeat("md.heartbeat", self.steps_done, hb_total);
            if observe {
                // The defect census is O(sites); only pay for it when
                // somebody is listening.
                let d = count(&self.lnl);
                let total = s.total();
                let e0 = *e0.get_or_insert(total);
                let energy_drift = if e0.abs() > 0.0 {
                    (total - e0) / e0.abs()
                } else {
                    0.0
                };
                let p = momentum_norm(&self.lnl, &self.interior, self.mass);
                if i == 0 {
                    p0 = p;
                }
                let sample = mmds_telemetry::MdStepSample {
                    step: i as u64,
                    kinetic: s.kinetic,
                    potential: s.pair + s.embed,
                    runaways: self.lnl.n_runaways() as u64,
                    vacancies: d.vacancies as u64,
                    interstitials: d.interstitials as u64,
                    energy_drift,
                    momentum_norm: p,
                };
                // Health gates. Energy drift is only a conservation
                // statement without a thermostat (NVE); momentum may
                // legitimately move when atoms migrate between ranks,
                // so the bound is loose and scale-aware.
                if self.cfg.thermostat_tau.is_none() && energy_drift.abs() > Self::ENERGY_DRIFT_WARN
                {
                    mmds_telemetry::add_counter("md.health.energy_drift_warn", 1.0);
                }
                let p_bound = (10.0 * p0).max(1e-6 * n_moving(&self.lnl, &self.interior) as f64);
                if p > p_bound {
                    mmds_telemetry::add_counter("md.health.momentum_warn", 1.0);
                }
                mmds_telemetry::global().counters().push_md(sample);
                mmds_telemetry::emit(mmds_telemetry::Event::Md(sample));
                // In-situ defect census at the configured cadence: a
                // read-only double-buffered pass that streams the
                // `census.*` series (see [`crate::census`]).
                if self.observatory.due(self.steps_done as usize) {
                    self.observatory.observe(
                        &self.lnl,
                        &self.interior,
                        self.pass_config.parallel,
                        self.steps_done,
                    );
                }
            }
            samples.push(s);
        }
        MdReport {
            samples,
            transitions_promoted: self.transitions.promoted,
            defects: count(&self.lnl),
            time_ps: self.time_ps,
        }
    }

    /// Convenience: single-rank run with the loopback transport.
    pub fn run_local(&mut self, n: usize) -> MdReport {
        self.run(&mut Loopback, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MdConfig {
        MdConfig {
            table_knots: 1200,
            thermostat_tau: None,
            ..Default::default()
        }
    }

    #[test]
    fn cold_lattice_stays_put() {
        let mut sim = MdSimulation::single_box(small_cfg(), 4);
        let rep = sim.run_local(5);
        assert_eq!(rep.defects, DefectCount::default());
        assert!(rep.samples[4].kinetic < 1e-9);
        assert!((rep.time_ps - 0.005).abs() < 1e-12);
    }

    #[test]
    fn nve_energy_is_conserved() {
        let mut cfg = small_cfg();
        cfg.temperature = 300.0;
        let mut sim = MdSimulation::single_box(cfg, 4);
        sim.init_velocities();
        let first = sim.step(&mut Loopback);
        let e0 = first.total();
        let mut last = first;
        for _ in 0..60 {
            last = sim.step(&mut Loopback);
        }
        let drift = (last.total() - e0).abs() / e0.abs();
        assert!(
            drift < 2e-4,
            "energy drift {drift:.3e} (e0={e0}, e={})",
            last.total()
        );
    }

    #[test]
    fn thermostat_holds_temperature() {
        let mut cfg = small_cfg();
        cfg.thermostat_tau = Some(0.05);
        cfg.temperature = 600.0;
        let mut sim = MdSimulation::single_box(cfg, 4);
        sim.init_velocities();
        let mut t_last = 0.0;
        for _ in 0..80 {
            t_last = sim.step(&mut Loopback).temperature;
        }
        assert!((t_last - 600.0).abs() < 120.0, "T = {t_last}");
    }

    #[test]
    fn cascade_creates_frenkel_pairs() {
        let mut cfg = small_cfg();
        cfg.thermostat_tau = Some(0.02);
        cfg.temperature = 50.0;
        let mut sim = MdSimulation::single_box(cfg, 6);
        let pka = sim.lnl.grid.site_id(5, 5, 5, 0);
        crate::cascade::launch_pka(
            &mut sim.lnl,
            pka,
            150.0,
            crate::cascade::PKA_DIRECTION,
            sim.mass,
        );
        let rep = sim.run_local(40);
        assert!(
            rep.transitions_promoted > 0,
            "PKA must displace at least one atom"
        );
        // Bookkeeping stays balanced: every run-away left a vacancy.
        assert!(rep.defects.vacancies >= rep.defects.interstitials);
        assert!(sim.n_atoms() == sim.interior.len(), "no atoms lost");
    }

    #[test]
    fn atom_count_is_invariant() {
        let mut cfg = small_cfg();
        cfg.temperature = 900.0;
        cfg.thermostat_tau = Some(0.05);
        let mut sim = MdSimulation::single_box(cfg, 4);
        sim.init_velocities();
        let n0 = sim.n_atoms();
        sim.run_local(30);
        assert_eq!(sim.n_atoms(), n0);
    }
}
