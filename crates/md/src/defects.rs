//! Defect accounting: vacancies, interstitials, Frenkel pairs.
//!
//! MD "outputs the coordinates of vacancy and the information of atoms"
//! for the KMC stage (§2.2). The lattice neighbor list makes vacancy
//! detection free (negative IDs); an independent Wigner–Seitz-style
//! occupancy analysis cross-checks the bookkeeping from raw positions.

use mmds_lattice::lnl::LatticeNeighborList;
use serde::{Deserialize, Serialize};

/// Defect census of a subdomain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefectCount {
    /// Vacant lattice sites.
    pub vacancies: usize,
    /// Off-lattice (run-away) atoms.
    pub interstitials: usize,
}

impl DefectCount {
    /// Frenkel pairs = min(vacancies, interstitials).
    pub fn frenkel_pairs(&self) -> usize {
        self.vacancies.min(self.interstitials)
    }
}

/// Census from the lattice-neighbor-list bookkeeping.
pub fn count(l: &LatticeNeighborList) -> DefectCount {
    DefectCount {
        vacancies: l.n_vacancies(),
        interstitials: l.n_runaways(),
    }
}

/// Independent Wigner–Seitz occupancy analysis: every owned atom
/// (on-site or run-away) is assigned to its nearest lattice site; an
/// interior site with zero occupants is a vacancy, each occupant beyond
/// the first is an interstitial.
pub fn wigner_seitz(l: &LatticeNeighborList, interior: &[usize]) -> DefectCount {
    let mut occupancy = vec![0u32; l.n_sites()];
    for &s in interior {
        if l.id[s] >= 0 {
            if let Some(n) = l.nearest_local_site(l.pos[s]) {
                occupancy[n] += 1;
            }
        }
    }
    for i in l.live_runaways() {
        if let Some(n) = l.nearest_local_site(l.runaway(i).pos) {
            occupancy[n] += 1;
        }
    }
    let mut vac = 0;
    let mut int = 0;
    for &s in interior {
        match occupancy[s] {
            0 => vac += 1,
            k => int += (k - 1) as usize,
        }
    }
    DefectCount {
        vacancies: vac,
        interstitials: int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_lattice::{BccGeometry, LocalGrid};

    fn setup() -> (LatticeNeighborList, Vec<usize>) {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(5), 2);
        let l = LatticeNeighborList::perfect(grid, 5.0);
        let ids = l.grid.interior_ids().collect();
        (l, ids)
    }

    #[test]
    fn perfect_lattice_has_no_defects() {
        let (l, ids) = setup();
        assert_eq!(count(&l), DefectCount::default());
        assert_eq!(wigner_seitz(&l, &ids), DefectCount::default());
    }

    #[test]
    fn frenkel_pair_detected_by_both_methods() {
        let (mut l, ids) = setup();
        let s = l.grid.site_id(4, 4, 4, 0);
        let id = l.make_vacancy(s);
        // Park the displaced atom between sites (an interstitial).
        let home = l.grid.site_id(4, 4, 4, 1);
        let hp = l.grid.site_position(4, 4, 4, 1);
        l.add_runaway(home, id, [hp[0] + 0.9, hp[1] + 0.2, hp[2]], [0.0; 3]);
        let c = count(&l);
        assert_eq!(
            c,
            DefectCount {
                vacancies: 1,
                interstitials: 1
            }
        );
        assert_eq!(c.frenkel_pairs(), 1);
        let ws = wigner_seitz(&l, &ids);
        assert_eq!(ws.vacancies, 1);
        assert_eq!(ws.interstitials, 1);
    }

    #[test]
    fn replacement_leaves_no_interstitial() {
        let (mut l, ids) = setup();
        // Atom A runs away and lands exactly on a *vacant* neighbour
        // site: Wigner-Seitz sees one vacancy, zero interstitials.
        let s = l.grid.site_id(4, 4, 4, 0);
        let id = l.make_vacancy(s);
        let dst = l.grid.site_id(4, 4, 4, 1);
        let dp = l.grid.site_position(4, 4, 4, 1);
        l.make_vacancy(dst);
        l.occupy(dst, id, dp, [0.0; 3]);
        let ws = wigner_seitz(&l, &ids);
        assert_eq!(
            ws,
            DefectCount {
                vacancies: 1,
                interstitials: 0
            }
        );
    }
}
