//! In-situ defect census: the streaming science-observability pass.
//!
//! The paper's coupled workflow hands MD damage states to KMC and reads
//! the defect population offline. This module instead measures the
//! defect evolution *while the cascade runs*: at a configurable cadence
//! a read-only sweep gathers the vacancy/interstitial positions, the
//! vacancy set is clustered with the union-find machinery from
//! `mmds-analysis`, and the resulting observables stream out as
//! monotonic `census.*` telemetry series keyed by MD step.
//!
//! Design constraints, in order:
//!
//! * **Never perturb the dynamics.** The sweep takes `&` borrows only,
//!   draws no randomness, and mutates nothing but the observatory's own
//!   scratch buffers — so trajectories are bitwise identical with the
//!   census on or off (asserted by the coupled integration tests).
//! * **Never stall the hot path's working set.** Positions are gathered
//!   into the *back* buffer of a double-buffered pair via the same
//!   chunked decomposition the force passes use
//!   ([`crate::force::chunked_map`]); the buffers then swap and the
//!   clustering analysis runs against the stable *front* snapshot,
//!   decoupled from the lattice arrays. Buffer capacity is reused
//!   across passes, so the steady state allocates nothing.
//! * **Bitwise determinism.** The chunked sweep preserves site order
//!   regardless of thread count, and the clustering consumes the
//!   ordered position list; equal inputs give equal series.

use mmds_analysis::clusters::{cluster_sizes, size_histogram};
use mmds_lattice::LatticeNeighborList;
use serde::{Deserialize, Serialize};

use crate::force::chunked_map;

/// Number of cluster-size histogram buckets streamed per census pass.
/// Bucket `k` counts clusters of size `k + 1`; the last bucket folds in
/// every larger cluster (see [`mmds_analysis::clusters::size_histogram`]).
pub const HIST_BINS: usize = 6;

/// Series names for the histogram buckets, spelled out as literals so
/// the telemetry counter-manifest audit can account for them lexically.
pub const HIST_SERIES: [&str; HIST_BINS] = [
    "census.cluster_hist.b1",
    "census.cluster_hist.b2",
    "census.cluster_hist.b3",
    "census.cluster_hist.b4",
    "census.cluster_hist.b5",
    "census.cluster_hist.b6plus",
];

/// Census cadence and clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CensusConfig {
    /// Run the census every `cadence` MD steps; `0` disables it.
    pub cadence: usize,
    /// Linking radius for vacancy clustering (Å); `0.0` derives the
    /// conventional `1.2 ×` second-neighbour distance from the grid.
    pub r_link: f64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        Self {
            cadence: 0,
            r_link: 0.0,
        }
    }
}

impl CensusConfig {
    /// A census every `cadence` steps with the derived linking radius.
    pub fn every(cadence: usize) -> Self {
        Self {
            cadence,
            ..Self::default()
        }
    }

    /// The effective linking radius for a lattice with second-neighbour
    /// distance `nn2` (Å).
    pub fn link_radius(&self, nn2: f64) -> f64 {
        if self.r_link > 0.0 {
            self.r_link
        } else {
            1.2 * nn2
        }
    }
}

/// One census pass's observables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensusSample {
    /// MD step the pass observed (the series time axis).
    pub t: u64,
    /// Interior vacancy sites.
    pub vacancies: usize,
    /// Live (owned) run-away interstitials.
    pub interstitials: usize,
    /// Frenkel pairs: `min(vacancies, interstitials)`.
    pub frenkel_pairs: usize,
    /// Vacancies per interior lattice site.
    pub vacancy_concentration: f64,
    /// Size of the largest vacancy cluster (0 when defect-free).
    pub largest_cluster: usize,
    /// Cluster-size histogram, [`HIST_BINS`] buckets.
    pub hist: Vec<usize>,
}

/// The double-buffered census executor.
///
/// Owns two position buffers: `back` is the sweep target, `front` the
/// stable snapshot the clustering analysis reads. [`Observatory::pass`]
/// fills `back`, swaps, then analyses `front` — so the part that
/// borrows the lattice is exactly one ordered chunked sweep, and
/// everything downstream runs on observatory-owned memory.
#[derive(Debug, Default)]
pub struct Observatory {
    /// Configuration.
    pub cfg: CensusConfig,
    front: Vec<[f64; 3]>,
    back: Vec<[f64; 3]>,
    passes: u64,
}

impl Observatory {
    /// Creates an observatory with the given cadence/clustering config.
    pub fn new(cfg: CensusConfig) -> Self {
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// Whether the census runs after step `step` (1-based step count).
    pub fn due(&self, step: usize) -> bool {
        self.cfg.cadence > 0 && step.is_multiple_of(self.cfg.cadence)
    }

    /// Number of passes executed so far.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// The most recent vacancy-position snapshot (the front buffer).
    pub fn snapshot(&self) -> &[[f64; 3]] {
        &self.front
    }

    /// Runs one census pass at MD step `t` over the interior sites.
    ///
    /// `parallel` selects the chunked-parallel sweep (order-preserving
    /// either way, so the sample is identical for both settings).
    pub fn pass(
        &mut self,
        l: &LatticeNeighborList,
        interior: &[usize],
        parallel: bool,
        t: u64,
    ) -> CensusSample {
        let _span = mmds_telemetry::span!("md.census");
        // Sweep: the same fixed-chunk decomposition as the force
        // passes, read-only, emitting per-site vacancy positions in
        // site order.
        let marks: Vec<Option<[f64; 3]>> = chunked_map(interior, parallel, |s| {
            if l.is_vacancy(s) {
                let (i, j, k, b) = l.grid.decode(s);
                Some(l.grid.site_position(i, j, k, b))
            } else {
                None
            }
        });
        self.back.clear();
        self.back.extend(marks.into_iter().flatten());
        std::mem::swap(&mut self.front, &mut self.back);

        // Analysis: runs entirely on the stable front snapshot.
        let geom = &l.grid.global;
        let report = cluster_sizes(
            &self.front,
            geom.box_lengths(),
            self.cfg.link_radius(geom.nn2()),
        );
        let hist = size_histogram(&report.sizes, HIST_BINS);
        let vacancies = self.front.len();
        let interstitials = l.n_runaways();
        self.passes += 1;
        CensusSample {
            t,
            vacancies,
            interstitials,
            frenkel_pairs: vacancies.min(interstitials),
            vacancy_concentration: vacancies as f64 / interior.len().max(1) as f64,
            largest_cluster: report.largest,
            hist,
        }
    }

    /// Runs a pass and streams it as `census.*` telemetry series.
    pub fn observe(
        &mut self,
        l: &LatticeNeighborList,
        interior: &[usize],
        parallel: bool,
        t: u64,
    ) -> CensusSample {
        let sample = self.pass(l, interior, parallel, t);
        emit(&sample);
        sample
    }
}

/// Streams a census sample as monotonic `census.*` telemetry series.
pub fn emit(s: &CensusSample) {
    mmds_telemetry::emit_series("census.vacancies", s.t, s.vacancies as f64);
    mmds_telemetry::emit_series("census.interstitials", s.t, s.interstitials as f64);
    mmds_telemetry::emit_series("census.frenkel_pairs", s.t, s.frenkel_pairs as f64);
    mmds_telemetry::emit_series("census.vacancy_concentration", s.t, s.vacancy_concentration);
    mmds_telemetry::emit_series("census.largest_cluster", s.t, s.largest_cluster as f64);
    for (name, &n) in HIST_SERIES.iter().zip(&s.hist) {
        mmds_telemetry::emit_series(name, s.t, n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MdConfig;
    use crate::sim::MdSimulation;

    fn sim() -> MdSimulation {
        MdSimulation::single_box(
            MdConfig {
                table_knots: 800,
                ..Default::default()
            },
            6,
        )
    }

    #[test]
    fn perfect_lattice_censuses_clean() {
        let s = sim();
        let mut obs = Observatory::new(CensusConfig::every(5));
        let c = obs.pass(&s.lnl, &s.interior, true, 0);
        assert_eq!(c.vacancies, 0);
        assert_eq!(c.interstitials, 0);
        assert_eq!(c.frenkel_pairs, 0);
        assert_eq!(c.largest_cluster, 0);
        assert_eq!(c.hist, vec![0; HIST_BINS]);
        assert_eq!(obs.passes(), 1);
    }

    #[test]
    fn census_counts_match_defect_bookkeeping() {
        let mut s = sim();
        // Knock three adjacent interior atoms out by hand.
        for (di, dj) in [(0usize, 0usize), (1, 0), (0, 1)] {
            let site = s.lnl.grid.site_id(3 + di, 3 + dj, 3, 0);
            s.lnl.make_vacancy(site);
        }
        let mut obs = Observatory::new(CensusConfig::every(1));
        let c = obs.pass(&s.lnl, &s.interior, false, 7);
        let d = crate::defects::count(&s.lnl);
        assert_eq!(c.vacancies, d.vacancies);
        assert_eq!(c.interstitials, d.interstitials);
        assert_eq!(c.frenkel_pairs, d.frenkel_pairs());
        assert_eq!(c.t, 7);
        // The three vacancies sit one lattice constant apart — a single
        // cluster under the 1.2·nn2 linking radius.
        assert_eq!(c.largest_cluster, 3);
        assert_eq!(c.hist[2], 1, "one cluster of size 3");
        assert!(c.vacancy_concentration > 0.0);
    }

    #[test]
    fn sweep_is_identical_serial_and_parallel() {
        let mut s = sim();
        for i in 0..8 {
            let site = s.lnl.grid.site_id(3 + (i % 3), 3 + (i / 3), 4, i % 2);
            s.lnl.make_vacancy(site);
        }
        let mut a = Observatory::new(CensusConfig::every(1));
        let mut b = Observatory::new(CensusConfig::every(1));
        let ca = a.pass(&s.lnl, &s.interior, false, 1);
        let cb = b.pass(&s.lnl, &s.interior, true, 1);
        assert_eq!(ca, cb, "chunked sweep must preserve site order");
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn double_buffer_reuses_capacity() {
        let mut s = sim();
        let site = s.lnl.grid.site_id(4, 4, 4, 0);
        s.lnl.make_vacancy(site);
        let mut obs = Observatory::new(CensusConfig::every(1));
        obs.pass(&s.lnl, &s.interior, false, 0);
        let cap0 = obs.front.capacity();
        for t in 1..6 {
            obs.pass(&s.lnl, &s.interior, false, t);
        }
        // Same population each pass: both buffers settle and no
        // steady-state growth occurs.
        assert_eq!(obs.front.capacity().max(cap0), obs.front.capacity());
        assert_eq!(obs.passes(), 6);
        assert_eq!(obs.snapshot().len(), 1);
    }

    #[test]
    fn cadence_gates_passes() {
        let obs = Observatory::new(CensusConfig::every(10));
        assert!(!obs.due(5));
        assert!(obs.due(10));
        assert!(obs.due(20));
        let off = Observatory::new(CensusConfig::default());
        assert!(!off.due(10));
    }

    #[test]
    fn link_radius_defaults_to_1_2_nn2() {
        let cfg = CensusConfig::every(1);
        assert!((cfg.link_radius(2.8665) - 1.2 * 2.8665).abs() < 1e-12);
        let fixed = CensusConfig {
            cadence: 1,
            r_link: 4.0,
        };
        assert!((fixed.link_radius(2.8665) - 4.0).abs() < 1e-12);
    }
}
