//! Run-away transitions (paper §2.1.1, Fig. 3).
//!
//! After each drift:
//! * an on-site atom displaced beyond the threshold leaves a **vacancy**
//!   behind and becomes a run-away anchored at its nearest lattice point;
//! * a run-away close enough to a **vacant** lattice point re-occupies
//!   it ("the information of the vacancy in the array is overlapped by
//!   the run-away atom");
//! * a run-away that drifted nearer to a different lattice point is
//!   re-anchored there ("linked to the entry of the nearest lattice
//!   point").
//!
//! On a single-rank whole-box grid, positions and anchors are
//! canonicalized into the primary periodic image; in multi-rank runs a
//! run-away anchored in the ghost shell is an **emigrant** and is
//! transferred to its owner by `domain::migrate_runaways`.

use mmds_lattice::lnl::LatticeNeighborList;
use serde::{Deserialize, Serialize};

use crate::config::MdConfig;

/// What one transition sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionStats {
    /// Atoms promoted to run-aways (vacancies created).
    pub promoted: usize,
    /// Run-aways that re-occupied a vacancy.
    pub recaptured: usize,
    /// Run-aways re-anchored to a new nearest site.
    pub rehomed: usize,
}

impl TransitionStats {
    /// Sum of all transition events.
    pub fn total(&self) -> usize {
        self.promoted + self.recaptured + self.rehomed
    }

    /// Merges two sweeps.
    pub fn merge(&self, o: &TransitionStats) -> TransitionStats {
        TransitionStats {
            promoted: self.promoted + o.promoted,
            recaptured: self.recaptured + o.recaptured,
            rehomed: self.rehomed + o.rehomed,
        }
    }
}

/// True if this grid covers the whole periodic box (single-rank mode).
pub fn is_whole_box(l: &LatticeNeighborList) -> bool {
    l.grid.len == [l.grid.global.nx, l.grid.global.ny, l.grid.global.nz]
}

/// Wraps a position into the primary box `[0, L)` per axis.
fn wrap_point(l: &LatticeNeighborList, p: [f64; 3]) -> [f64; 3] {
    let lens = l.grid.global.box_lengths();
    [
        p[0].rem_euclid(lens[0]),
        p[1].rem_euclid(lens[1]),
        p[2].rem_euclid(lens[2]),
    ]
}

/// Maps a (possibly ghost) site to its interior image on a whole-box
/// grid, returning the interior site id and the positional offset that
/// must be *added* to a position near the ghost site to move it next to
/// the interior image.
fn interior_image(l: &LatticeNeighborList, site: usize) -> (usize, [f64; 3]) {
    let (i, j, k, b) = l.grid.decode(site);
    if l.grid.is_interior(i, j, k) {
        return (site, [0.0; 3]);
    }
    let g = l.grid.global_cell(i, j, k);
    let gh = l.grid.ghost;
    let (ii, jj, kk) = (g[0] + gh, g[1] + gh, g[2] + gh);
    let img = l.grid.site_id(ii, jj, kk, b);
    let a = l.grid.site_position(ii, jj, kk, b);
    let c = l.grid.site_position(i, j, k, b);
    (img, [a[0] - c[0], a[1] - c[1], a[2] - c[2]])
}

/// One transition sweep over owned sites and run-aways.
pub fn apply_transitions(
    l: &mut LatticeNeighborList,
    cfg: &MdConfig,
    interior: &[usize],
) -> TransitionStats {
    let mut stats = TransitionStats::default();
    let promote2 = cfg.runaway_distance() * cfg.runaway_distance();
    let capture2 = cfg.capture_distance() * cfg.capture_distance();
    let single = is_whole_box(l);

    // Promotion: on-site atoms that strayed too far.
    for &s in interior {
        if l.id[s] < 0 {
            continue;
        }
        let (i, j, k, b) = l.grid.decode(s);
        let lp = l.grid.site_position(i, j, k, b);
        let p = l.pos[s];
        let d2 = (p[0] - lp[0]).powi(2) + (p[1] - lp[1]).powi(2) + (p[2] - lp[2]).powi(2);
        if d2 > promote2 {
            let id = l.make_vacancy(s);
            let vel = l.vel[s];
            let mut pos = p;
            let mut home = l.nearest_local_site(pos).unwrap_or(s);
            if single {
                let (img, off) = interior_image(l, home);
                home = img;
                pos = [pos[0] + off[0], pos[1] + off[1], pos[2] + off[2]];
            }
            l.add_runaway(home, id, pos, vel);
            stats.promoted += 1;
        }
    }

    // Recapture / rehome for existing run-aways.
    for idx in l.live_runaways() {
        let rec = *l.runaway(idx);
        let mut pos = rec.pos;
        if single {
            pos = wrap_point(l, pos);
        }
        let Some(mut nearest) = l.nearest_local_site(pos) else {
            continue; // outside stored region; migration handles it
        };
        if single {
            let (img, off) = interior_image(l, nearest);
            nearest = img;
            pos = [pos[0] + off[0], pos[1] + off[1], pos[2] + off[2]];
        }
        if pos != rec.pos {
            l.runaway_mut(idx).pos = pos;
        }
        let (i, j, k, b) = l.grid.decode(nearest);
        if l.is_vacancy(nearest) && l.grid.is_interior(i, j, k) {
            let lp = l.grid.site_position(i, j, k, b);
            let d2 = (pos[0] - lp[0]).powi(2) + (pos[1] - lp[1]).powi(2) + (pos[2] - lp[2]).powi(2);
            if d2 < capture2 {
                l.remove_runaway(idx);
                l.occupy(nearest, rec.id, pos, rec.vel);
                stats.recaptured += 1;
                continue;
            }
        }
        if nearest != rec.home as usize {
            l.rehome_runaway(idx, nearest);
            stats.rehomed += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_lattice::{BccGeometry, LatticeNeighborList, LocalGrid};

    fn setup() -> (LatticeNeighborList, MdConfig, Vec<usize>) {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(6), 2);
        let l = LatticeNeighborList::perfect(grid, 5.0);
        let cfg = MdConfig::default();
        let ids = l.grid.interior_ids().collect();
        (l, cfg, ids)
    }

    #[test]
    fn small_displacements_do_nothing() {
        let (mut l, cfg, ids) = setup();
        let s = ids[40];
        l.pos[s][0] += 0.3; // well under 0.5·nn1 ≈ 1.24 Å
        let st = apply_transitions(&mut l, &cfg, &ids);
        assert_eq!(st, TransitionStats::default());
        assert_eq!(l.n_runaways(), 0);
    }

    #[test]
    fn large_displacement_promotes() {
        let (mut l, cfg, ids) = setup();
        let s = l.grid.site_id(4, 4, 4, 0);
        // Push the atom most of the way toward its 1NN (the cell centre).
        let target = l.grid.site_position(4, 4, 4, 1);
        let lp = l.grid.site_position(4, 4, 4, 0);
        l.pos[s] = [
            lp[0] + 0.8 * (target[0] - lp[0]),
            lp[1] + 0.8 * (target[1] - lp[1]),
            lp[2] + 0.8 * (target[2] - lp[2]),
        ];
        let st = apply_transitions(&mut l, &cfg, &ids);
        assert_eq!(st.promoted, 1);
        assert!(l.is_vacancy(s));
        assert_eq!(l.n_runaways(), 1);
        // Anchored at the 1NN site it moved toward.
        let idx = l.live_runaways()[0];
        assert_eq!(l.runaway(idx).home as usize, l.grid.site_id(4, 4, 4, 1));
    }

    #[test]
    fn runaway_recaptures_vacancy() {
        let (mut l, cfg, ids) = setup();
        let v = l.grid.site_id(4, 4, 4, 1);
        l.make_vacancy(v);
        let lp = l.grid.site_position(4, 4, 4, 1);
        let anchor = l.grid.site_id(4, 4, 4, 0);
        l.add_runaway(anchor, 9999, [lp[0] + 0.1, lp[1], lp[2]], [1.0, 0.0, 0.0]);
        let st = apply_transitions(&mut l, &cfg, &ids);
        assert_eq!(st.recaptured, 1);
        assert!(!l.is_vacancy(v));
        assert_eq!(l.id[v], 9999);
        assert_eq!(l.vel[v], [1.0, 0.0, 0.0]);
        assert_eq!(l.n_runaways(), 0);
    }

    #[test]
    fn runaway_rehomes_when_it_drifts() {
        let (mut l, cfg, ids) = setup();
        let anchor = l.grid.site_id(4, 4, 4, 0);
        // Occupied nearest site (4,4,4,1): cannot recapture, but the
        // run-away should re-anchor there.
        let near = l.grid.site_position(4, 4, 4, 1);
        let idx = l.add_runaway(anchor, 7777, [near[0] + 0.05, near[1], near[2]], [0.0; 3]);
        let st = apply_transitions(&mut l, &cfg, &ids);
        assert_eq!(st.rehomed, 1);
        assert_eq!(st.recaptured, 0);
        assert_eq!(l.runaway(idx).home as usize, l.grid.site_id(4, 4, 4, 1));
    }

    #[test]
    fn occupied_site_is_not_recaptured() {
        let (mut l, cfg, ids) = setup();
        let anchor = l.grid.site_id(4, 4, 4, 1);
        let lp = l.grid.site_position(4, 4, 4, 1);
        // Run-away right on top of an *occupied* site: no recapture.
        l.add_runaway(anchor, 5555, [lp[0] + 0.05, lp[1], lp[2]], [0.0; 3]);
        let st = apply_transitions(&mut l, &cfg, &ids);
        assert_eq!(st.recaptured, 0);
        assert_eq!(l.n_runaways(), 1);
    }

    #[test]
    fn runaway_crossing_the_periodic_boundary_canonicalizes() {
        let (mut l, cfg, ids) = setup();
        // A run-away just past the box's upper-x face.
        let lens = l.grid.global.box_lengths();
        let anchor = l.grid.site_id(7, 4, 4, 0); // interior edge cell (global 5)
        let idx = l.add_runaway(
            anchor,
            4242,
            [lens[0] + 0.1, 4.0 * 2.855, 4.0 * 2.855],
            [0.0; 3],
        );
        apply_transitions(&mut l, &cfg, &ids);
        let rec = *l.runaway(idx);
        // Wrapped home: global cell 0 → storage cell ghost+0 = 2 (interior).
        let (i, j, k, _) = l.grid.decode(rec.home as usize);
        assert!(l.grid.is_interior(i, j, k), "home must be interior");
        assert!(
            (rec.pos[0] - 0.1).abs() < 1e-9,
            "pos wrapped: {}",
            rec.pos[0]
        );
    }

    #[test]
    fn whole_box_detection() {
        let (l, _, _) = setup();
        assert!(is_whole_box(&l));
        let part = LocalGrid::new(BccGeometry::fe_cube(8), [0, 0, 0], [4, 8, 8], 2);
        let lp = LatticeNeighborList::perfect(part, 5.0);
        assert!(!is_whole_box(&lp));
    }
}
