//! Velocity Verlet integration and velocity initialisation.

use mmds_eam::units::{ACC_CONV, KB, KE_CONV};
use mmds_lattice::lnl::LatticeNeighborList;
use rand::Rng;

/// Half-kick: `v += (dt/2) · f/m` for owned atoms and run-aways.
pub fn kick(l: &mut LatticeNeighborList, interior: &[usize], dt_half: f64, mass: f64) {
    let c = dt_half * ACC_CONV / mass;
    for &s in interior {
        if l.id[s] < 0 {
            continue;
        }
        for ax in 0..3 {
            l.vel[s][ax] += c * l.force[s][ax];
        }
    }
    for i in l.live_runaways() {
        let r = l.runaway_mut(i);
        for ax in 0..3 {
            r.vel[ax] += c * r.force[ax];
        }
    }
}

/// Drift: `x += dt · v` for owned atoms and run-aways.
pub fn drift(l: &mut LatticeNeighborList, interior: &[usize], dt: f64) {
    for &s in interior {
        if l.id[s] < 0 {
            continue;
        }
        for ax in 0..3 {
            l.pos[s][ax] += dt * l.vel[s][ax];
        }
    }
    for i in l.live_runaways() {
        let r = l.runaway_mut(i);
        for ax in 0..3 {
            r.pos[ax] += dt * r.vel[ax];
        }
    }
}

/// Kinetic energy of owned atoms + run-aways (eV).
pub fn kinetic_energy(l: &LatticeNeighborList, interior: &[usize], mass: f64) -> f64 {
    let mut ke = 0.0;
    for &s in interior {
        if l.id[s] < 0 {
            continue;
        }
        let v = l.vel[s];
        ke += 0.5 * mass * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]) * KE_CONV;
    }
    for i in l.live_runaways() {
        let v = l.runaway(i).vel;
        ke += 0.5 * mass * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]) * KE_CONV;
    }
    ke
}

/// Number of moving atoms (owned site atoms + owned run-aways).
pub fn n_moving(l: &LatticeNeighborList, interior: &[usize]) -> usize {
    interior.iter().filter(|&&s| l.id[s] >= 0).count() + l.n_runaways()
}

/// L2 norm of total linear momentum over owned atoms (amu·Å/ps).
/// An isolated (loopback) system conserves this; drift flags an
/// integrator or force-pass bug before energy shows it.
pub fn momentum_norm(l: &LatticeNeighborList, interior: &[usize], mass: f64) -> f64 {
    let mut p = [0.0f64; 3];
    for &s in interior {
        if l.id[s] < 0 {
            continue;
        }
        let v = l.vel[s];
        for k in 0..3 {
            p[k] += mass * v[k];
        }
    }
    for i in l.live_runaways() {
        let v = l.runaway(i).vel;
        for k in 0..3 {
            p[k] += mass * v[k];
        }
    }
    (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt()
}

/// Instantaneous kinetic temperature (K).
pub fn temperature(l: &LatticeNeighborList, interior: &[usize], mass: f64) -> f64 {
    let n = n_moving(l, interior);
    if n == 0 {
        return 0.0;
    }
    2.0 * kinetic_energy(l, interior, mass) / (3.0 * n as f64 * KB)
}

/// Draws Maxwell–Boltzmann velocities at temperature `t_kelvin` and
/// removes the centre-of-mass drift.
pub fn maxwell_boltzmann(
    l: &mut LatticeNeighborList,
    interior: &[usize],
    mass: f64,
    t_kelvin: f64,
    rng: &mut impl Rng,
) {
    let sigma = (KB * t_kelvin / (mass * KE_CONV)).sqrt();
    let mut sum = [0.0; 3];
    let mut n = 0usize;
    for &s in interior {
        if l.id[s] < 0 {
            continue;
        }
        for ax in 0..3 {
            let v = sigma * gaussian(rng);
            l.vel[s][ax] = v;
            sum[ax] += v;
        }
        n += 1;
    }
    if n > 0 {
        let mean = [sum[0] / n as f64, sum[1] / n as f64, sum[2] / n as f64];
        for &s in interior {
            if l.id[s] < 0 {
                continue;
            }
            for ax in 0..3 {
                l.vel[s][ax] -= mean[ax];
            }
        }
    }
}

/// Standard normal deviate via Box–Muller (rand 0.9 keeps Gaussian
/// sampling in `rand_distr`, which we avoid pulling in).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 > 1e-300 {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_lattice::{BccGeometry, LocalGrid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lnl() -> (LatticeNeighborList, Vec<usize>) {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(6), 2);
        let l = LatticeNeighborList::perfect(grid, 5.0);
        let ids = l.grid.interior_ids().collect();
        (l, ids)
    }

    #[test]
    fn maxwell_boltzmann_hits_target_temperature() {
        let (mut l, ids) = lnl();
        let mut rng = StdRng::seed_from_u64(7);
        maxwell_boltzmann(&mut l, &ids, 55.845, 600.0, &mut rng);
        let t = temperature(&l, &ids, 55.845);
        assert!((t - 600.0).abs() / 600.0 < 0.15, "T = {t}");
    }

    #[test]
    fn com_momentum_removed() {
        let (mut l, ids) = lnl();
        let mut rng = StdRng::seed_from_u64(3);
        maxwell_boltzmann(&mut l, &ids, 55.845, 300.0, &mut rng);
        let mut p = [0.0; 3];
        for &s in &ids {
            for ax in 0..3 {
                p[ax] += l.vel[s][ax];
            }
        }
        for ax in 0..3 {
            assert!(p[ax].abs() < 1e-9, "net momentum axis {ax}: {}", p[ax]);
        }
    }

    #[test]
    fn kick_and_drift_move_atoms() {
        let (mut l, ids) = lnl();
        let s = ids[10];
        l.force[s] = [1.0, 0.0, 0.0];
        kick(&mut l, &ids, 0.0005, 55.845);
        assert!(l.vel[s][0] > 0.0);
        let x0 = l.pos[s][0];
        drift(&mut l, &ids, 0.001);
        assert!(l.pos[s][0] > x0);
    }

    #[test]
    fn vacancies_do_not_move() {
        let (mut l, ids) = lnl();
        let s = ids[0];
        l.make_vacancy(s);
        l.force[s] = [100.0, 0.0, 0.0];
        let p0 = l.pos[s];
        kick(&mut l, &ids, 0.0005, 55.845);
        drift(&mut l, &ids, 0.001);
        assert_eq!(l.pos[s], p0);
        assert_eq!(l.vel[s], [0.0; 3]);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn runaways_integrate_too() {
        let (mut l, ids) = lnl();
        let s = ids[5];
        let id = l.make_vacancy(s);
        let idx = l.add_runaway(s, id, [1.0, 1.0, 1.0], [0.0; 3]);
        l.runaway_mut(idx).force = [2.0, 0.0, 0.0];
        kick(&mut l, &ids, 0.001, 55.845);
        assert!(l.runaway(idx).vel[0] > 0.0);
        drift(&mut l, &ids, 0.001);
        assert!(l.runaway(idx).pos[0] > 1.0);
        assert!(kinetic_energy(&l, &ids, 55.845) > 0.0);
    }
}
