//! # mmds-md — Molecular Dynamics engine
//!
//! MD "simulates the defect generation caused by cascade collision, and
//! outputs the coordinates of vacancy and the information of atoms"
//! (§1, §2.1). This crate implements the paper's MD side in full:
//!
//! * Two-pass EAM evaluation over the lattice neighbor list
//!   ([`force`]): density pass → embedding derivative → force pass,
//!   through the interpolation tables of `mmds-eam`.
//! * Velocity Verlet integration, Maxwell–Boltzmann initialisation, and
//!   a Berendsen thermostat ([`integrate`], [`thermostat`]).
//! * Run-away atom transitions ([`runaway`]): an atom displaced past
//!   half the 1NN distance leaves a vacancy behind (negative ID) and
//!   becomes a linked-list run-away at its new nearest site; run-aways
//!   landing on a vacancy re-occupy it.
//! * Cascade setup ([`cascade`]): a primary knock-on atom (PKA).
//! * Domain decomposition with staged 6-direction ghost exchange over
//!   `mmds-swmpi` ([`domain`]).
//! * The CPE offload path ([`offload`]) with the Fig. 9 ablation axes:
//!   traditional vs compacted tables × ghost-data reuse × double
//!   buffering, executed/charged through `mmds-sunway`.

#![forbid(unsafe_code)]
// Fixed-axis coordinate math reads clearest as `for ax in 0..3`.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod cascade;
pub mod census;
pub mod checkpoint;
pub mod config;
pub mod defects;
pub mod domain;
pub mod force;
pub mod integrate;
pub mod offload;
pub mod parallel;
pub mod runaway;
pub mod sim;
pub mod thermostat;

pub use census::{CensusConfig, CensusSample, Observatory};
pub use config::MdConfig;
pub use offload::OffloadConfig;
pub use parallel::{run_parallel_md, ParallelMdParams, RankMdSummary};
pub use sim::{MdReport, MdSimulation};
