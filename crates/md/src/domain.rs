//! Domain decomposition: ghost exchange and run-away migration.
//!
//! "Each computation node (i.e., each process) is responsible for a
//! subdomain. ... each process should communicate with the neighbor
//! processes to exchange the ghost data after each time step" (§2).
//!
//! The exchange is the classic staged 6-direction shift: axis by axis,
//! each rank sends its owned edge slab and fills the opposite ghost
//! slab, where slabs span the *full storage extent* of already-exchanged
//! axes (so edges and corners arrive without extra messages). Ghost
//! atom positions travel as displacements from their lattice points, so
//! periodic wrap-around needs no special casing. Run-away atoms anchored
//! in a slab travel with it; run-aways that left the subdomain are
//! migrated to their owners.

use mmds_lattice::lnl::LatticeNeighborList;
use mmds_swmpi::topology::CartGrid;
use mmds_swmpi::{Comm, Packer, Unpacker};

/// Moves slab payloads between neighbouring subdomains. `Loopback`
/// serves single-rank periodic boxes; [`CommTransport`] serves real
/// rank worlds.
pub trait Transport {
    /// Sends `payload` to the neighbour in `axis`/`toward_high` and
    /// returns the payload arriving from the opposite neighbour.
    fn shift(&mut self, axis: usize, toward_high: bool, payload: Vec<u8>) -> Vec<u8>;
    /// Gathers every rank's bytes (used for run-away migration).
    fn allgather(&mut self, payload: Vec<u8>) -> Vec<Vec<u8>>;
}

/// Single-rank transport: every neighbour is this rank itself.
pub struct Loopback;

impl Transport for Loopback {
    fn shift(&mut self, _axis: usize, _toward_high: bool, payload: Vec<u8>) -> Vec<u8> {
        payload
    }
    fn allgather(&mut self, payload: Vec<u8>) -> Vec<Vec<u8>> {
        vec![payload]
    }
}

/// Transport over a `mmds-swmpi` world with a Cartesian rank grid.
pub struct CommTransport<'a> {
    comm: &'a Comm,
    grid: CartGrid,
    tag_seq: u32,
}

impl<'a> CommTransport<'a> {
    /// Creates a transport; `grid.len()` must equal the world size.
    pub fn new(comm: &'a Comm, grid: CartGrid) -> Self {
        assert_eq!(grid.len(), comm.size(), "rank grid must cover the world");
        Self {
            comm,
            grid,
            tag_seq: 0x4D44_0000, // 'MD'
        }
    }

    /// The rank grid.
    pub fn grid(&self) -> CartGrid {
        self.grid
    }
}

impl Transport for CommTransport<'_> {
    fn shift(&mut self, axis: usize, toward_high: bool, payload: Vec<u8>) -> Vec<u8> {
        let mut d = [0i64; 3];
        d[axis] = if toward_high { 1 } else { -1 };
        let dst = self.grid.neighbor(self.comm.rank(), d);
        let mut back = [0i64; 3];
        back[axis] = -d[axis];
        let src = self.grid.neighbor(self.comm.rank(), back);
        let tag = self.tag_seq;
        self.tag_seq = self.tag_seq.wrapping_add(1);
        self.comm.sendrecv(dst, src, tag, payload)
    }

    fn allgather(&mut self, payload: Vec<u8>) -> Vec<Vec<u8>> {
        self.comm.allgather_bytes(payload)
    }
}

/// Which per-site payload an exchange carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GhostPhase {
    /// Site identity + displaced positions + run-away chains.
    Positions,
    /// Embedding derivatives F'(ρ) (between the two force passes).
    Fp,
}

/// The cell ranges of an exchange slab.
fn slab_ranges(
    l: &LatticeNeighborList,
    axis: usize,
    toward_high: bool,
    sender: bool,
) -> [std::ops::Range<usize>; 3] {
    let g = l.grid.ghost;
    let len = l.grid.len;
    let dims = l.grid.dims();
    let mut r: [std::ops::Range<usize>; 3] = [0..0, 0..0, 0..0];
    for b in 0..3 {
        r[b] = match b.cmp(&axis) {
            std::cmp::Ordering::Less => 0..dims[b],
            std::cmp::Ordering::Greater => g..g + len[b],
            std::cmp::Ordering::Equal => {
                if sender {
                    if toward_high {
                        g + len[b] - g..g + len[b]
                    } else {
                        g..g + g
                    }
                } else {
                    // Receiver: payload sent toward_high arrives from the
                    // low neighbour and fills my low ghost, and vice versa.
                    if toward_high {
                        0..g
                    } else {
                        g + len[b]..dims[b]
                    }
                }
            }
        };
    }
    r
}

fn for_each_slab_site(
    l: &LatticeNeighborList,
    ranges: &[std::ops::Range<usize>; 3],
    mut f: impl FnMut(usize, [f64; 3]),
) {
    for k in ranges[2].clone() {
        for j in ranges[1].clone() {
            for i in ranges[0].clone() {
                for b in 0..2 {
                    let s = l.grid.site_id(i, j, k, b);
                    let lp = l.grid.site_position(i, j, k, b);
                    f(s, lp);
                }
            }
        }
    }
}

fn pack_slab(
    l: &LatticeNeighborList,
    ranges: &[std::ops::Range<usize>; 3],
    phase: GhostPhase,
) -> Vec<u8> {
    let mut p = Packer::new();
    for_each_slab_site(l, ranges, |s, lp| match phase {
        GhostPhase::Positions => {
            p.put_u64(l.id[s] as u64);
            if l.id[s] >= 0 {
                let q = l.pos[s];
                p.put_f64(q[0] - lp[0]);
                p.put_f64(q[1] - lp[1]);
                p.put_f64(q[2] - lp[2]);
            }
            let chain: Vec<_> = l.chain(s).collect();
            p.put_u32(chain.len() as u32);
            for (_, rec) in chain {
                p.put_u64(rec.id as u64);
                p.put_f64(rec.pos[0] - lp[0]);
                p.put_f64(rec.pos[1] - lp[1]);
                p.put_f64(rec.pos[2] - lp[2]);
            }
        }
        GhostPhase::Fp => {
            p.put_f64(l.fp[s]);
            let chain: Vec<_> = l.chain(s).collect();
            p.put_u32(chain.len() as u32);
            for (_, rec) in chain {
                p.put_f64(rec.fp);
            }
        }
    });
    p.finish()
}

fn unpack_slab(
    l: &mut LatticeNeighborList,
    ranges: &[std::ops::Range<usize>; 3],
    phase: GhostPhase,
    bytes: &[u8],
) {
    // Collect the site visit order first (cannot borrow l mutably inside
    // the visitor).
    let mut sites = Vec::new();
    for_each_slab_site(l, ranges, |s, lp| sites.push((s, lp)));
    let mut u = Unpacker::new(bytes);
    for (s, lp) in sites {
        match phase {
            GhostPhase::Positions => {
                let id = u.get_u64() as i64;
                l.id[s] = id;
                if id >= 0 {
                    let d = [u.get_f64(), u.get_f64(), u.get_f64()];
                    l.pos[s] = [lp[0] + d[0], lp[1] + d[1], lp[2] + d[2]];
                } else {
                    l.pos[s] = lp;
                }
                // Replace the ghost chain: records were cleared at the
                // start of the exchange; later axes may overwrite a slab
                // that was already written — drop what's there first.
                let existing: Vec<(u32, bool)> = l.chain(s).map(|(i, r)| (i, r.ghost)).collect();
                for (idx, ghost) in existing {
                    assert!(
                        ghost,
                        "real run-away anchored at ghost site {s} during exchange"
                    );
                    l.remove_runaway(idx);
                }
                let n = u.get_u32() as usize;
                let mut recs = Vec::with_capacity(n);
                for _ in 0..n {
                    let rid = u.get_u64() as i64;
                    let d = [u.get_f64(), u.get_f64(), u.get_f64()];
                    recs.push((rid, [lp[0] + d[0], lp[1] + d[1], lp[2] + d[2]]));
                }
                // Insert reversed so the rebuilt chain iterates in the
                // sender's order (chains are LIFO).
                for (rid, pos) in recs.into_iter().rev() {
                    l.add_ghost_runaway(s, rid, pos, [0.0; 3]);
                }
            }
            GhostPhase::Fp => {
                l.fp[s] = u.get_f64();
                let n = u.get_u32() as usize;
                let chain: Vec<u32> = l.chain(s).map(|(i, _)| i).collect();
                assert_eq!(chain.len(), n, "ghost chain drifted between phases");
                for (idx, _) in chain.into_iter().zip(0..n) {
                    l.runaway_mut(idx).fp = u.get_f64();
                }
            }
        }
    }
    assert!(u.is_exhausted(), "slab payload size mismatch");
}

/// Fills the ghost shell of a single-rank periodic box with this
/// rank's own images: positions + run-away chains, then F' values.
/// This is the one canonical "mirror" helper — force/offload tests and
/// single-rank drivers should use it instead of hand-copying site data
/// onto the ghost shell.
pub fn fill_periodic_ghosts(l: &mut LatticeNeighborList) {
    exchange_ghosts(l, &mut Loopback, GhostPhase::Positions);
    exchange_ghosts(l, &mut Loopback, GhostPhase::Fp);
}

/// Runs one full ghost exchange (6 staged shifts).
pub fn exchange_ghosts(l: &mut LatticeNeighborList, t: &mut impl Transport, phase: GhostPhase) {
    if phase == GhostPhase::Positions {
        l.clear_ghost_runaways();
    }
    for axis in 0..3 {
        for toward_high in [true, false] {
            let send_ranges = slab_ranges(l, axis, toward_high, true);
            let payload = pack_slab(l, &send_ranges, phase);
            let received = t.shift(axis, toward_high, payload);
            let recv_ranges = slab_ranges(l, axis, toward_high, false);
            unpack_slab(l, &recv_ranges, phase, &received);
        }
    }
}

/// Transfers run-aways anchored outside the owned region to their
/// owning rank. Returns how many this rank emitted.
pub fn migrate_runaways(l: &mut LatticeNeighborList, t: &mut impl Transport) -> usize {
    let mut emigrants = Vec::new();
    for idx in l.live_runaways() {
        let rec = *l.runaway(idx);
        let (i, j, k, b) = l.grid.decode(rec.home as usize);
        if !l.grid.is_interior(i, j, k) {
            let g = l.grid.global_cell(i, j, k);
            let lp = l.grid.site_position(i, j, k, b);
            emigrants.push((
                [g[0] as u64, g[1] as u64, g[2] as u64],
                b as u64,
                rec.id,
                [rec.pos[0] - lp[0], rec.pos[1] - lp[1], rec.pos[2] - lp[2]],
                rec.vel,
            ));
            l.remove_runaway(idx);
        }
    }
    let emitted = emigrants.len();
    let mut p = Packer::new();
    p.put_u32(emigrants.len() as u32);
    for (g, b, id, disp, vel) in emigrants {
        p.put_u64(g[0]);
        p.put_u64(g[1]);
        p.put_u64(g[2]);
        p.put_u64(b);
        p.put_u64(id as u64);
        for v in disp {
            p.put_f64(v);
        }
        for v in vel {
            p.put_f64(v);
        }
    }
    let all = t.allgather(p.finish());
    let start = l.grid.start;
    let len = l.grid.len;
    for bytes in all {
        let mut u = Unpacker::new(&bytes);
        let n = u.get_u32() as usize;
        for _ in 0..n {
            let g = [
                u.get_u64() as usize,
                u.get_u64() as usize,
                u.get_u64() as usize,
            ];
            let b = u.get_u64() as usize;
            let id = u.get_u64() as i64;
            let disp = [u.get_f64(), u.get_f64(), u.get_f64()];
            let vel = [u.get_f64(), u.get_f64(), u.get_f64()];
            let mine = (0..3).all(|ax| g[ax] >= start[ax] && g[ax] < start[ax] + len[ax]);
            if mine {
                let gh = l.grid.ghost;
                let (i, j, k) = (
                    g[0] - start[0] + gh,
                    g[1] - start[1] + gh,
                    g[2] - start[2] + gh,
                );
                let home = l.grid.site_id(i, j, k, b);
                let lp = l.grid.site_position(i, j, k, b);
                l.add_runaway(
                    home,
                    id,
                    [lp[0] + disp[0], lp[1] + disp[1], lp[2] + disp[2]],
                    vel,
                );
            }
        }
    }
    emitted
}

/// Declared communication skeletons of the MD exchange phases (the
/// `mmds-audit` protocol pass proves and reconciles these against
/// traced runs — keep them in lock-step with [`exchange_ghosts`] and
/// [`migrate_runaways`]).
///
/// * `md.ghost` — one per MD step: the run-away migration allgather
///   (u32 count + 88 B records), then the staged 6-shift Positions
///   exchange. Slab payloads carry per-site run-away chains, so their
///   size is dynamic.
/// * `md.offload` — one per MD step: the F'(ρ) exchange between the
///   two force passes, driven from inside the offload span.
pub fn comm_plans() -> Vec<mmds_swmpi::CommPlan> {
    use mmds_swmpi::{ByteSpec, CommPlan, SkelOp};
    let staged_shifts = || {
        let mut ops = Vec::new();
        for axis in 0..3 {
            for toward_high in [true, false] {
                ops.extend(SkelOp::shift(axis, toward_high, ByteSpec::Dynamic));
            }
        }
        ops
    };
    let mut ghost = vec![SkelOp::Allgather {
        bytes: ByteSpec::Records {
            header: 4,
            record: 88,
        },
    }];
    ghost.extend(staged_shifts());
    vec![
        CommPlan::new(
            "md.ghost",
            "crates/md/src/domain.rs",
            ghost,
            "per MD step: run-away migration allgather + staged Positions exchange",
        ),
        CommPlan::new(
            "md.offload",
            "crates/md/src/domain.rs",
            staged_shifts(),
            "per MD step: staged F'(rho) exchange between the two force passes",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmds_lattice::{BccGeometry, LocalGrid};

    fn lnl(n: usize) -> LatticeNeighborList {
        let grid = LocalGrid::whole(BccGeometry::fe_cube(n), 2);
        LatticeNeighborList::perfect(grid, 5.0)
    }

    #[test]
    fn loopback_positions_fill_ghosts_periodically() {
        let mut l = lnl(5);
        // Displace one interior atom near the low-x face; its periodic
        // image must appear in the high-x ghost shell.
        let s = l.grid.site_id(2, 4, 4, 0); // global cell (0,2,2)
        l.pos[s][0] += 0.21;
        exchange_ghosts(&mut l, &mut Loopback, GhostPhase::Positions);
        // Ghost image: storage cell (7,4,4) is global (5,2,2) ≡ (0,2,2).
        let ghost = l.grid.site_id(7, 4, 4, 0);
        let lp = l.grid.site_position(7, 4, 4, 0);
        assert_eq!(l.id[ghost], l.id[s]);
        assert!((l.pos[ghost][0] - (lp[0] + 0.21)).abs() < 1e-12);
    }

    #[test]
    fn loopback_vacancy_propagates_to_ghosts() {
        let mut l = lnl(5);
        let s = l.grid.site_id(2, 2, 2, 1); // global (0,0,0) basis 1
        l.make_vacancy(s);
        exchange_ghosts(&mut l, &mut Loopback, GhostPhase::Positions);
        let ghost = l.grid.site_id(7, 7, 7, 1); // global (5,5,5) ≡ (0,0,0)
        assert!(l.id[ghost] < 0, "vacancy must mirror into the corner ghost");
    }

    #[test]
    fn loopback_runaway_chain_mirrors() {
        let mut l = lnl(5);
        let s = l.grid.site_id(2, 4, 4, 0);
        let id = l.make_vacancy(s);
        let lp = l.grid.site_position(2, 4, 4, 0);
        l.add_runaway(s, id, [lp[0] + 0.9, lp[1] + 0.1, lp[2]], [0.0; 3]);
        exchange_ghosts(&mut l, &mut Loopback, GhostPhase::Positions);
        let ghost = l.grid.site_id(7, 4, 4, 0);
        let chain: Vec<_> = l.chain(ghost).collect();
        assert_eq!(chain.len(), 1);
        assert!(chain[0].1.ghost);
        let glp = l.grid.site_position(7, 4, 4, 0);
        assert!((chain[0].1.pos[0] - (glp[0] + 0.9)).abs() < 1e-12);
        // The real run-away is still the only non-ghost one.
        assert_eq!(l.n_runaways(), 1);
    }

    #[test]
    fn fp_phase_follows_chains() {
        let mut l = lnl(5);
        let s = l.grid.site_id(2, 4, 4, 0);
        let id = l.make_vacancy(s);
        let lp = l.grid.site_position(2, 4, 4, 0);
        let idx = l.add_runaway(s, id, [lp[0] + 0.9, lp[1], lp[2]], [0.0; 3]);
        exchange_ghosts(&mut l, &mut Loopback, GhostPhase::Positions);
        // Set owned fp values, then mirror them.
        for t in l.grid.interior_ids().collect::<Vec<_>>() {
            l.fp[t] = t as f64;
        }
        l.runaway_mut(idx).fp = 123.5;
        exchange_ghosts(&mut l, &mut Loopback, GhostPhase::Fp);
        let ghost = l.grid.site_id(7, 4, 4, 0);
        assert_eq!(l.fp[ghost], s as f64);
        let chain: Vec<_> = l.chain(ghost).collect();
        assert_eq!(chain[0].1.fp, 123.5);
    }

    #[test]
    fn repeated_exchanges_are_stable() {
        let mut l = lnl(4);
        let s = l.grid.site_id(2, 2, 2, 0);
        let id = l.make_vacancy(s);
        let lp = l.grid.site_position(2, 2, 2, 0);
        l.add_runaway(s, id, [lp[0] + 0.8, lp[1], lp[2]], [0.0; 3]);
        exchange_ghosts(&mut l, &mut Loopback, GhostPhase::Positions);
        let ghosts_after_one: usize = (0..l.n_sites())
            .map(|t| l.chain(t).filter(|(_, r)| r.ghost).count())
            .sum();
        for _ in 0..3 {
            exchange_ghosts(&mut l, &mut Loopback, GhostPhase::Positions);
        }
        let ghosts_after_four: usize = (0..l.n_sites())
            .map(|t| l.chain(t).filter(|(_, r)| r.ghost).count())
            .sum();
        assert_eq!(ghosts_after_one, ghosts_after_four, "no ghost accumulation");
        assert_eq!(l.n_runaways(), 1);
    }

    #[test]
    fn migration_loopback_rehomes_to_interior() {
        let mut l = lnl(5);
        // Anchor a run-away at a ghost site (as if it crossed the
        // boundary); migration must re-anchor it at the interior image.
        let ghost_home = l.grid.site_id(7, 4, 4, 0); // global (5,2,2) ≡ (0,2,2)
        let glp = l.grid.site_position(7, 4, 4, 0);
        l.add_runaway(
            ghost_home,
            42,
            [glp[0] + 0.2, glp[1], glp[2]],
            [1.0, 0.0, 0.0],
        );
        let emitted = migrate_runaways(&mut l, &mut Loopback);
        assert_eq!(emitted, 1);
        assert_eq!(l.n_runaways(), 1);
        let idx = l.live_runaways()[0];
        let rec = l.runaway(idx);
        let expect_home = l.grid.site_id(2, 4, 4, 0);
        assert_eq!(rec.home as usize, expect_home);
        let ilp = l.grid.site_position(2, 4, 4, 0);
        assert!((rec.pos[0] - (ilp[0] + 0.2)).abs() < 1e-12);
        assert_eq!(rec.vel, [1.0, 0.0, 0.0]);
    }
}
