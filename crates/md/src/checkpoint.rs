//! Checkpoint/restart for MD runs.
//!
//! Long cascade + annealing campaigns (the paper's big run is 8.6 hours
//! on 6.24M cores) need restartable state. An [`MdCheckpoint`] captures
//! everything but the interpolation tables (rebuilt from the config on
//! restore, which is cheaper than storing 280 KB of coefficients) and
//! restores **bit-exactly**: MD consumes no randomness after velocity
//! initialisation, so a restored run continues on the identical
//! trajectory.

use mmds_lattice::LatticeNeighborList;
use serde::{Deserialize, Serialize};

use crate::config::MdConfig;
use crate::runaway::TransitionStats;
use crate::sim::MdSimulation;

/// Serializable snapshot of one rank's MD state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdCheckpoint {
    /// Configuration (tables are rebuilt from it).
    pub cfg: MdConfig,
    /// Which table machinery was in use.
    pub table_form: mmds_eam::TableForm,
    /// Simulated time (ps).
    pub time_ps: f64,
    /// Accumulated transitions.
    pub transitions: TransitionStats,
    /// The complete lattice state (sites, run-aways, ghosts).
    pub lnl: LatticeNeighborList,
}

impl MdSimulation {
    /// Captures a restartable snapshot.
    pub fn checkpoint(&self) -> MdCheckpoint {
        MdCheckpoint {
            cfg: self.cfg,
            table_form: self.table_form,
            time_ps: self.time_ps,
            transitions: self.transitions,
            lnl: self.lnl.clone(),
        }
    }

    /// Rebuilds a simulation from a snapshot. Forces are recomputed on
    /// the first step (deterministically), so the continued trajectory
    /// is identical to an uninterrupted run.
    pub fn restore(ck: MdCheckpoint) -> Self {
        let mut sim = MdSimulation::from_grid(ck.cfg, ck.lnl.grid);
        sim.table_form = ck.table_form;
        sim.time_ps = ck.time_ps;
        sim.transitions = ck.transitions;
        sim.lnl = ck.lnl;
        sim
    }

    /// Writes a checkpoint as JSON.
    pub fn save_checkpoint(&self, path: &std::path::Path) -> std::io::Result<()> {
        let s = serde_json::to_string(&self.checkpoint()).expect("state is serializable");
        std::fs::write(path, s)
    }

    /// Reads a checkpoint written by [`Self::save_checkpoint`].
    pub fn load_checkpoint(path: &std::path::Path) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        let ck: MdCheckpoint =
            serde_json::from_str(&s).map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(Self::restore(ck))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> MdSimulation {
        let cfg = MdConfig {
            table_knots: 800,
            temperature: 400.0,
            thermostat_tau: Some(0.05),
            ..Default::default()
        };
        let mut s = MdSimulation::single_box(cfg, 5);
        s.init_velocities();
        s
    }

    #[test]
    fn resume_is_bit_exact() {
        // Uninterrupted: 12 steps.
        let mut a = sim();
        a.run_local(12);
        // Interrupted at step 5, checkpointed, restored, 7 more steps.
        let mut b = sim();
        b.run_local(5);
        let ck = b.checkpoint();
        let mut b2 = MdSimulation::restore(ck);
        b2.run_local(7);
        assert_eq!(a.time_ps, b2.time_ps);
        for &s in &a.interior {
            assert_eq!(a.lnl.pos[s], b2.lnl.pos[s], "position diverged at {s}");
            assert_eq!(a.lnl.vel[s], b2.lnl.vel[s], "velocity diverged at {s}");
        }
    }

    #[test]
    fn json_round_trip() {
        let mut s = sim();
        s.run_local(3);
        let dir = std::env::temp_dir().join("mmds_ck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("md.ckpt.json");
        s.save_checkpoint(&path).unwrap();
        let restored = MdSimulation::load_checkpoint(&path).unwrap();
        assert_eq!(restored.time_ps, s.time_ps);
        assert_eq!(restored.lnl.pos, s.lnl.pos);
        assert_eq!(restored.lnl.n_runaways(), s.lnl.n_runaways());
    }

    #[test]
    fn checkpoint_preserves_defects() {
        let mut s = sim();
        let site = s.lnl.grid.site_id(4, 4, 4, 0);
        crate::cascade::launch_pka(&mut s.lnl, site, 200.0, [1.0, 3.0, 5.0], s.mass);
        s.run_local(20);
        let before = crate::defects::count(&s.lnl);
        let restored = MdSimulation::restore(s.checkpoint());
        assert_eq!(crate::defects::count(&restored.lnl), before);
    }
}
