//! The parallel EAM passes must be bitwise deterministic: identical
//! ρ/force/energy at any worker-thread count, and identical to the
//! seed's serial separate-lookup path.
//!
//! The sweeps rely on fixed-size chunking (independent of the thread
//! count) plus ordered write-back on the calling thread, the fused
//! `pair_density` lookup replays the exact operation order of the two
//! separate lookups, and the batched SoA lane kernels replay the
//! scalar op sequence per lane with partner-ordered accumulation — so
//! every comparison below is `assert_eq`, not a tolerance.

use mmds_md::domain::Loopback;
use mmds_md::force::PassConfig;
use mmds_md::{MdConfig, MdSimulation};

/// A full bitwise state snapshot after a few MD steps.
struct Snapshot {
    rho: Vec<f64>,
    force: Vec<[f64; 3]>,
    pos: Vec<[f64; 3]>,
    pair: f64,
    embed: f64,
}

fn run(pass_config: PassConfig, steps: usize) -> Snapshot {
    let cfg = MdConfig {
        temperature: 700.0,
        table_knots: 2000,
        ..Default::default()
    };
    let mut sim = MdSimulation::single_box(cfg, 5);
    sim.pass_config = pass_config;
    sim.init_velocities();
    // A displaced atom makes the force field strongly anisotropic.
    let a = sim.lnl.grid.site_id(3, 3, 3, 0);
    sim.lnl.pos[a][0] += 0.3;
    let mut last = None;
    for _ in 0..steps {
        last = Some(sim.step(&mut Loopback));
    }
    let s = last.expect("at least one step");
    Snapshot {
        rho: sim.lnl.rho.clone(),
        force: sim.lnl.force.clone(),
        pos: sim.lnl.pos.clone(),
        pair: s.pair,
        embed: s.embed,
    }
}

fn assert_bitwise(a: &Snapshot, b: &Snapshot, what: &str) {
    assert_eq!(a.rho, b.rho, "{what}: rho");
    assert_eq!(a.force, b.force, "{what}: force");
    assert_eq!(a.pos, b.pos, "{what}: positions");
    assert_eq!(a.pair.to_bits(), b.pair.to_bits(), "{what}: pair energy");
    assert_eq!(a.embed.to_bits(), b.embed.to_bits(), "{what}: embed energy");
}

/// One test (not several) so the `RAYON_NUM_THREADS` sweep cannot race
/// against itself under the parallel test harness.
#[test]
fn passes_are_bitwise_deterministic_across_thread_counts() {
    let steps = 3;
    // The production default: parallel, fused, batched.
    let reference = run(PassConfig::default(), steps);

    // Thread-count sweep: the shim honours RAYON_NUM_THREADS, so this
    // exercises 1, 2, and 8 workers even on a single-core host — with
    // the batched kernels enabled.
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let got = run(PassConfig::default(), steps);
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_bitwise(&reference, &got, &format!("{threads} threads"));
    }

    // The seed's serial separate-lookup path is the ground truth the
    // whole matrix must reproduce exactly.
    let seed = run(PassConfig::seed_serial(), steps);
    assert_bitwise(&reference, &seed, "seed serial path");

    // And every other point of the parallel × fused × batched cube
    // agrees too (batched forces the fused lookup internally, so the
    // (·, false, true) corners cover batched-over-unfused as well).
    for parallel in [false, true] {
        for fused in [false, true] {
            for batched in [false, true] {
                let got = run(
                    PassConfig {
                        parallel,
                        fused,
                        batched,
                    },
                    steps,
                );
                assert_bitwise(
                    &reference,
                    &got,
                    &format!("parallel={parallel} fused={fused} batched={batched}"),
                );
            }
        }
    }
}
