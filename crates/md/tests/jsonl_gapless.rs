//! The JSONL event stream must keep gapless, increasing sequence
//! numbers when the parallel pass configuration has rayon worker
//! threads and the swmpi rank threads all emitting concurrently, and
//! every record must carry its emitting thread's rank tag.

use mmds_md::offload::OffloadConfig;
use mmds_md::parallel::{run_parallel_md, ParallelMdParams};
use mmds_md::MdConfig;
use mmds_swmpi::{MachineModel, World, WorldConfig};
use mmds_telemetry::{Event, MemorySink, Mode};

#[test]
fn parallel_md_stream_is_gapless_and_rank_tagged() {
    // One process-wide telemetry instance: this test owns it (each
    // integration-test file is its own binary).
    let tel = mmds_telemetry::global();
    mmds_telemetry::set_mode(Mode::Summary);
    let sink = MemorySink::new();
    tel.install_sink(Box::new(sink.clone()));

    let world = World::new(WorldConfig {
        model: MachineModel::free(),
        ..Default::default()
    });
    let params = ParallelMdParams {
        md: MdConfig {
            table_knots: 1000,
            temperature: 300.0,
            thermostat_tau: None,
            ..Default::default()
        },
        offload: OffloadConfig::optimized(),
        global_cells: [8; 3],
        steps: 2,
        warmup_steps: 0,
        pka_energy: None,
    };
    let out = run_parallel_md(&world, 4, &params);
    assert_eq!(out.len(), 4);
    tel.take_sink();

    let records = sink.records();
    assert!(!records.is_empty(), "stream captured something");
    // Gapless, increasing seq in arrival order despite 4 rank threads.
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "gap at {i}: {r:?}");
    }
    // Span events from the rank closures carry their rank tag, and all
    // four ranks appear.
    let mut ranks_seen: Vec<u32> = records
        .iter()
        .filter(|r| matches!(&r.event, Event::SpanOpen { .. } | Event::SpanClose { .. }))
        .filter_map(|r| r.rank)
        .collect();
    ranks_seen.sort_unstable();
    ranks_seen.dedup();
    assert_eq!(ranks_seen, vec![0, 1, 2, 3]);
    // Every record names its emitting thread.
    assert!(records.iter().all(|r| r.tid.is_some()));

    // The per-rank comm deposits made it into the report, un-folded.
    let report = tel.run_report();
    assert_eq!(report.ranks.len(), 4);
    for (i, r) in report.ranks.iter().enumerate() {
        assert_eq!(r.rank, i as u32);
        let comm = r.comm.expect("per-rank stats deposited");
        assert!(comm.bytes_sent > 0, "rank {i} exchanged ghosts");
        assert!(r.matrix.is_some(), "rank {i} matrix deposited");
    }
    // md.step appears in the imbalance table over the 4 tagged ranks.
    let step = report
        .imbalance
        .iter()
        .find(|p| p.path.ends_with("md.step"))
        .expect("md.step imbalance row");
    assert_eq!(step.ranks, 4);
    assert!(step.ratio >= 1.0);
    tel.reset();
}
