//! Concurrency-facing telemetry tests: the in-memory sink must capture
//! a consistent total order (gapless, increasing sequence numbers) even
//! when events are emitted from rayon parallel sections, and span
//! accounting must satisfy the child-self-time inequality under
//! nesting.

use mmds_telemetry::{Event, MemorySink, Mode, Record, Telemetry};
use rayon::prelude::*;

#[test]
fn memory_sink_captures_ordered_events_under_rayon() {
    let tel = Telemetry::with_mode(Mode::Summary);
    let sink = MemorySink::new();
    tel.install_sink(Box::new(sink.clone()));

    let per_task = 25usize;
    let tasks: Vec<usize> = (0..8).collect();
    tasks
        .into_par_iter()
        .map(|task| {
            for i in 0..per_task {
                let _g = tel.span(if task % 2 == 0 { "even" } else { "odd" });
                tel.emit(Event::Counter {
                    name: format!("task{task}"),
                    value: i as f64,
                });
            }
            task
        })
        .collect::<Vec<_>>();

    let records = sink.records();
    // 8 tasks × 25 iterations × (open + counter + close).
    assert_eq!(records.len(), 8 * per_task * 3);
    // Sequence numbers are gapless and increasing in arrival order: the
    // sink saw one consistent total order despite parallel emitters.
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "record {i} out of order: {r:?}");
    }
    // Timestamps never go backwards along that order.
    for w in records.windows(2) {
        assert!(w[0].t_ns <= w[1].t_ns, "time went backwards: {w:?}");
    }
    // Per-task counter events keep their program order.
    for task in 0..8 {
        let name = format!("task{task}");
        let values: Vec<f64> = records
            .iter()
            .filter_map(|r| match &r.event {
                Event::Counter { name: n, value } if *n == name => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(values.len(), per_task);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, i as f64, "task {task} reordered");
        }
    }
}

#[test]
fn nested_span_accounting_from_parallel_sections() {
    let tel = std::sync::Arc::new(Telemetry::with_mode(Mode::Summary));
    let items: Vec<usize> = (0..6).collect();
    {
        let tel = std::sync::Arc::clone(&tel);
        items
            .into_par_iter()
            .map(move |_| {
                let _outer = tel.span("outer");
                std::thread::sleep(std::time::Duration::from_millis(3));
                {
                    let _inner = tel.span("inner");
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            })
            .collect::<Vec<_>>();
    }
    let reports = tel.span_reports();
    let outer = reports.iter().find(|r| r.path == "outer").unwrap();
    let inner = reports.iter().find(|r| r.path == "outer/inner").unwrap();
    assert_eq!(outer.count, 6);
    assert_eq!(inner.count, 6);
    // Child self-time ≤ parent total; parent self excludes child time.
    assert!(inner.self_s <= inner.total_s + 1e-9);
    assert!(inner.total_s <= outer.total_s + 1e-9);
    assert!(outer.self_s <= outer.total_s - inner.total_s + 1e-3);
}

#[test]
fn jsonl_file_round_trips_a_full_event_stream() {
    let dir = std::env::temp_dir().join("mmds_telemetry_it");
    let path = dir.join("stream.jsonl");
    let path_s = path.to_str().unwrap().to_string();
    {
        let tel = Telemetry::with_mode(Mode::Jsonl(path_s.clone()));
        let _a = tel.span("run");
        let _b = tel.span("phase");
        tel.emit(Event::Md(mmds_telemetry::MdStepSample {
            step: 1,
            kinetic: 3.5,
            potential: -10.0,
            runaways: 1,
            vacancies: 2,
            interstitials: 1,
            energy_drift: 0.0,
            momentum_norm: 0.5,
        }));
        drop(_b);
        drop(_a);
        tel.take_sink(); // flush by dropping the FileSink
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let records: Vec<Record> = text
        .lines()
        .map(|l| Record::from_jsonl(l).unwrap())
        .collect();
    assert_eq!(records.len(), 5); // 2 opens, 1 sample, 2 closes
    assert!(matches!(&records[0].event, Event::SpanOpen { path } if path == "run"));
    assert!(
        matches!(&records[4].event, Event::SpanClose { path, .. } if path == "run"),
        "outermost span closes last"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
