//! Golden-file test for the Perfetto exporter: a fixed record stream
//! must produce byte-identical Chrome `trace_event` JSON. Regenerate
//! with `UPDATE_GOLDEN=1 cargo test -p mmds-telemetry --test
//! perfetto_golden` after an intentional format change.

use mmds_telemetry::{Event, KmcCycleSample, MdStepSample, Record};

fn fixed_records() -> Vec<Record> {
    let rec = |seq: u64, t_ns: u64, rank: Option<u32>, tid: u32, event: Event| Record {
        seq,
        t_ns,
        rank,
        tid: Some(tid),
        event,
    };
    vec![
        rec(
            0,
            1_000,
            None,
            0,
            Event::SpanOpen {
                path: "coupled.run".into(),
            },
        ),
        rec(
            1,
            2_500,
            Some(0),
            1,
            Event::SpanOpen {
                path: "coupled.run/md.phase".into(),
            },
        ),
        rec(
            2,
            3_000,
            Some(1),
            2,
            Event::SpanOpen {
                path: "coupled.run/md.phase".into(),
            },
        ),
        rec(
            3,
            4_000,
            Some(0),
            1,
            Event::Md(MdStepSample {
                step: 0,
                kinetic: 12.5,
                potential: -800.0,
                runaways: 1,
                vacancies: 2,
                interstitials: 2,
                energy_drift: 0.0,
                momentum_norm: 0.25,
            }),
        ),
        rec(
            4,
            6_000,
            Some(1),
            2,
            Event::SpanClose {
                path: "coupled.run/md.phase".into(),
                dur_ns: 3_000,
            },
        ),
        rec(
            5,
            6_500,
            Some(0),
            1,
            Event::SpanClose {
                path: "coupled.run/md.phase".into(),
                dur_ns: 4_000,
            },
        ),
        rec(
            6,
            7_000,
            Some(1),
            2,
            Event::Kmc(KmcCycleSample {
                cycle: 1,
                events: 9,
                dirty_ghost_bytes: 512,
                sector: 7,
                vacancies: 4,
                vacancy_delta: 0,
            }),
        ),
        rec(
            7,
            8_000,
            None,
            0,
            Event::Counter {
                name: "kmc.ghost_bytes".into(),
                value: 512.0,
            },
        ),
        rec(
            8,
            9_000,
            None,
            0,
            Event::SpanClose {
                path: "coupled.run".into(),
                dur_ns: 8_000,
            },
        ),
    ]
}

#[test]
fn perfetto_export_matches_golden() {
    let got = mmds_telemetry::perfetto::export(&fixed_records());
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/perfetto_small.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("golden file exists");
    assert_eq!(
        got.trim(),
        want.trim(),
        "exporter output diverged from golden; run with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn golden_is_valid_trace_json() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/perfetto_small.json");
    let text = std::fs::read_to_string(&path).expect("golden file exists");
    let doc = serde_json::parse(&text).expect("golden parses");
    let events = doc.get("traceEvents").expect("traceEvents key");
    let serde::Value::Seq(events) = events else {
        panic!("traceEvents is not an array");
    };
    // 3 processes (driver + 2 ranks) + 3 threads + 9 events.
    assert_eq!(events.len(), 15);
    // Every event carries the required trace_event fields.
    for e in events {
        for key in ["name", "ph", "ts", "pid"] {
            assert!(e.get(key).is_some(), "missing {key}: {e:?}");
        }
    }
    // B and E counts balance per (pid, tid).
    let phase = |e: &serde::Value| match e.get("ph") {
        Some(serde::Value::Str(s)) => s.clone(),
        _ => String::new(),
    };
    let opens = events.iter().filter(|e| phase(e) == "B").count();
    let closes = events.iter().filter(|e| phase(e) == "E").count();
    assert_eq!(opens, closes, "unbalanced B/E events");
}
