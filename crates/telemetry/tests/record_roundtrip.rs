//! JSONL round-trip coverage across *every* [`Event`] kind, plus the
//! truncated-line rejection `TailReader` relies on: a partial trailing
//! line must fail to parse (so the tailer withholds it) rather than
//! silently decode to a wrong record.

use mmds_telemetry::{
    AlertRecord, AlertSeverity, CommRecord, Event, HeartbeatSample, KmcCycleSample, MdStepSample,
    Record, SeriesSample,
};

/// One representative record per `Event` variant. The match below is
/// exhaustive on purpose: adding a variant without extending this list
/// breaks the build here, not silently in a tailer somewhere.
fn one_of_each() -> Vec<Record> {
    let events = vec![
        Event::SpanOpen {
            path: "coupled.run/md.phase".into(),
        },
        Event::SpanClose {
            path: "coupled.run/md.phase".into(),
            dur_ns: 12_345,
        },
        Event::Md(MdStepSample {
            step: 3,
            kinetic: 12.5,
            potential: -812.25,
            runaways: 2,
            vacancies: 4,
            interstitials: 2,
            energy_drift: 1.25e-6,
            momentum_norm: 0.03125,
        }),
        Event::Kmc(KmcCycleSample {
            cycle: 7,
            events: 31,
            dirty_ghost_bytes: 1024,
            sector: 5,
            vacancies: 12,
            vacancy_delta: -2,
        }),
        Event::Counter {
            name: "kmc.ghost_bytes".into(),
            value: 4096.0,
        },
        Event::Series(SeriesSample {
            name: "census.frenkel_pairs".into(),
            t: 30,
            value: 17.0,
        }),
        Event::Heartbeat(HeartbeatSample {
            source: "md.heartbeat".into(),
            progress: 250,
            total: 1000,
        }),
        Event::Alert(AlertRecord {
            rule: "alert.heartbeat_stale".into(),
            severity: AlertSeverity::Crit,
            rank: Some(3),
            subject: "rank 3".into(),
            message: "no heartbeat for 0.250 s (threshold 0.200 s)".into(),
            value: 0.25,
            threshold: 0.2,
            t_ns: 1_000_000,
        }),
        Event::Comm(CommRecord {
            op: "send".into(),
            rank: 2,
            peer: Some(3),
            tag: 11,
            bytes: 4096,
            match_src: Some(2),
            match_seq: 17,
            lamport: 41,
            vt_enter: 1.25e-3,
            vt_exit: 1.5e-3,
            dur_ns: 7_250,
        }),
    ];
    for e in &events {
        // Exhaustiveness guard: new variants must be added above.
        match e {
            Event::SpanOpen { .. }
            | Event::SpanClose { .. }
            | Event::Md(_)
            | Event::Kmc(_)
            | Event::Counter { .. }
            | Event::Series(_)
            | Event::Heartbeat(_)
            | Event::Alert(_)
            | Event::Comm(_) => {}
        }
    }
    events
        .into_iter()
        .enumerate()
        .map(|(i, event)| Record {
            seq: i as u64,
            t_ns: 100 + i as u64 * 10,
            rank: if i % 2 == 0 { Some(i as u32) } else { None },
            tid: Some(i as u32 % 3),
            event,
        })
        .collect()
}

#[test]
fn every_event_kind_round_trips_through_jsonl() {
    for r in one_of_each() {
        let line = r.to_jsonl();
        assert!(!line.contains('\n'), "JSONL must be single-line: {line}");
        let back = Record::from_jsonl(&line)
            .unwrap_or_else(|e| panic!("failed to parse back {line}: {e:?}"));
        assert_eq!(back, r);
    }
}

#[test]
fn severity_variants_round_trip() {
    for severity in [AlertSeverity::Warn, AlertSeverity::Crit] {
        let r = Record {
            seq: 0,
            t_ns: 1,
            rank: None,
            tid: Some(0),
            event: Event::Alert(AlertRecord {
                rule: "alert.health_threshold".into(),
                severity,
                rank: None,
                subject: "md.health.energy_drift_warn".into(),
                message: "x".into(),
                value: 1.0,
                threshold: 0.0,
                t_ns: 1,
            }),
        };
        let back = Record::from_jsonl(&r.to_jsonl()).unwrap();
        assert_eq!(back, r);
    }
}

#[test]
fn truncated_lines_are_rejected_not_misparsed() {
    // Every proper prefix of a serialized record must fail to parse —
    // the exact guarantee TailReader leans on when it withholds a
    // partial trailing line instead of parsing it.
    for r in one_of_each() {
        let line = r.to_jsonl();
        for cut in 1..line.len() {
            if !line.is_char_boundary(cut) {
                continue;
            }
            let prefix = &line[..cut];
            assert!(
                Record::from_jsonl(prefix).is_err(),
                "prefix unexpectedly parsed: {prefix}"
            );
        }
    }
}

#[test]
fn whitespace_and_garbage_are_rejected() {
    assert!(Record::from_jsonl("").is_err());
    assert!(Record::from_jsonl("   ").is_err());
    assert!(Record::from_jsonl("not json at all").is_err());
    assert!(Record::from_jsonl("{}").is_err());
}
