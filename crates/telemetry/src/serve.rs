//! Dependency-free HTTP scrape endpoint for the live monitor.
//!
//! A single background thread accepts connections on a
//! `std::net::TcpListener` and answers two routes from the shared
//! [`LiveMonitor`]:
//!
//! * `GET /metrics`  — Prometheus text exposition (version 0.0.4)
//! * `GET /healthz`  — `200 ok` while no `Crit` alert is active,
//!   `503 stale` otherwise
//!
//! This is the scrape surface `mmds-serve` will later sit behind; it
//! deliberately speaks just enough HTTP/1.1 for `curl` and a
//! Prometheus scraper (read the request head, answer, close).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::monitor::LiveMonitor;

/// Handle to the background scrape thread. Dropping it stops the
/// thread and closes the listener.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port)
    /// and serves the monitor until the handle is dropped.
    pub fn spawn(addr: &str, monitor: Arc<LiveMonitor>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("mmds-metrics".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => handle_conn(stream, &monitor),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(25)),
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_conn(mut stream: TcpStream, monitor: &LiveMonitor) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    // Read the request head (enough to see the request line; we never
    // need a body).
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => ("200 OK", "text/plain; version=0.0.4", monitor.prometheus()),
            "/healthz" => {
                if monitor.healthy() {
                    ("200 OK", "text/plain", "ok\n".to_string())
                } else {
                    (
                        "503 Service Unavailable",
                        "text/plain",
                        "stale\n".to_string(),
                    )
                }
            }
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, HeartbeatSample, Record};
    use crate::monitor::{LiveAggregator, WatchdogConfig};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_healthz() {
        let monitor = Arc::new(LiveMonitor::new(LiveAggregator::live(
            WatchdogConfig::default(),
        )));
        monitor.ingest(&Record {
            seq: 0,
            t_ns: 1_000,
            rank: Some(0),
            tid: Some(0),
            event: Event::Heartbeat(HeartbeatSample {
                source: "md.heartbeat".into(),
                progress: 3,
                total: 10,
            }),
        });
        let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&monitor)).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        crate::monitor::validate_prometheus_text(&body).unwrap();
        assert!(body.contains("mmds_heartbeat_progress{source=\"md.heartbeat\",rank=\"0\"} 3"));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }
}
