//! Chrome/Perfetto `trace_event` JSON exporter.
//!
//! Converts a JSONL [`Record`] stream into the JSON object format
//! consumed by <https://ui.perfetto.dev> and `chrome://tracing`:
//!
//! * each simulated **rank becomes a process** (`pid = rank + 1`;
//!   untagged driver records get `pid = 0`), labelled by an `M`
//!   metadata event, so the Perfetto track view groups one swimlane
//!   cluster per rank;
//! * each emitting **OS thread becomes a thread** (`tid` straight from
//!   the record);
//! * span open/close become `B`/`E` duration events (nesting is
//!   reconstructed by the viewer from per-thread ordering);
//! * MD/KMC samples and named counters become `C` counter events, so
//!   energy drift, defect counts, and ghost-byte traffic plot as time
//!   series under the track.
//!
//! Timestamps are microseconds from the telemetry epoch, as the format
//! requires.

use serde::Value;

use crate::event::{CommRecord, Event, Record};

/// Pid assigned to records with no rank tag.
pub const DRIVER_PID: u64 = 0;

fn map(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn pid_of(r: &Record) -> u64 {
    match r.rank {
        Some(rank) => rank as u64 + 1,
        None => DRIVER_PID,
    }
}

fn tid_of(r: &Record) -> u64 {
    r.tid.unwrap_or(0) as u64
}

fn ts_of(r: &Record) -> Value {
    Value::F64(r.t_ns as f64 / 1000.0)
}

fn event_value(r: &Record) -> Option<Value> {
    let (ph, name, args) = match &r.event {
        Event::SpanOpen { path } => (
            "B",
            path.rsplit('/').next().unwrap_or(path).to_string(),
            map(vec![("path", Value::Str(path.clone()))]),
        ),
        Event::SpanClose { path, dur_ns } => (
            "E",
            path.rsplit('/').next().unwrap_or(path).to_string(),
            map(vec![
                ("path", Value::Str(path.clone())),
                ("dur_ns", Value::U64(*dur_ns)),
            ]),
        ),
        Event::Md(s) => (
            "C",
            "md.step".to_string(),
            map(vec![
                ("kinetic", Value::F64(s.kinetic)),
                ("potential", Value::F64(s.potential)),
                ("runaways", Value::U64(s.runaways)),
                ("vacancies", Value::U64(s.vacancies)),
                ("interstitials", Value::U64(s.interstitials)),
                ("energy_drift", Value::F64(s.energy_drift)),
                ("momentum_norm", Value::F64(s.momentum_norm)),
            ]),
        ),
        Event::Kmc(s) => (
            "C",
            "kmc.cycle".to_string(),
            map(vec![
                ("events", Value::U64(s.events)),
                ("dirty_ghost_bytes", Value::U64(s.dirty_ghost_bytes)),
                ("vacancies", Value::U64(s.vacancies)),
                ("vacancy_delta", Value::I64(s.vacancy_delta)),
            ]),
        ),
        Event::Counter { name, value } => {
            ("C", name.clone(), map(vec![("value", Value::F64(*value))]))
        }
        Event::Series(s) => (
            "C",
            s.name.clone(),
            map(vec![("value", Value::F64(s.value)), ("t", Value::U64(s.t))]),
        ),
        Event::Heartbeat(h) => (
            "C",
            h.source.clone(),
            map(vec![
                ("progress", Value::U64(h.progress)),
                ("total", Value::U64(h.total)),
            ]),
        ),
        Event::Alert(a) => (
            "i",
            format!("{} [{}]", a.rule, a.severity.as_str()),
            map(vec![
                ("rule", Value::Str(a.rule.clone())),
                ("severity", Value::Str(a.severity.as_str().to_string())),
                ("subject", Value::Str(a.subject.clone())),
                ("message", Value::Str(a.message.clone())),
            ]),
        ),
        // Comm records expand to several events (slice + flow) and are
        // routed through `comm_values` by `export`.
        Event::Comm(_) => return None,
    };
    let mut fields = vec![
        ("name", Value::Str(name)),
        ("ph", Value::Str(ph.to_string())),
        ("ts", ts_of(r)),
        ("pid", Value::U64(pid_of(r))),
        ("tid", Value::U64(tid_of(r))),
    ];
    if ph == "i" {
        // Instant events need a scope; "g" (global) draws a full-height
        // marker in the viewer — right for alerts.
        fields.push(("s", Value::Str("g".to_string())));
    }
    fields.push(("args", args));
    Some(map(fields))
}

/// Comm records always know their swmpi rank, so they land on the
/// right process even when the emitting thread has no telemetry rank
/// tag (a bare `World::run` outside `rank_scope`).
fn pid_for(r: &Record) -> u64 {
    match &r.event {
        Event::Comm(c) => c.rank as u64 + 1,
        _ => pid_of(r),
    }
}

/// Expands one traced comm operation: an `X` slice spanning the
/// blocking wall time, plus — for the matched p2p/one-sided kinds — a
/// flow event (`s` at the send/put, `t` at the recv/drain) whose id is
/// the match id, so the viewer draws a src→dst arrow per message.
fn comm_values(r: &Record, c: &CommRecord) -> Vec<Value> {
    let pid = pid_for(r);
    let tid = tid_of(r);
    let start_us = r.t_ns.saturating_sub(c.dur_ns) as f64 / 1000.0;
    let mut args = vec![
        ("op", Value::Str(c.op.clone())),
        ("bytes", Value::U64(c.bytes)),
        ("tag", Value::U64(c.tag as u64)),
        ("lamport", Value::U64(c.lamport)),
        ("vt_enter", Value::F64(c.vt_enter)),
        ("vt_exit", Value::F64(c.vt_exit)),
        ("match_seq", Value::U64(c.match_seq)),
    ];
    if let Some(p) = c.peer {
        args.push(("peer", Value::U64(p as u64)));
    }
    if let Some(s) = c.match_src {
        args.push(("match_src", Value::U64(s as u64)));
    }
    let mut out = vec![map(vec![
        ("name", Value::Str(format!("comm.{}", c.op))),
        ("cat", Value::Str("comm".to_string())),
        ("ph", Value::Str("X".to_string())),
        ("ts", Value::F64(start_us)),
        ("dur", Value::F64(c.dur_ns as f64 / 1000.0)),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("args", map(args)),
    ])];
    let flow_ph = match c.op.as_str() {
        "send" | "put" => Some("s"),
        "recv" | "put_in" => Some("t"),
        _ => None,
    };
    if let (Some(ph), Some(src)) = (flow_ph, c.match_src) {
        out.push(map(vec![
            ("name", Value::Str("comm.msg".to_string())),
            ("cat", Value::Str("comm".to_string())),
            ("ph", Value::Str(ph.to_string())),
            ("id", Value::Str(format!("{src}:{}", c.match_seq))),
            ("ts", ts_of(r)),
            ("pid", Value::U64(pid)),
            ("tid", Value::U64(tid)),
        ]));
    }
    out
}

fn metadata(name: &str, pid: u64, tid: Option<u64>, label: &str) -> Value {
    let mut fields = vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("ts", Value::F64(0.0)),
        ("pid", Value::U64(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", Value::U64(tid)));
    }
    fields.push(("args", map(vec![("name", Value::Str(label.to_string()))])));
    map(fields)
}

/// Renders the records as a Chrome `trace_event` JSON document
/// (`{"traceEvents": [...]}`), loadable at <https://ui.perfetto.dev>.
pub fn export(records: &[Record]) -> String {
    let mut events: Vec<Value> = Vec::new();

    // Metadata first: one process per observed pid, one thread label
    // per observed (pid, tid), in first-appearance order.
    let mut pids: Vec<u64> = Vec::new();
    let mut threads: Vec<(u64, u64)> = Vec::new();
    for r in records {
        let pid = pid_for(r);
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        let key = (pid, tid_of(r));
        if !threads.contains(&key) {
            threads.push(key);
        }
    }
    for &pid in &pids {
        let label = if pid == DRIVER_PID {
            "driver".to_string()
        } else {
            format!("rank {}", pid - 1)
        };
        events.push(metadata("process_name", pid, None, &label));
    }
    for &(pid, tid) in &threads {
        events.push(metadata(
            "thread_name",
            pid,
            Some(tid),
            &format!("thread {tid}"),
        ));
    }

    for r in records {
        match &r.event {
            Event::Comm(c) => events.extend(comm_values(r, c)),
            _ => events.extend(event_value(r)),
        }
    }

    let doc = map(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&doc).expect("trace document serializes")
}

/// Parses a JSONL trace file's lines and exports them; lines that fail
/// to parse are skipped (a live file's tail may be mid-write).
pub fn export_jsonl(text: &str) -> String {
    let records: Vec<Record> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| Record::from_jsonl(l).ok())
        .collect();
    export(&records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MdStepSample;

    fn rec(seq: u64, t_ns: u64, rank: Option<u32>, tid: u32, event: Event) -> Record {
        Record {
            seq,
            t_ns,
            rank,
            tid: Some(tid),
            event,
        }
    }

    /// Integer fields come back as `I64` or `U64` depending on the
    /// parser's width choice; compare numerically.
    fn num(v: Option<&Value>) -> Option<i64> {
        match v {
            Some(Value::I64(n)) => Some(*n),
            Some(Value::U64(n)) => Some(*n as i64),
            Some(Value::F64(n)) => Some(*n as i64),
            _ => None,
        }
    }

    #[test]
    fn ranks_become_processes_and_spans_pair_up() {
        let records = vec![
            rec(0, 1_000, None, 0, Event::SpanOpen { path: "run".into() }),
            rec(
                1,
                2_000,
                Some(0),
                1,
                Event::SpanOpen {
                    path: "run/md.step".into(),
                },
            ),
            rec(
                2,
                5_000,
                Some(0),
                1,
                Event::SpanClose {
                    path: "run/md.step".into(),
                    dur_ns: 3_000,
                },
            ),
            rec(
                3,
                6_000,
                Some(0),
                1,
                Event::Md(MdStepSample {
                    step: 1,
                    kinetic: 4.5,
                    ..Default::default()
                }),
            ),
            rec(
                4,
                9_000,
                None,
                0,
                Event::SpanClose {
                    path: "run".into(),
                    dur_ns: 8_000,
                },
            ),
        ];
        let json = export(&records);
        let doc = serde_json::parse(&json).unwrap();
        let events = match doc.get("traceEvents").unwrap() {
            Value::Seq(v) => v.clone(),
            other => panic!("traceEvents not a list: {other:?}"),
        };
        // 2 process_name + 2 thread_name + 5 events.
        assert_eq!(events.len(), 9);
        let names: Vec<_> = events
            .iter()
            .filter_map(|e| match e.get("name") {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"process_name".to_string()));
        assert!(names.contains(&"md.step".to_string()));
        // The rank-0 span rides on pid 1; the driver span on pid 0.
        let span_b = events
            .iter()
            .find(|e| {
                matches!(e.get("ph"), Some(Value::Str(p)) if p == "B")
                    && num(e.get("pid")) == Some(1)
            })
            .expect("rank-0 B event");
        assert_eq!(num(span_b.get("tid")), Some(1));
    }

    #[test]
    fn comm_records_become_slices_and_flows() {
        fn comm(op: &str, rank: u32, peer: u32) -> CommRecord {
            CommRecord {
                op: op.into(),
                rank,
                peer: Some(peer),
                tag: 5,
                bytes: 64,
                match_src: Some(0),
                match_seq: 1,
                lamport: 2,
                vt_enter: 0.0,
                vt_exit: 1e-6,
                dur_ns: 500,
            }
        }
        // Untagged records (rank: None): the pid must still come from
        // the swmpi rank inside the comm record.
        let records = vec![
            rec(0, 1_000, None, 0, Event::Comm(comm("send", 0, 1))),
            rec(1, 2_000, None, 1, Event::Comm(comm("recv", 1, 0))),
        ];
        let json = export(&records);
        let doc = serde_json::parse(&json).unwrap();
        let events = match doc.get("traceEvents").unwrap() {
            Value::Seq(v) => v.clone(),
            _ => unreachable!(),
        };
        let ph = |p: &str| {
            events
                .iter()
                .filter(|e| matches!(e.get("ph"), Some(Value::Str(s)) if s == p))
                .collect::<Vec<_>>()
        };
        // One X slice per op, one flow start, one flow step.
        assert_eq!(ph("X").len(), 2);
        let (s, t) = (ph("s"), ph("t"));
        assert_eq!((s.len(), t.len()), (1, 1));
        // Both halves share the match id and sit on their rank's pid.
        assert_eq!(s[0].get("id"), t[0].get("id"));
        assert_eq!(num(s[0].get("pid")), Some(1));
        assert_eq!(num(t[0].get("pid")), Some(2));
        // The slice spans the blocking wall time ending at t_ns.
        let x_send = ph("X")
            .into_iter()
            .find(|e| num(e.get("pid")) == Some(1))
            .unwrap()
            .clone();
        assert_eq!(x_send.get("ts"), Some(&Value::F64(0.5)));
        assert_eq!(x_send.get("dur"), Some(&Value::F64(0.5)));
    }

    #[test]
    fn export_jsonl_skips_torn_lines() {
        let good = rec(0, 10, Some(2), 0, Event::SpanOpen { path: "x".into() });
        let text = format!("{}\n{{\"seq\": 1, \"t_ns\"", good.to_jsonl());
        let json = export_jsonl(&text);
        let doc = serde_json::parse(&json).unwrap();
        let events = match doc.get("traceEvents").unwrap() {
            Value::Seq(v) => v.clone(),
            _ => unreachable!(),
        };
        // 1 process + 1 thread + 1 event — the torn line is dropped.
        assert_eq!(events.len(), 3);
    }
}
