//! Hierarchical phase spans and the thread-safe accumulation registry.
//!
//! A span is opened with [`Telemetry::span`] (or the [`crate::span!`]
//! macro) and closed by dropping the returned guard. Nesting is
//! tracked per thread: a span opened while another is live becomes its
//! child, and the registry keys stats by the full call path
//! (`"coupled.run/md.phase/md.force"`). Each path accumulates
//!
//! * `count` — times the span closed,
//! * `total` — wall time between open and close,
//! * `child` — wall time spent in child spans (so `total - child` is
//!   *self* time, the quantity the flamegraph-style renderer shows).
//!
//! Cost model: when the owning [`Telemetry`] is disabled, opening a
//! span is one relaxed atomic load and the guard is inert. When
//! enabled, open is an `Instant::now` plus one thread-local push;
//! close adds a mutex-guarded hash-map update. That is cheap enough to
//! stay on in release builds for the per-phase (not per-atom)
//! granularity used across this workspace.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, EventSink, Record};
use crate::monitor::LiveMonitor;
use crate::report::{CounterRegistry, RunReport};
use crate::Mode;

/// Accumulated statistics of one span path.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
    pub child_ns: u64,
}

/// One telemetry domain: span registry + counter registry + sink.
///
/// The process-wide instance lives behind [`crate::global`]; tests
/// construct private instances for isolation.
pub struct Telemetry {
    enabled: AtomicBool,
    /// Keyed by (emitting rank, full span path). `None` is the driver
    /// (untagged) dimension, so pre-rank callers keep working.
    spans: Mutex<HashMap<(Option<u32>, String), SpanStat>>,
    counters: CounterRegistry,
    sink: Mutex<Option<Box<dyn EventSink>>>,
    jsonl_path: Mutex<Option<String>>,
    seq: AtomicU64,
    epoch: Instant,
    /// Heartbeat cadence: emit every N progress units (0 = off).
    heartbeat_every: AtomicU64,
    /// In-process live monitor, when one is attached.
    monitor: Mutex<Option<Arc<LiveMonitor>>>,
    /// Fast-path flag mirroring `monitor.is_some()`, so `emit` skips
    /// the monitor lock entirely in the common no-monitor case.
    has_monitor: AtomicBool,
}

thread_local! {
    /// Per-thread stack of open spans: (full path, start, child time).
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    /// Simulated rank this thread reports as (see [`rank_scope`]).
    static RANK: Cell<Option<u32>> = const { Cell::new(None) };
    /// Dense per-process thread id, assigned on first use.
    static TID: Cell<Option<u32>> = const { Cell::new(None) };
}

/// Next dense thread id (process-wide).
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Small stable id of the calling OS thread, assigned densely from 0
/// on first use. Trace consumers use it as the Perfetto `tid`.
pub fn thread_tid() -> u32 {
    TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

/// The rank the calling thread is currently tagged with.
pub fn current_rank() -> Option<u32> {
    RANK.with(|r| r.get())
}

/// Tags the calling thread with a simulated rank (or clears the tag
/// with `None`). Spans and events emitted afterwards carry the tag.
/// Prefer [`rank_scope`], which restores the previous tag on drop.
pub fn set_thread_rank(rank: Option<u32>) {
    RANK.with(|r| r.set(rank));
}

/// RAII rank tag: tags the calling thread for the guard's lifetime and
/// restores the previous tag on drop.
///
/// ```
/// let _tag = mmds_telemetry::rank_scope(3);
/// assert_eq!(mmds_telemetry::current_rank(), Some(3));
/// ```
pub fn rank_scope(rank: u32) -> RankScope {
    let prev = current_rank();
    set_thread_rank(Some(rank));
    RankScope { prev }
}

/// Guard returned by [`rank_scope`]; restores the previous tag on drop.
pub struct RankScope {
    prev: Option<u32>,
}

impl Drop for RankScope {
    fn drop(&mut self) {
        set_thread_rank(self.prev);
    }
}

struct Frame {
    path: String,
    start: Instant,
    child_ns: u64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::with_mode(Mode::Off)
    }
}

impl Telemetry {
    /// Creates an instance in the given mode.
    pub fn with_mode(mode: Mode) -> Self {
        let t = Self {
            enabled: AtomicBool::new(false),
            spans: Mutex::new(HashMap::new()),
            counters: CounterRegistry::default(),
            sink: Mutex::new(None),
            jsonl_path: Mutex::new(None),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
            heartbeat_every: AtomicU64::new(
                std::env::var("MMDS_HEARTBEAT")
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(0),
            ),
            monitor: Mutex::new(None),
            has_monitor: AtomicBool::new(false),
        };
        t.set_mode(mode);
        t
    }

    /// Switches mode, installing or dropping the file sink as needed.
    pub fn set_mode(&self, mode: Mode) {
        match mode {
            Mode::Off => {
                self.enabled.store(false, Ordering::Relaxed);
                *self.sink.lock().unwrap() = None;
                *self.jsonl_path.lock().unwrap() = None;
            }
            Mode::Summary => {
                self.enabled.store(true, Ordering::Relaxed);
            }
            Mode::Jsonl(path) => {
                match crate::event::FileSink::create(&path) {
                    Ok(s) => {
                        *self.sink.lock().unwrap() = Some(Box::new(s));
                        *self.jsonl_path.lock().unwrap() = Some(path.clone());
                    }
                    Err(e) => eprintln!("[telemetry] cannot open {path}: {e}; events disabled"),
                }
                self.enabled.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Replaces the event sink (tests use [`crate::MemorySink`]).
    pub fn install_sink(&self, sink: Box<dyn EventSink>) {
        self.enabled.store(true, Ordering::Relaxed);
        *self.sink.lock().unwrap() = Some(sink);
    }

    /// Removes the sink, returning it.
    pub fn take_sink(&self) -> Option<Box<dyn EventSink>> {
        *self.jsonl_path.lock().unwrap() = None;
        self.sink.lock().unwrap().take()
    }

    /// Path of the JSONL stream when the sink is a [`Mode::Jsonl`]
    /// file sink; `None` otherwise.
    pub fn jsonl_path(&self) -> Option<String> {
        self.jsonl_path.lock().unwrap().clone()
    }

    /// Flushes the installed sink (no-op without one). Call before
    /// reading the JSONL file back while the process is still alive.
    pub fn flush_sink(&self) {
        if let Some(sink) = self.sink.lock().unwrap().as_mut() {
            sink.flush();
        }
    }

    /// True when spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Heartbeat cadence in progress units (0 = heartbeats off).
    pub fn heartbeat_every(&self) -> u64 {
        self.heartbeat_every.load(Ordering::Relaxed)
    }

    /// Sets the heartbeat cadence (overrides `MMDS_HEARTBEAT`).
    pub fn set_heartbeat_every(&self, every: u64) {
        self.heartbeat_every.store(every, Ordering::Relaxed);
    }

    /// Attaches an in-process live monitor: every emitted record is
    /// also folded into it, and alerts it raises are re-emitted as
    /// [`Event::Alert`] records and pushed into the counter registry
    /// (so they land in the end-of-run [`RunReport`]). Implies
    /// enabling telemetry — the monitor needs the event flow.
    pub fn attach_monitor(&self, monitor: Arc<LiveMonitor>) {
        *self.monitor.lock().unwrap() = Some(monitor);
        self.has_monitor.store(true, Ordering::Relaxed);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Detaches the live monitor, returning it.
    pub fn detach_monitor(&self) -> Option<Arc<LiveMonitor>> {
        self.has_monitor.store(false, Ordering::Relaxed);
        self.monitor.lock().unwrap().take()
    }

    /// The counter registry of this domain.
    pub fn counters(&self) -> &CounterRegistry {
        &self.counters
    }

    /// Opens a span. The guard closes it on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard { owner: None };
        }
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let path = match s.last() {
                Some(parent) => format!("{}/{name}", parent.path),
                None => name.to_string(),
            };
            s.push(Frame {
                path: path.clone(),
                start: Instant::now(),
                child_ns: 0,
            });
            path
        });
        self.emit(Event::SpanOpen { path });
        SpanGuard { owner: Some(self) }
    }

    fn close_span(&self) {
        let Some(frame) = STACK.with(|s| s.borrow_mut().pop()) else {
            return;
        };
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            if let Some(parent) = s.borrow_mut().last_mut() {
                parent.child_ns += elapsed;
            }
        });
        {
            let mut spans = self.spans.lock().unwrap();
            let e = spans
                .entry((current_rank(), frame.path.clone()))
                .or_default();
            e.count += 1;
            e.total_ns += elapsed;
            e.child_ns += frame.child_ns;
        }
        self.emit(Event::SpanClose {
            path: frame.path,
            dur_ns: elapsed,
        });
    }

    /// Streams one event to the sink, if a sink is installed, and to
    /// the attached live monitor, if any. Events get a process-ordered
    /// sequence number under the sink lock, so concurrent emitters
    /// produce a consistent total order. Monitor ingestion happens
    /// *after* the sink lock is released; alerts the watchdog raises
    /// re-enter `emit` (as [`Event::Alert`]) and terminate there —
    /// the monitor ignores alert records on ingest.
    pub fn emit(&self, event: Event) {
        // Resolve thread identity before taking the sink lock.
        let rank = current_rank();
        let tid = Some(thread_tid());
        let monitor = if self.has_monitor.load(Ordering::Relaxed) {
            self.monitor.lock().unwrap().clone()
        } else {
            None
        };
        let record = {
            let mut sink = self.sink.lock().unwrap();
            if sink.is_none() && monitor.is_none() {
                return;
            }
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let t_ns = self.epoch.elapsed().as_nanos() as u64;
            let record = Record {
                seq,
                t_ns,
                rank,
                tid,
                event,
            };
            if let Some(sink) = sink.as_mut() {
                sink.record(&record);
            }
            record
        };
        if let Some(monitor) = monitor {
            for alert in monitor.ingest(&record) {
                self.counters.push_alert(alert.clone());
                self.emit(Event::Alert(alert));
            }
        }
    }

    /// Snapshot of all span statistics aggregated over ranks, sorted by
    /// path. This is the pre-rank-dimension view existing consumers
    /// (the tree renderer, figure binaries) expect.
    pub fn span_reports(&self) -> Vec<crate::report::SpanReport> {
        let spans = self.spans.lock().unwrap();
        let mut merged: HashMap<&str, SpanStat> = HashMap::new();
        for ((_, path), s) in spans.iter() {
            let e = merged.entry(path.as_str()).or_default();
            e.count += s.count;
            e.total_ns += s.total_ns;
            e.child_ns += s.child_ns;
        }
        let mut out: Vec<_> = merged
            .into_iter()
            .map(|(path, s)| crate::report::SpanReport {
                path: path.to_string(),
                count: s.count,
                total_s: s.total_ns as f64 * 1e-9,
                self_s: s.total_ns.saturating_sub(s.child_ns) as f64 * 1e-9,
            })
            .collect();
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    /// Span statistics split by emitting rank, sorted by (rank, path);
    /// the `None` (driver) dimension comes first.
    pub fn rank_span_reports(&self) -> Vec<(Option<u32>, crate::report::SpanReport)> {
        let spans = self.spans.lock().unwrap();
        let mut out: Vec<_> = spans
            .iter()
            .map(|((rank, path), s)| {
                (
                    *rank,
                    crate::report::SpanReport {
                        path: path.clone(),
                        count: s.count,
                        total_s: s.total_ns as f64 * 1e-9,
                        self_s: s.total_ns.saturating_sub(s.child_ns) as f64 * 1e-9,
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| (a.0, &a.1.path).cmp(&(b.0, &b.1.path)));
        out
    }

    /// Merges spans, counters, retained samples, and the per-rank
    /// breakdown into the final run-wide report.
    pub fn run_report(&self) -> RunReport {
        crate::report::build_run_report(
            self.span_reports(),
            self.rank_span_reports(),
            &self.counters,
        )
    }

    /// Renders the flamegraph-style self-time tree of this instance.
    pub fn render_tree(&self) -> String {
        crate::render::render_tree(&self.span_reports())
    }

    /// Clears spans, counters, and samples (not the sink).
    pub fn reset(&self) {
        self.spans.lock().unwrap().clear();
        self.counters.reset();
        self.seq.store(0, Ordering::Relaxed);
    }
}

/// RAII guard returned by [`Telemetry::span`]; closes the span on drop.
pub struct SpanGuard<'a> {
    owner: Option<&'a Telemetry>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.owner {
            t.close_span();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sleep_ms(ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let t = Telemetry::with_mode(Mode::Off);
        {
            let _g = t.span("root");
        }
        assert!(t.span_reports().is_empty());
    }

    #[test]
    fn nesting_builds_paths_and_child_time() {
        let t = Telemetry::with_mode(Mode::Summary);
        {
            let _root = t.span("root");
            sleep_ms(5);
            {
                let _child = t.span("child");
                sleep_ms(10);
            }
            sleep_ms(5);
        }
        let reports = t.span_reports();
        let root = reports.iter().find(|r| r.path == "root").unwrap();
        let child = reports.iter().find(|r| r.path == "root/child").unwrap();
        assert_eq!(root.count, 1);
        assert_eq!(child.count, 1);
        // Child total is inside root total; root self-time excludes it.
        assert!(child.total_s <= root.total_s + 1e-9);
        assert!(root.self_s <= root.total_s);
        assert!((root.self_s + child.total_s) <= root.total_s + 1e-3);
    }

    #[test]
    fn sibling_spans_accumulate_counts() {
        let t = Telemetry::with_mode(Mode::Summary);
        {
            let _root = t.span("r2");
            for _ in 0..3 {
                let _c = t.span("step");
            }
        }
        let reports = t.span_reports();
        let step = reports.iter().find(|r| r.path == "r2/step").unwrap();
        assert_eq!(step.count, 3);
    }

    #[test]
    fn guard_drop_order_is_safe_across_threads() {
        let t = std::sync::Arc::new(Telemetry::with_mode(Mode::Summary));
        let mut handles = Vec::new();
        for i in 0..4 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let _g = t.span(if i % 2 == 0 { "even" } else { "odd" });
                sleep_ms(2);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let reports = t.span_reports();
        assert_eq!(reports.iter().map(|r| r.count).sum::<u64>(), 4);
        // Threads have independent stacks: both names are roots.
        assert!(reports.iter().all(|r| !r.path.contains('/')));
    }
}
