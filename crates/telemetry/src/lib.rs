//! Unified telemetry for the MMDS workspace.
//!
//! The paper's whole evaluation (Figs. 9–17) is per-phase timing plus
//! communication-volume accounting; this crate is the substrate that
//! produces those numbers from *one* instrumentation layer:
//!
//! * **Phase spans** ([`span!`]) — RAII-guarded, nestable timers that
//!   accumulate wall time and call counts into a thread-safe registry.
//!   When telemetry is off the guard is a no-op (one relaxed atomic
//!   load), so instrumentation stays compiled in for release builds.
//! * **Structured events** ([`event::Event`]) — span open/close,
//!   per-step MD samples, per-cycle KMC samples, arbitrary counters —
//!   streamed to a pluggable JSONL sink (file, in-memory, null).
//! * **Counter registry** ([`report::CounterRegistry`]) — absorbs the
//!   per-rank [`mmds_swmpi::CommStats`] and per-CPE
//!   [`mmds_sunway::CpeCounters`] so a run ends with one merged
//!   [`report::RunReport`] serializable to JSON.
//! * **Rank dimension** — worker threads tag themselves with their
//!   simulated rank ([`rank_scope`]); spans, streamed events, and comm
//!   deposits keep the tag, so the report carries a per-rank breakdown
//!   ([`report::RankReport`]) and per-phase load-imbalance table
//!   ([`report::PhaseImbalance`]).
//! * **Perfetto export** ([`perfetto::export`]) — the JSONL stream
//!   converts to Chrome `trace_event` JSON (rank→process,
//!   thread→track) viewable at <https://ui.perfetto.dev>.
//!
//! Configuration comes from `MMDS_TELEMETRY`:
//!
//! | value          | effect                                          |
//! |----------------|-------------------------------------------------|
//! | `off` / unset  | spans disabled, no events                       |
//! | `summary`      | spans on; end-of-run self-time tree             |
//! | `jsonl:<path>` | spans on; events streamed to `<path>` as JSONL  |
//!
//! ```
//! mmds_telemetry::set_mode(mmds_telemetry::Mode::Summary);
//! {
//!     let _run = mmds_telemetry::span!("example.run");
//!     let _phase = mmds_telemetry::span!("example.phase");
//! }
//! let report = mmds_telemetry::global().run_report();
//! assert_eq!(report.spans[0].path, "example.run");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod event;
pub mod monitor;
pub mod perfetto;
pub mod render;
pub mod report;
pub mod serve;
pub mod span;

use std::sync::{Arc, OnceLock};

pub use canon::{CanonError, ConfigKey, FacetValue};
pub use event::{
    AlertRecord, AlertSeverity, CommRecord, Event, EventSink, FileSink, HeartbeatSample,
    KmcCycleSample, MdStepSample, MemorySink, Record, SeriesSample,
};
pub use monitor::{
    render_prometheus, validate_prometheus_text, LiveAggregator, LiveMonitor, TailReader,
    WatchdogConfig, ALERT_COUNTERS, COMM_COUNTERS, MONITOR_COUNTERS,
};
pub use report::{
    CounterRegistry, PhaseImbalance, RankComm, RankReport, RunReport, SeriesPoint, SeriesTrack,
    SpanReport,
};
pub use serve::MetricsServer;
pub use span::{
    current_rank, rank_scope, set_thread_rank, thread_tid, RankScope, SpanGuard, Telemetry,
};

/// What the telemetry layer does with what it observes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// Spans compile to no-ops; nothing is recorded.
    Off,
    /// Spans and counters accumulate; callers may render a summary.
    Summary,
    /// Like `Summary`, plus every event is streamed as JSONL to a file.
    Jsonl(String),
}

impl Mode {
    /// Parses the `MMDS_TELEMETRY` syntax.
    pub fn parse(s: &str) -> Mode {
        let s = s.trim();
        if s.eq_ignore_ascii_case("summary") {
            Mode::Summary
        } else if let Some(path) = s.strip_prefix("jsonl:") {
            Mode::Jsonl(path.to_string())
        } else {
            Mode::Off
        }
    }

    /// Reads the mode from the environment.
    pub fn from_env() -> Mode {
        match std::env::var("MMDS_TELEMETRY") {
            Ok(v) => Mode::parse(&v),
            Err(_) => Mode::Off,
        }
    }
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// The process-wide telemetry instance.
///
/// Initialized lazily from `MMDS_TELEMETRY` on first touch (and, when
/// `MMDS_COMM_TRACE` asks for it, wires the causal comm tracer); the
/// mode can be changed later with [`set_mode`].
pub fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(|| {
        if comm_trace_env_on() {
            enable_comm_tracing();
        }
        Telemetry::with_mode(Mode::from_env())
    })
}

fn comm_trace_env_on() -> bool {
    std::env::var("MMDS_COMM_TRACE")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false)
}

/// Forwards every swmpi communication event into the telemetry stream
/// as an [`Event::Comm`] record. Installed process-globally; events are
/// dropped (one relaxed load on the swmpi side, one enabled check here)
/// whenever telemetry is off.
struct CommForwarder;

impl mmds_swmpi::CommTracer for CommForwarder {
    fn on_comm(&self, ev: &mmds_swmpi::CommEvent) {
        let tel = global();
        if tel.enabled() {
            tel.emit(Event::Comm(CommRecord::from(ev)));
        }
    }
}

/// Turns on causal comm tracing: installs a tracer into
/// [`mmds_swmpi::trace`] that forwards every primitive's enter/exit
/// record into the telemetry stream. Also happens automatically when
/// `MMDS_COMM_TRACE=1` is set at first telemetry touch. Tracing is
/// pure observation — the swmpi Lamport/seq bookkeeping runs
/// identically with the tracer absent, so trajectories are bitwise
/// unchanged.
pub fn enable_comm_tracing() {
    mmds_swmpi::trace::install_tracer(Arc::new(CommForwarder));
}

/// Detaches the causal comm tracer (events stop flowing immediately).
pub fn disable_comm_tracing() {
    mmds_swmpi::trace::clear_tracer();
}

/// True while a causal comm tracer is installed.
pub fn comm_tracing_enabled() -> bool {
    mmds_swmpi::trace::tracing()
}

/// Reconfigures the global instance (mainly for tests and binaries
/// that decide the mode programmatically).
pub fn set_mode(mode: Mode) {
    global().set_mode(mode);
}

/// True when spans are being recorded.
pub fn enabled() -> bool {
    global().enabled()
}

/// Opens a phase span on the global instance. Prefer the [`span!`]
/// macro, which reads better at call sites.
pub fn span_enter(name: &'static str) -> SpanGuard<'static> {
    global().span(name)
}

/// Opens a named, RAII-guarded phase span:
///
/// ```
/// # mmds_telemetry::set_mode(mmds_telemetry::Mode::Summary);
/// let _g = mmds_telemetry::span!("md.force");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_enter($name)
    };
}

/// Records an event on the global instance's sink (if any).
pub fn emit(event: Event) {
    global().emit(event);
}

/// Flushes the global instance's sink. The `FileSink` backstop only
/// flushes every 128 records (plus root-span closes), so a run ending
/// without a root-span close can truncate the stream tail — call this
/// at the end of binaries that stream JSONL.
pub fn flush() {
    global().flush_sink();
}

/// Sets the heartbeat cadence of the global instance (progress units
/// between beats; 0 disables). Overrides `MMDS_HEARTBEAT`.
pub fn set_heartbeat_every(every: u64) {
    global().set_heartbeat_every(every);
}

/// Emits a [`Event::Heartbeat`] from a step/cycle loop when the
/// cadence says so: every `MMDS_HEARTBEAT` progress units, plus at
/// `progress == total` when a target is known. `progress` counts from
/// 1 (beats land on completed units); `total = 0` means open-ended.
/// A pure observation — never touches dynamics state — so trajectories
/// stay bitwise-identical with heartbeats on or off.
pub fn emit_heartbeat(source: &str, progress: u64, total: u64) {
    let tel = global();
    if !tel.enabled() {
        return;
    }
    let every = tel.heartbeat_every();
    if every == 0 {
        return;
    }
    if progress.is_multiple_of(every) || (total > 0 && progress == total) {
        tel.emit(Event::Heartbeat(HeartbeatSample {
            source: source.to_string(),
            progress,
            total,
        }));
    }
}

/// Emits a [`Event::Heartbeat`] unconditionally (cadence permitting
/// only that heartbeats are enabled at all) — for coarse phase
/// boundaries where every transition is worth a beat.
pub fn emit_phase_heartbeat(source: &str, progress: u64, total: u64) {
    let tel = global();
    if !tel.enabled() || tel.heartbeat_every() == 0 {
        return;
    }
    tel.emit(Event::Heartbeat(HeartbeatSample {
        source: source.to_string(),
        progress,
        total,
    }));
}

/// Handle returned by [`start_live_monitor`]: keeps the monitor
/// attached to the global telemetry instance and the optional metrics
/// server alive. Dropping it detaches both.
pub struct MonitorHandle {
    monitor: Arc<LiveMonitor>,
    server: Option<MetricsServer>,
}

impl MonitorHandle {
    /// The shared monitor (for direct inspection in tests/tools).
    pub fn monitor(&self) -> &Arc<LiveMonitor> {
        &self.monitor
    }

    /// Bound address of the metrics endpoint, when one was requested.
    pub fn addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(MetricsServer::addr)
    }

    /// Detaches the monitor from the global instance and stops the
    /// metrics server (also happens on drop).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        global().detach_monitor();
        if let Some(mut s) = self.server.take() {
            s.stop();
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Attaches an in-process live monitor to the global telemetry
/// instance: every emitted record is folded into a bounded
/// [`LiveAggregator`], the watchdog rules in `cfg` are evaluated as
/// records arrive, and raised alerts flow back through the sink as
/// [`Event::Alert`] records (and into the run report). When `addr` is
/// given (e.g. `"127.0.0.1:9464"`, port 0 for an ephemeral port), a
/// [`MetricsServer`] serves `/metrics` and `/healthz` from the same
/// aggregator until the handle is dropped.
pub fn start_live_monitor(
    cfg: WatchdogConfig,
    addr: Option<&str>,
) -> std::io::Result<MonitorHandle> {
    let monitor = Arc::new(LiveMonitor::new(LiveAggregator::live(cfg)));
    let server = match addr {
        Some(a) => Some(MetricsServer::spawn(a, Arc::clone(&monitor))?),
        None => None,
    };
    global().attach_monitor(Arc::clone(&monitor));
    Ok(MonitorHandle { monitor, server })
}

/// Adds a named counter on the global instance. The increment is
/// accumulated in the counter registry *and* streamed as an
/// [`Event::Counter`] record, so tailing consumers (the live monitor,
/// `mmds-inspect watch`/`summary` over a JSONL trace) see the same
/// named totals the in-process report does — the watchdog's
/// health-threshold rule depends on this.
pub fn add_counter(name: &str, value: f64) {
    let tel = global();
    tel.counters().add_named(name, value);
    tel.emit(Event::Counter {
        name: name.to_string(),
        value,
    });
}

/// Records one science-series sample on the global instance: the point
/// is retained on the `(current rank, name)` track of the counter
/// registry *and* streamed to the JSONL sink (if one is installed).
/// `t` is the domain time index (MD step, KMC cycle) and must be
/// non-decreasing per track.
pub fn emit_series(name: &str, t: u64, value: f64) {
    let tel = global();
    tel.counters().push_series(current_rank(), name, t, value);
    tel.emit(Event::Series(SeriesSample {
        name: name.to_string(),
        t,
        value,
    }));
}

/// Absorbs per-rank communication stats into the global registry.
pub fn absorb_comm_stats(stats: &mmds_swmpi::CommStats) {
    global().counters().absorb_comm(stats);
}

/// Absorbs one identified rank's communication stats — and, when
/// captured, its pairwise flow matrix — into the global registry.
/// Prefer this over [`absorb_comm_stats`]: the per-rank detail feeds
/// the [`report::RankReport`] breakdown and comm-matrix validation.
pub fn absorb_comm_rank(
    rank: u32,
    stats: &mmds_swmpi::CommStats,
    matrix: Option<&mmds_swmpi::CommMatrix>,
) {
    global().counters().absorb_comm_rank(rank, stats, matrix);
}

/// Absorbs per-CPE counters into the global registry.
pub fn absorb_cpe_counters(counters: &mmds_sunway::CpeCounters) {
    global().counters().absorb_cpe(counters);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(Mode::parse("off"), Mode::Off);
        assert_eq!(Mode::parse(""), Mode::Off);
        assert_eq!(Mode::parse("summary"), Mode::Summary);
        assert_eq!(Mode::parse("SUMMARY"), Mode::Summary);
        assert_eq!(
            Mode::parse("jsonl:/tmp/trace.jsonl"),
            Mode::Jsonl("/tmp/trace.jsonl".into())
        );
    }
}
