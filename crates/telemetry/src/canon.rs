//! Canonical run-configuration keys and their content hash.
//!
//! The run archive (`mmds-bench::archive`) stores every benchmark run
//! under a *config hash*: a stable digest of the scenario name plus the
//! build/run facets that make two runs comparable (box size, step
//! count, thread count, table form, fused/batched flags, exchange
//! strategy, …). Two runs with the same facets hash to the same id and
//! land in the same history trend; changing any facet changes the id.
//! The same key is the exact-result-cache key a future `mmds-serve`
//! needs: bitwise determinism (proven by the audit linter and the
//! determinism tests) makes a cached result for an identical key exact.
//!
//! The hash is computed over a *canonical serialization*, not over
//! whatever JSON happens to be emitted: facets are sorted by key, every
//! value carries a type tag, strings are length-prefixed, and floats
//! are rendered with Rust's shortest-round-trip formatting. Non-finite
//! floats are rejected with an error *before* hashing — the JSON layer
//! would silently turn them into `null`, which is exactly the kind of
//! accidental aliasing a cache key must never have.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Version prefix of the canonical serialization. Bump when the
/// rendering rules change — old archives then key under a different
/// hash instead of silently colliding.
pub const CANON_VERSION: &str = "v1";

/// One typed facet value of a [`ConfigKey`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FacetValue {
    /// A boolean flag (e.g. `batched`).
    Bool(bool),
    /// An integer facet (e.g. `cells`, `threads`).
    Int(i64),
    /// A float facet (e.g. `concentration`). Must be finite.
    Float(f64),
    /// A string facet (e.g. `table_form`).
    Str(String),
}

/// Why a key could not be canonicalized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CanonError {
    /// A float facet was NaN or infinite.
    NonFinite {
        /// The offending facet key (or `scenario`).
        key: String,
    },
    /// A facet key is empty or contains characters outside
    /// `[a-z0-9_.]`.
    BadKey {
        /// The offending facet key.
        key: String,
    },
}

impl std::fmt::Display for CanonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanonError::NonFinite { key } => {
                write!(f, "facet `{key}` is non-finite — refusing to hash a config whose canonical form would alias (JSON renders NaN/inf as null)")
            }
            CanonError::BadKey { key } => {
                write!(f, "facet key `{key}` is not lower_snake dotted ascii")
            }
        }
    }
}

impl std::error::Error for CanonError {}

/// The canonical identity of a run configuration: a scenario name plus
/// sorted, typed facets.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConfigKey {
    /// Scenario name (e.g. `mdstep`, `kmcstep`, `causal_smoke`).
    pub scenario: String,
    /// Comparability facets, keyed by lower_snake name.
    pub facets: BTreeMap<String, FacetValue>,
}

impl ConfigKey {
    /// Starts a key for `scenario` with no facets.
    pub fn new(scenario: &str) -> Self {
        ConfigKey {
            scenario: scenario.to_string(),
            facets: BTreeMap::new(),
        }
    }

    /// Adds a boolean facet.
    pub fn with_bool(mut self, key: &str, v: bool) -> Self {
        self.facets.insert(key.to_string(), FacetValue::Bool(v));
        self
    }

    /// Adds an integer facet.
    pub fn with_int(mut self, key: &str, v: i64) -> Self {
        self.facets.insert(key.to_string(), FacetValue::Int(v));
        self
    }

    /// Adds a float facet (validated finite at canonicalization).
    pub fn with_float(mut self, key: &str, v: f64) -> Self {
        self.facets.insert(key.to_string(), FacetValue::Float(v));
        self
    }

    /// Adds a string facet.
    pub fn with_str(mut self, key: &str, v: &str) -> Self {
        self.facets
            .insert(key.to_string(), FacetValue::Str(v.to_string()));
        self
    }

    /// Renders the canonical serialization:
    ///
    /// ```text
    /// v1;scenario=s:6:mdstep;batched=b:true;cells=i:8;…
    /// ```
    ///
    /// Facets come out sorted by key (the `BTreeMap` guarantees it),
    /// every value is type-tagged, strings are length-prefixed (so a
    /// string containing `;` or `=` cannot alias a neighbouring facet),
    /// and floats use `{:?}` — Rust's shortest representation that
    /// parses back to the same bits. Errors on non-finite floats and
    /// malformed keys instead of producing an aliasing rendering.
    pub fn canonical(&self) -> Result<String, CanonError> {
        let mut out = String::from(CANON_VERSION);
        out.push_str(";scenario=");
        out.push_str(&render_str(&self.scenario));
        for (key, value) in &self.facets {
            if key.is_empty()
                || !key
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
            {
                return Err(CanonError::BadKey { key: key.clone() });
            }
            out.push(';');
            out.push_str(key);
            out.push('=');
            match value {
                FacetValue::Bool(b) => out.push_str(if *b { "b:true" } else { "b:false" }),
                FacetValue::Int(i) => {
                    out.push_str("i:");
                    out.push_str(&i.to_string());
                }
                FacetValue::Float(x) => {
                    if !x.is_finite() {
                        return Err(CanonError::NonFinite { key: key.clone() });
                    }
                    out.push_str(&format!("f:{x:?}"));
                }
                FacetValue::Str(s) => out.push_str(&render_str(s)),
            }
        }
        Ok(out)
    }

    /// The 64-bit FNV-1a digest of the canonical serialization, as 16
    /// lowercase hex digits — the archive's config id.
    pub fn hash(&self) -> Result<String, CanonError> {
        Ok(format!("{:016x}", fnv1a64(self.canonical()?.as_bytes())))
    }
}

fn render_str(s: &str) -> String {
    format!("s:{}:{s}", s.len())
}

/// 64-bit FNV-1a over a byte string. Small, dependency-free, and
/// stable across platforms — exactly what a checked-in golden hash
/// needs. Not cryptographic; the archive is a cache, not a ledger.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden() -> ConfigKey {
        ConfigKey::new("mdstep")
            .with_int("cells", 8)
            .with_int("steps", 20)
            .with_int("threads", 1)
            .with_str("table_form", "Compacted")
            .with_bool("batched", true)
    }

    #[test]
    fn canonical_is_sorted_and_tagged() {
        let c = golden().canonical().unwrap();
        assert_eq!(
            c,
            "v1;scenario=s:6:mdstep;batched=b:true;cells=i:8;steps=i:20;\
             table_form=s:9:Compacted;threads=i:1"
        );
    }

    #[test]
    fn golden_hash_is_pinned() {
        // Pins the full canonicalization pipeline: renaming a field,
        // reordering facets, or changing a type tag breaks this test
        // loudly instead of silently orphaning every archived run.
        assert_eq!(golden().hash().unwrap(), "aef8180a3751d5b9");
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let a = ConfigKey::new("x").with_int("p", 1).with_int("q", 2);
        let b = ConfigKey::new("x").with_int("q", 2).with_int("p", 1);
        assert_eq!(a.hash().unwrap(), b.hash().unwrap());
    }

    #[test]
    fn every_facet_perturbs_the_hash() {
        let base = golden().hash().unwrap();
        for perturbed in [
            golden().with_int("threads", 2),
            golden().with_str("table_form", "Traditional"),
            golden().with_bool("batched", false),
            golden().with_int("cells", 10),
            ConfigKey::new("kmcstep")
                .with_int("cells", 8)
                .with_int("steps", 20)
                .with_int("threads", 1)
                .with_str("table_form", "Compacted")
                .with_bool("batched", true),
        ] {
            assert_ne!(perturbed.hash().unwrap(), base, "{perturbed:?}");
        }
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let key = ConfigKey::new("x").with_float("conc", bad);
            match key.hash() {
                Err(CanonError::NonFinite { key }) => assert_eq!(key, "conc"),
                other => panic!("expected NonFinite error, got {other:?}"),
            }
        }
        // Finite floats are fine and round-trip shortest.
        let ok = ConfigKey::new("x").with_float("conc", 2.0e-3);
        assert!(ok.canonical().unwrap().contains("conc=f:0.002"));
    }

    #[test]
    fn bad_keys_are_rejected_and_strings_cannot_alias() {
        assert!(matches!(
            ConfigKey::new("x").with_int("Bad Key", 1).canonical(),
            Err(CanonError::BadKey { .. })
        ));
        // A string value containing `;key=` must not collide with an
        // actual facet — the length prefix disambiguates.
        let tricky = ConfigKey::new("x").with_str("a", "1;b=i:2");
        let plain = ConfigKey::new("x").with_str("a", "1").with_int("b", 2);
        assert_ne!(tricky.hash().unwrap(), plain.hash().unwrap());
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn config_key_round_trips_through_json() {
        let key = golden().with_float("conc", 0.003);
        let json = serde_json::to_string(&key).unwrap();
        let back: ConfigKey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, key);
        assert_eq!(back.hash().unwrap(), key.hash().unwrap());
    }
}
