//! The run-wide counter registry and the final serializable report.
//!
//! The registry is the single aggregation point that used to be spread
//! over ad-hoc `CommStats::sum` calls in every figure binary: ranks
//! deposit their [`mmds_swmpi::CommStats`], CPE clusters their
//! [`mmds_sunway::CpeCounters`], phases their named counters, and the
//! run ends with one [`RunReport`].

use std::collections::BTreeMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::event::{AlertRecord, KmcCycleSample, MdStepSample};

/// One retained point of a science series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Domain time index (MD step, KMC cycle, phase ordinal).
    pub t: u64,
    /// Sampled value.
    pub value: f64,
}

/// One `(rank, name)` science time-series track, points in push order
/// (which the registry guarantees is non-decreasing in `t`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesTrack {
    /// Series name (dotted, e.g. `census.frenkel_pairs`).
    pub name: String,
    /// Emitting rank; `None` for driver/untagged threads.
    pub rank: Option<u32>,
    /// The samples, monotonic in `t`.
    pub points: Vec<SeriesPoint>,
}

impl SeriesTrack {
    /// Last sampled value, if any point was pushed.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }
}

/// Statistics of one span path (times in seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Full `a/b/c` call path.
    pub path: String,
    /// Times the span closed.
    pub count: u64,
    /// Total wall time across all closes.
    pub total_s: f64,
    /// Total minus time attributed to child spans.
    pub self_s: f64,
}

/// Aggregated counters at one point in time.
///
/// `comm` is *derived* at snapshot time from the retained per-rank
/// entries (see [`CounterRegistry::comm_entries`]), so consumers of the
/// sum are unchanged while the per-rank detail is no longer lost.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Element-wise sum of every absorbed per-rank [`mmds_swmpi::CommStats`].
    pub comm: mmds_swmpi::CommStats,
    /// Ranks absorbed into `comm`.
    pub comm_ranks: u64,
    /// Element-wise sum of every absorbed per-CPE [`mmds_sunway::CpeCounters`].
    pub cpe: mmds_sunway::CpeCounters,
    /// CPE counter sets absorbed into `cpe`.
    pub cpe_sets: u64,
    /// Free-form named counters (`name -> accumulated value`).
    pub named: BTreeMap<String, f64>,
}

/// One absorbed rank's communication record, kept un-merged.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankComm {
    /// Rank id when the depositor identified itself; `None` for legacy
    /// [`CounterRegistry::absorb_comm`] calls.
    pub rank: Option<u32>,
    /// The rank's exact byte/message counters and virtual times.
    pub stats: mmds_swmpi::CommStats,
    /// Pairwise src→dst flows, when the depositor captured them.
    pub matrix: Option<mmds_swmpi::CommMatrix>,
}

/// Retained MD/KMC samples, in deposit order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleLog {
    /// Per-step MD samples.
    pub md: Vec<MdStepSample>,
    /// Per-cycle KMC samples.
    pub kmc: Vec<KmcCycleSample>,
}

/// One simulated rank's view of the run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankReport {
    /// Rank id.
    pub rank: u32,
    /// Span statistics of work tagged to this rank, sorted by path.
    pub spans: Vec<SpanReport>,
    /// The rank's communication counters, when deposited.
    pub comm: Option<mmds_swmpi::CommStats>,
    /// The rank's pairwise flows, when deposited.
    pub matrix: Option<mmds_swmpi::CommMatrix>,
}

/// Load balance of one span path across tagged ranks. A rank that
/// never entered the phase contributes 0 to `avg_s`/`min_s`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseImbalance {
    /// Full `a/b/c` span path.
    pub path: String,
    /// Tagged ranks considered (the whole observed world).
    pub ranks: u64,
    /// Slowest rank's total wall time in this phase (s).
    pub max_s: f64,
    /// Mean over all tagged ranks (s).
    pub avg_s: f64,
    /// Fastest rank's total (s); 0 when some rank skipped the phase.
    pub min_s: f64,
    /// `max_s / avg_s`; 1.0 is perfectly balanced.
    pub ratio: f64,
}

/// Everything a run produced: span timings, merged counters, samples,
/// and the per-rank breakdown.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Span statistics aggregated over ranks, sorted by path.
    pub spans: Vec<SpanReport>,
    /// Merged counters.
    pub counters: CounterSnapshot,
    /// Retained samples.
    pub samples: SampleLog,
    /// Per-rank breakdowns, sorted by rank id. Empty when nothing was
    /// rank-tagged (serial runs).
    pub ranks: Vec<RankReport>,
    /// Per-phase load-balance table over the tagged ranks, sorted by
    /// descending `max_s`.
    pub imbalance: Vec<PhaseImbalance>,
    /// Science time-series tracks, sorted by `(name, rank)`.
    pub series: Vec<SeriesTrack>,
    /// Watchdog alerts raised during the run, in raise order. Empty
    /// when no live monitor was attached.
    pub alerts: Vec<AlertRecord>,
}

impl RunReport {
    /// Pretty JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Sum of wall time over top-level (root) spans — the quantity that
    /// should track total run wall time when instrumentation covers the
    /// whole run.
    pub fn root_total_s(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| !s.path.contains('/'))
            .map(|s| s.total_s)
            .sum()
    }

    /// Assembles the per-rank [`mmds_swmpi::WorldMatrix`] from the rank
    /// reports, or `None` when no rank deposited a matrix. Ranks are
    /// placed by their id, so gaps become empty rows.
    pub fn world_matrix(&self) -> Option<mmds_swmpi::WorldMatrix> {
        let n = self
            .ranks
            .iter()
            .filter(|r| r.matrix.is_some())
            .map(|r| r.rank + 1)
            .max()? as usize;
        let mut mats = vec![mmds_swmpi::CommMatrix::default(); n];
        for r in &self.ranks {
            if let Some(m) = &r.matrix {
                mats[r.rank as usize] = m.clone();
            }
        }
        Some(mmds_swmpi::WorldMatrix::from_ranks(&mats))
    }
}

/// Builds the final report from the two span views plus the registry.
/// Used by [`crate::Telemetry::run_report`]; public so tests can drive
/// it directly.
pub fn build_run_report(
    spans: Vec<SpanReport>,
    rank_spans: Vec<(Option<u32>, SpanReport)>,
    counters: &CounterRegistry,
) -> RunReport {
    let comm_entries = counters.comm_entries();

    // Gather the set of tagged ranks seen by either subsystem.
    let mut rank_ids: Vec<u32> = rank_spans
        .iter()
        .filter_map(|(r, _)| *r)
        .chain(comm_entries.iter().filter_map(|e| e.rank))
        .collect();
    rank_ids.sort_unstable();
    rank_ids.dedup();

    let ranks: Vec<RankReport> = rank_ids
        .iter()
        .map(|&rank| {
            let spans: Vec<SpanReport> = rank_spans
                .iter()
                .filter(|(r, _)| *r == Some(rank))
                .map(|(_, s)| s.clone())
                .collect();
            // A rank id can deposit several times when one process runs
            // several worlds (weak-scaling sweeps); merge, don't pick.
            let mut comm: Option<mmds_swmpi::CommStats> = None;
            let mut matrix: Option<mmds_swmpi::CommMatrix> = None;
            for e in comm_entries.iter().filter(|e| e.rank == Some(rank)) {
                comm = Some(match comm {
                    Some(c) => c.merge(&e.stats),
                    None => e.stats,
                });
                if let Some(m) = &e.matrix {
                    match &mut matrix {
                        Some(acc) => acc.merge(m),
                        None => matrix = Some(m.clone()),
                    }
                }
            }
            RankReport {
                rank,
                spans,
                comm,
                matrix,
            }
        })
        .collect();

    // Per-phase imbalance over the tagged ranks.
    let n = rank_ids.len() as u64;
    let mut imbalance: Vec<PhaseImbalance> = Vec::new();
    if n > 0 {
        let mut paths: Vec<&str> = rank_spans
            .iter()
            .filter(|(r, _)| r.is_some())
            .map(|(_, s)| s.path.as_str())
            .collect();
        paths.sort_unstable();
        paths.dedup();
        for path in paths {
            let mut per_rank = vec![0.0f64; rank_ids.len()];
            for (r, s) in &rank_spans {
                if s.path == path {
                    if let Some(r) = r {
                        if let Ok(i) = rank_ids.binary_search(r) {
                            per_rank[i] += s.total_s;
                        }
                    }
                }
            }
            let max_s = per_rank.iter().copied().fold(0.0, f64::max);
            let min_s = per_rank.iter().copied().fold(f64::INFINITY, f64::min);
            let avg_s = per_rank.iter().sum::<f64>() / n as f64;
            imbalance.push(PhaseImbalance {
                path: path.to_string(),
                ranks: n,
                max_s,
                avg_s,
                min_s,
                ratio: if avg_s > 0.0 { max_s / avg_s } else { 1.0 },
            });
        }
        imbalance.sort_by(|a, b| b.max_s.total_cmp(&a.max_s));
    }

    RunReport {
        spans,
        counters: counters.snapshot(),
        samples: counters.samples(),
        ranks,
        imbalance,
        series: counters.series_tracks(),
        alerts: counters.alerts(),
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    comm_entries: Vec<RankComm>,
    cpe: mmds_sunway::CpeCounters,
    cpe_sets: u64,
    named: BTreeMap<String, f64>,
    md: Vec<MdStepSample>,
    kmc: Vec<KmcCycleSample>,
    // Keyed by (name, rank) so iteration — and hence the report —
    // is deterministic regardless of deposit interleaving.
    series: BTreeMap<(String, Option<u32>), Vec<SeriesPoint>>,
    alerts: Vec<AlertRecord>,
}

/// Thread-safe accumulator behind [`crate::Telemetry::counters`]. All
/// methods take `&self`; a mutex guards the interior.
#[derive(Debug, Default)]
pub struct CounterRegistry {
    inner: Mutex<RegistryInner>,
}

impl CounterRegistry {
    /// Retains one rank's communication stats (anonymously — prefer
    /// [`CounterRegistry::absorb_comm_rank`], which keeps the rank id).
    pub fn absorb_comm(&self, stats: &mmds_swmpi::CommStats) {
        self.inner.lock().unwrap().comm_entries.push(RankComm {
            rank: None,
            stats: *stats,
            matrix: None,
        });
    }

    /// Retains one identified rank's communication stats and, when
    /// available, its pairwise flow matrix.
    pub fn absorb_comm_rank(
        &self,
        rank: u32,
        stats: &mmds_swmpi::CommStats,
        matrix: Option<&mmds_swmpi::CommMatrix>,
    ) {
        self.inner.lock().unwrap().comm_entries.push(RankComm {
            rank: Some(rank),
            stats: *stats,
            matrix: matrix.cloned(),
        });
    }

    /// Copies out the retained per-rank communication entries, in
    /// deposit order.
    pub fn comm_entries(&self) -> Vec<RankComm> {
        self.inner.lock().unwrap().comm_entries.clone()
    }

    /// Folds one CPE counter set into the aggregate.
    pub fn absorb_cpe(&self, counters: &mmds_sunway::CpeCounters) {
        let mut g = self.inner.lock().unwrap();
        g.cpe = g.cpe.merge(counters);
        g.cpe_sets += 1;
    }

    /// Adds `value` to the named counter, creating it at zero.
    pub fn add_named(&self, name: &str, value: f64) {
        let mut g = self.inner.lock().unwrap();
        *g.named.entry(name.to_string()).or_insert(0.0) += value;
    }

    /// Retains one MD step sample.
    pub fn push_md(&self, s: MdStepSample) {
        self.inner.lock().unwrap().md.push(s);
    }

    /// Retains one KMC cycle sample.
    pub fn push_kmc(&self, s: KmcCycleSample) {
        self.inner.lock().unwrap().kmc.push(s);
    }

    /// Retains one watchdog alert.
    pub fn push_alert(&self, a: AlertRecord) {
        self.inner.lock().unwrap().alerts.push(a);
    }

    /// Copies out the retained alerts, in raise order.
    pub fn alerts(&self) -> Vec<AlertRecord> {
        self.inner.lock().unwrap().alerts.clone()
    }

    /// Retains one science-series sample on the `(rank, name)` track.
    ///
    /// Panics when `t` decreases within a track: series are defined to
    /// be monotonic per rank, and a violation means the instrumentation
    /// call site is charging the wrong domain index.
    pub fn push_series(&self, rank: Option<u32>, name: &str, t: u64, value: f64) {
        let mut g = self.inner.lock().unwrap();
        let track = g.series.entry((name.to_string(), rank)).or_default();
        if let Some(last) = track.last() {
            assert!(
                t >= last.t,
                "series `{name}` (rank {rank:?}) is not monotonic: t {t} after {}",
                last.t
            );
        }
        track.push(SeriesPoint { t, value });
    }

    /// Copies out the retained series as tracks, sorted by
    /// `(name, rank)`.
    pub fn series_tracks(&self) -> Vec<SeriesTrack> {
        let g = self.inner.lock().unwrap();
        g.series
            .iter()
            .map(|((name, rank), points)| SeriesTrack {
                name: name.clone(),
                rank: *rank,
                points: points.clone(),
            })
            .collect()
    }

    /// Copies out the current aggregates. The communication sum is
    /// derived from the retained per-rank entries on each call.
    pub fn snapshot(&self) -> CounterSnapshot {
        let g = self.inner.lock().unwrap();
        CounterSnapshot {
            comm: g
                .comm_entries
                .iter()
                .fold(mmds_swmpi::CommStats::default(), |a, e| a.merge(&e.stats)),
            comm_ranks: g.comm_entries.len() as u64,
            cpe: g.cpe,
            cpe_sets: g.cpe_sets,
            named: g.named.clone(),
        }
    }

    /// Copies out the retained samples.
    pub fn samples(&self) -> SampleLog {
        let g = self.inner.lock().unwrap();
        SampleLog {
            md: g.md.clone(),
            kmc: g.kmc.clone(),
        }
    }

    /// Clears everything.
    pub fn reset(&self) {
        *self.inner.lock().unwrap() = RegistryInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_merges_comm_and_cpe() {
        let reg = CounterRegistry::default();
        reg.absorb_comm(&mmds_swmpi::CommStats {
            msgs_sent: 3,
            bytes_sent: 300,
            ..Default::default()
        });
        reg.absorb_comm(&mmds_swmpi::CommStats {
            msgs_sent: 1,
            bytes_recv: 50,
            ..Default::default()
        });
        reg.absorb_cpe(&mmds_sunway::CpeCounters {
            flops: 10,
            bytes_in: 64,
            ..Default::default()
        });
        reg.add_named("kmc.dirty_ghost_bytes", 128.0);
        reg.add_named("kmc.dirty_ghost_bytes", 64.0);

        let snap = reg.snapshot();
        assert_eq!(snap.comm.msgs_sent, 4);
        assert_eq!(snap.comm.bytes_sent, 300);
        assert_eq!(snap.comm.bytes_recv, 50);
        assert_eq!(snap.comm_ranks, 2);
        assert_eq!(snap.cpe.flops, 10);
        assert_eq!(snap.cpe_sets, 1);
        assert_eq!(snap.named["kmc.dirty_ghost_bytes"], 192.0);
    }

    #[test]
    fn run_report_serializes_and_round_trips() {
        let report = RunReport {
            spans: vec![SpanReport {
                path: "coupled.run".into(),
                count: 1,
                total_s: 1.5,
                self_s: 0.25,
            }],
            counters: CounterSnapshot {
                comm_ranks: 8,
                ..Default::default()
            },
            samples: SampleLog {
                md: vec![MdStepSample {
                    step: 1,
                    kinetic: 2.0,
                    ..Default::default()
                }],
                kmc: vec![],
            },
            ranks: vec![RankReport {
                rank: 2,
                spans: vec![],
                comm: Some(mmds_swmpi::CommStats {
                    bytes_sent: 99,
                    ..Default::default()
                }),
                matrix: None,
            }],
            imbalance: vec![PhaseImbalance {
                path: "coupled.run".into(),
                ranks: 4,
                max_s: 1.0,
                avg_s: 0.5,
                min_s: 0.25,
                ratio: 2.0,
            }],
            series: vec![SeriesTrack {
                name: "census.frenkel_pairs".into(),
                rank: Some(1),
                points: vec![
                    SeriesPoint { t: 0, value: 0.0 },
                    SeriesPoint { t: 10, value: 4.0 },
                ],
            }],
            alerts: vec![crate::event::AlertRecord {
                rule: "alert.heartbeat_stale".into(),
                severity: crate::event::AlertSeverity::Crit,
                rank: Some(1),
                subject: "rank 1".into(),
                message: "no heartbeat for 0.2 s".into(),
                value: 0.2,
                threshold: 0.1,
                t_ns: 42,
            }],
        };
        let json = report.to_json();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(report.root_total_s(), 1.5);
    }

    #[test]
    fn per_rank_comm_entries_are_retained_not_folded() {
        let reg = CounterRegistry::default();
        reg.absorb_comm_rank(
            0,
            &mmds_swmpi::CommStats {
                bytes_sent: 100,
                ..Default::default()
            },
            None,
        );
        reg.absorb_comm_rank(
            1,
            &mmds_swmpi::CommStats {
                bytes_sent: 300,
                ..Default::default()
            },
            None,
        );
        let entries = reg.comm_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rank, Some(0));
        assert_eq!(entries[1].stats.bytes_sent, 300);
        // The derived sum is what legacy consumers saw before.
        let snap = reg.snapshot();
        assert_eq!(snap.comm.bytes_sent, 400);
        assert_eq!(snap.comm_ranks, 2);
    }

    #[test]
    fn repeated_rank_deposits_merge_in_rank_report() {
        // One process, two worlds: rank 0 deposits twice (as a
        // weak-scaling sweep does). The report must merge, not pick
        // the first deposit.
        let reg = CounterRegistry::default();
        let mut rec_a = mmds_swmpi::matrix::MatrixRecorder::default();
        rec_a.record_send(0, 50);
        rec_a.record_recv(0, 50);
        reg.absorb_comm_rank(
            0,
            &mmds_swmpi::CommStats {
                bytes_sent: 50,
                ..Default::default()
            },
            Some(&rec_a.snapshot(0)),
        );
        let mut rec_b = mmds_swmpi::matrix::MatrixRecorder::default();
        rec_b.record_send(1, 100);
        reg.absorb_comm_rank(
            0,
            &mmds_swmpi::CommStats {
                bytes_sent: 100,
                ..Default::default()
            },
            Some(&rec_b.snapshot(0)),
        );
        let mut rec_c = mmds_swmpi::matrix::MatrixRecorder::default();
        rec_c.record_recv(0, 100);
        reg.absorb_comm_rank(1, &Default::default(), Some(&rec_c.snapshot(1)));

        let report = build_run_report(vec![], vec![], &reg);
        assert_eq!(report.ranks.len(), 2);
        assert_eq!(report.ranks[0].comm.unwrap().bytes_sent, 150);
        let m = report.ranks[0].matrix.as_ref().unwrap();
        assert_eq!(m.bytes_out(), 150);
        // The merged world view stays pairwise symmetric.
        let w = report.world_matrix().unwrap();
        w.validate_symmetry().expect("merged deposits symmetric");
        assert_eq!(w.bytes(0, 1), 100);
    }

    #[test]
    fn series_tracks_are_deterministic_and_monotonic() {
        let reg = CounterRegistry::default();
        // Interleaved deposits across ranks and names.
        reg.push_series(Some(1), "census.vacancies", 0, 5.0);
        reg.push_series(Some(0), "census.vacancies", 0, 3.0);
        reg.push_series(None, "kmc.ondemand.dirty_fraction", 1, 0.25);
        reg.push_series(Some(0), "census.vacancies", 10, 4.0);
        reg.push_series(Some(1), "census.vacancies", 10, 6.0);

        let tracks = reg.series_tracks();
        // Sorted by (name, rank); rank None sorts before Some.
        let keys: Vec<(&str, Option<u32>)> =
            tracks.iter().map(|t| (t.name.as_str(), t.rank)).collect();
        assert_eq!(
            keys,
            vec![
                ("census.vacancies", Some(0)),
                ("census.vacancies", Some(1)),
                ("kmc.ondemand.dirty_fraction", None),
            ]
        );
        assert_eq!(tracks[0].points.len(), 2);
        assert_eq!(tracks[0].last_value(), Some(4.0));
        // Equal t on one track is allowed (same-step resample)…
        reg.push_series(Some(0), "census.vacancies", 10, 4.0);
        // …and the report includes the tracks.
        let report = build_run_report(vec![], vec![], &reg);
        assert_eq!(report.series.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not monotonic")]
    fn series_rejects_decreasing_t() {
        let reg = CounterRegistry::default();
        reg.push_series(None, "census.vacancies", 5, 1.0);
        reg.push_series(None, "census.vacancies", 4, 1.0);
    }

    #[test]
    fn build_run_report_computes_imbalance() {
        let reg = CounterRegistry::default();
        reg.absorb_comm_rank(0, &Default::default(), None);
        reg.absorb_comm_rank(1, &Default::default(), None);
        let mk = |path: &str, total_s: f64| SpanReport {
            path: path.into(),
            count: 1,
            total_s,
            self_s: total_s,
        };
        let rank_spans = vec![
            (Some(0), mk("md.phase", 3.0)),
            (Some(1), mk("md.phase", 1.0)),
            (Some(0), mk("kmc.phase", 0.5)),
            (None, mk("driver.io", 9.0)), // untagged: excluded
        ];
        let report = build_run_report(vec![], rank_spans, &reg);
        assert_eq!(report.ranks.len(), 2);
        assert_eq!(report.ranks[0].rank, 0);
        assert_eq!(report.ranks[0].spans.len(), 2);
        let md = report
            .imbalance
            .iter()
            .find(|p| p.path == "md.phase")
            .unwrap();
        assert_eq!(md.ranks, 2);
        assert_eq!(md.max_s, 3.0);
        assert_eq!(md.avg_s, 2.0);
        assert_eq!(md.min_s, 1.0);
        assert!((md.ratio - 1.5).abs() < 1e-12);
        // Rank 1 never entered kmc.phase: min is 0, avg counts it.
        let kmc = report
            .imbalance
            .iter()
            .find(|p| p.path == "kmc.phase")
            .unwrap();
        assert_eq!(kmc.min_s, 0.0);
        assert_eq!(kmc.avg_s, 0.25);
        assert!(!report.imbalance.iter().any(|p| p.path == "driver.io"));
        // Sorted by descending max_s.
        assert_eq!(report.imbalance[0].path, "md.phase");
    }
}
