//! The run-wide counter registry and the final serializable report.
//!
//! The registry is the single aggregation point that used to be spread
//! over ad-hoc `CommStats::sum` calls in every figure binary: ranks
//! deposit their [`mmds_swmpi::CommStats`], CPE clusters their
//! [`mmds_sunway::CpeCounters`], phases their named counters, and the
//! run ends with one [`RunReport`].

use std::collections::BTreeMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::event::{KmcCycleSample, MdStepSample};

/// Statistics of one span path (times in seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Full `a/b/c` call path.
    pub path: String,
    /// Times the span closed.
    pub count: u64,
    /// Total wall time across all closes.
    pub total_s: f64,
    /// Total minus time attributed to child spans.
    pub self_s: f64,
}

/// Aggregated counters at one point in time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Element-wise sum of every absorbed per-rank [`mmds_swmpi::CommStats`].
    pub comm: mmds_swmpi::CommStats,
    /// Ranks absorbed into `comm`.
    pub comm_ranks: u64,
    /// Element-wise sum of every absorbed per-CPE [`mmds_sunway::CpeCounters`].
    pub cpe: mmds_sunway::CpeCounters,
    /// CPE counter sets absorbed into `cpe`.
    pub cpe_sets: u64,
    /// Free-form named counters (`name -> accumulated value`).
    pub named: BTreeMap<String, f64>,
}

/// Retained MD/KMC samples, in deposit order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleLog {
    /// Per-step MD samples.
    pub md: Vec<MdStepSample>,
    /// Per-cycle KMC samples.
    pub kmc: Vec<KmcCycleSample>,
}

/// Everything a run produced: span timings, merged counters, samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Span statistics sorted by path.
    pub spans: Vec<SpanReport>,
    /// Merged counters.
    pub counters: CounterSnapshot,
    /// Retained samples.
    pub samples: SampleLog,
}

impl RunReport {
    /// Pretty JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Sum of wall time over top-level (root) spans — the quantity that
    /// should track total run wall time when instrumentation covers the
    /// whole run.
    pub fn root_total_s(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| !s.path.contains('/'))
            .map(|s| s.total_s)
            .sum()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    comm: mmds_swmpi::CommStats,
    comm_ranks: u64,
    cpe: mmds_sunway::CpeCounters,
    cpe_sets: u64,
    named: BTreeMap<String, f64>,
    md: Vec<MdStepSample>,
    kmc: Vec<KmcCycleSample>,
}

/// Thread-safe accumulator behind [`crate::Telemetry::counters`]. All
/// methods take `&self`; a mutex guards the interior.
#[derive(Debug, Default)]
pub struct CounterRegistry {
    inner: Mutex<RegistryInner>,
}

impl CounterRegistry {
    /// Folds one rank's communication stats into the aggregate.
    pub fn absorb_comm(&self, stats: &mmds_swmpi::CommStats) {
        let mut g = self.inner.lock().unwrap();
        g.comm = g.comm.merge(stats);
        g.comm_ranks += 1;
    }

    /// Folds one CPE counter set into the aggregate.
    pub fn absorb_cpe(&self, counters: &mmds_sunway::CpeCounters) {
        let mut g = self.inner.lock().unwrap();
        g.cpe = g.cpe.merge(counters);
        g.cpe_sets += 1;
    }

    /// Adds `value` to the named counter, creating it at zero.
    pub fn add_named(&self, name: &str, value: f64) {
        let mut g = self.inner.lock().unwrap();
        *g.named.entry(name.to_string()).or_insert(0.0) += value;
    }

    /// Retains one MD step sample.
    pub fn push_md(&self, s: MdStepSample) {
        self.inner.lock().unwrap().md.push(s);
    }

    /// Retains one KMC cycle sample.
    pub fn push_kmc(&self, s: KmcCycleSample) {
        self.inner.lock().unwrap().kmc.push(s);
    }

    /// Copies out the current aggregates.
    pub fn snapshot(&self) -> CounterSnapshot {
        let g = self.inner.lock().unwrap();
        CounterSnapshot {
            comm: g.comm,
            comm_ranks: g.comm_ranks,
            cpe: g.cpe,
            cpe_sets: g.cpe_sets,
            named: g.named.clone(),
        }
    }

    /// Copies out the retained samples.
    pub fn samples(&self) -> SampleLog {
        let g = self.inner.lock().unwrap();
        SampleLog {
            md: g.md.clone(),
            kmc: g.kmc.clone(),
        }
    }

    /// Clears everything.
    pub fn reset(&self) {
        *self.inner.lock().unwrap() = RegistryInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_merges_comm_and_cpe() {
        let reg = CounterRegistry::default();
        reg.absorb_comm(&mmds_swmpi::CommStats {
            msgs_sent: 3,
            bytes_sent: 300,
            ..Default::default()
        });
        reg.absorb_comm(&mmds_swmpi::CommStats {
            msgs_sent: 1,
            bytes_recv: 50,
            ..Default::default()
        });
        reg.absorb_cpe(&mmds_sunway::CpeCounters {
            flops: 10,
            bytes_in: 64,
            ..Default::default()
        });
        reg.add_named("kmc.dirty_ghost_bytes", 128.0);
        reg.add_named("kmc.dirty_ghost_bytes", 64.0);

        let snap = reg.snapshot();
        assert_eq!(snap.comm.msgs_sent, 4);
        assert_eq!(snap.comm.bytes_sent, 300);
        assert_eq!(snap.comm.bytes_recv, 50);
        assert_eq!(snap.comm_ranks, 2);
        assert_eq!(snap.cpe.flops, 10);
        assert_eq!(snap.cpe_sets, 1);
        assert_eq!(snap.named["kmc.dirty_ghost_bytes"], 192.0);
    }

    #[test]
    fn run_report_serializes_and_round_trips() {
        let report = RunReport {
            spans: vec![SpanReport {
                path: "coupled.run".into(),
                count: 1,
                total_s: 1.5,
                self_s: 0.25,
            }],
            counters: CounterSnapshot {
                comm_ranks: 8,
                ..Default::default()
            },
            samples: SampleLog {
                md: vec![MdStepSample {
                    step: 1,
                    kinetic: 2.0,
                    ..Default::default()
                }],
                kmc: vec![],
            },
        };
        let json = report.to_json();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(report.root_total_s(), 1.5);
    }
}
